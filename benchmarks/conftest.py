"""Shared machinery for the benchmark/experiment suite.

Each ``test_bench_*.py`` module regenerates one row of DESIGN.md's
experiment index (the paper's tables/figures).  Conventions:

- every test takes the ``benchmark`` fixture, so
  ``pytest benchmarks/ --benchmark-only`` runs the full suite;
- experiment outcomes (paper-reported vs measured) are attached as
  ``benchmark.extra_info`` and also printed as small tables, which
  EXPERIMENTS.md quotes;
- benchmarks have a *trace mode*: run with ``REPRO_BENCH_TRACE=1`` to
  print each benchmark's span tree (with ``-s``), or
  ``REPRO_BENCH_TRACE=<dir>`` to also write a Chrome ``trace_event``
  file per test into that directory.  Tests opt in by taking the
  ``bench_meter`` fixture and passing it as a builder's ``meter``; off
  (the default) it is the no-op meter, so the timed code path is
  identical to production.
"""

import json
import os
import re

import pytest

from repro.basis import make_basis
from repro.obs import NULL_METER, Tracer


@pytest.fixture(scope="session")
def basis():
    return make_basis()


@pytest.fixture
def bench_meter(request):
    """The benchmark trace seam: NULL_METER unless REPRO_BENCH_TRACE
    is set (see the module docstring)."""
    mode = os.environ.get("REPRO_BENCH_TRACE", "")
    if not mode:
        yield NULL_METER
        return
    tracer = Tracer()
    yield tracer
    print()
    print(tracer.render_tree())
    if os.path.isdir(mode):
        name = re.sub(r"[^A-Za-z0-9_.-]", "_", request.node.name)
        out = os.path.join(mode, f"{name}.trace.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(tracer.to_chrome_trace(), fh, indent=1,
                      sort_keys=True)
        print(f"trace written to {out}")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned results table (captured with ``pytest -s``)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
