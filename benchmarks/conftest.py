"""Shared machinery for the benchmark/experiment suite.

Each ``test_bench_*.py`` module regenerates one row of DESIGN.md's
experiment index (the paper's tables/figures).  Conventions:

- every test takes the ``benchmark`` fixture, so
  ``pytest benchmarks/ --benchmark-only`` runs the full suite;
- experiment outcomes (paper-reported vs measured) are attached as
  ``benchmark.extra_info`` and also printed as small tables, which
  EXPERIMENTS.md quotes.
"""

import pytest

from repro.basis import make_basis


@pytest.fixture(scope="session")
def basis():
    return make_basis()


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned results table (captured with ``pytest -s``)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
