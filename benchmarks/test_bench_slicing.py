"""Experiment T5 -- per-binding cutoff (interface slicing) on hot
interfaces.

The shape the slicing layer exists for: one provider exporting N
independent bindings, fanned out to single-binding clients.  Editing
one binding's interface flips the provider's whole-unit pid, so
whole-pid cutoff (and make) recompile *every* client; the sliced smart
builder recompiles only the edited binding's users.  We measure
dependents recompiled and rebuild wall-clock for make vs cutoff vs
sliced, sweeping the interface width, and persist the results as
``BENCH_slicing.json`` at the repo root -- the first point of the perf
trajectory ROADMAP.md asks for.
"""

import json
import os
import time

from repro.cm import CutoffBuilder, SmartBuilder, TimestampBuilder
from repro.workload import sliced_workload

from .conftest import print_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT = os.path.join(REPO, "BENCH_slicing.json")

BUILDERS = {
    "make": TimestampBuilder,
    "cutoff": CutoffBuilder,
    "sliced": SmartBuilder,
}

#: (n_bindings, clients_per_binding) -- interface width sweep.
SHAPES = [(4, 2), (8, 2), (16, 2)]


def rebuild_after_binding_edit(builder_class, n_bindings, clients,
                               victim=1):
    """Full build, edit one binding's interface, timed rebuild."""
    w = sliced_workload(n_bindings, clients_per_binding=clients)
    builder = builder_class(w.project)
    builder.build()
    w.edit_binding_interface(victim)
    t0 = time.perf_counter()
    report = builder.build()
    wall = time.perf_counter() - t0
    return len(report.compiled), 1 + n_bindings * clients, wall


def test_slicing_matrix(benchmark):
    """1 of N bindings edited: units recompiled per builder."""

    def run():
        out = {}
        for n, c in SHAPES:
            for name, cls in BUILDERS.items():
                out[(n, c, name)] = rebuild_after_binding_edit(cls, n, c)
        return out

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    payload = {}
    for n, c in SHAPES:
        label = f"hot{n}x{c}"
        cells = {name: matrix[(n, c, name)] for name in BUILDERS}
        rows.append([label] + [f"{cells[b][0]}/{cells[b][1]}"
                               for b in BUILDERS])
        payload[label] = {
            name: {
                "recompiled": compiled,
                "units": total,
                "wall_seconds": round(wall, 4),
            }
            for name, (compiled, total, wall) in cells.items()
        }
        # The acceptance gate: sliced strictly beats whole-pid cutoff.
        assert (cells["sliced"][0] < cells["cutoff"][0]
                <= cells["make"][0]), label
        # Exactly the provider plus the edited binding's users...
        assert cells["sliced"][0] == 1 + c, label
        # ...while cutoff pays for the whole fanout.
        assert cells["cutoff"][0] == 1 + n * c, label

    print_table(
        "T5: units recompiled after editing 1 binding of N "
        "(provider + N*c clients)",
        ["shape"] + list(BUILDERS),
        rows,
    )

    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump({"schema": "bench-slicing/1", "shapes": payload}, fh,
                  indent=1, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info["shapes"] = payload


def test_sliced_rebuild_wall_clock(benchmark):
    """Wall-clock rebuild of the widest shape under the sliced builder:
    the skipped clients must make the rebuild cheaper than cutoff's."""
    n, c = 16, 2
    w = sliced_workload(n, clients_per_binding=c)
    sliced = SmartBuilder(w.project)
    sliced.build()
    state = {"k": 0}

    def rebuild():
        state["k"] += 1
        w.edit_binding_interface(state["k"] % n)
        return sliced.build()

    report = benchmark.pedantic(rebuild, rounds=3, iterations=1)
    assert len(report.compiled) == 1 + c
    benchmark.extra_info["units_recompiled"] = len(report.compiled)
