"""Experiment S1 -- the cost of store integrity (crash-safety PR).

The hardened bin store checksums every payload (CRC-128), digests every
record, writes through tmp+rename behind a lock file, and keeps a
manifest.  This experiment measures what all that costs against the work
it protects, and how much the incremental (dirty-only) save path saves
over a full rewrite.

Expected shape: integrity adds single-digit ms per record on save/load
-- noise next to compilation -- and a one-unit edit rewrites one record,
not N.
"""

import os
import time

from repro.cm import BinStore, CutoffBuilder
from repro.workload import generate_workload, random_dag

from .conftest import print_table


def _built_store(n_units: int):
    w = generate_workload(random_dag(n_units, 3, seed=23),
                          helpers_per_unit=10)
    builder = CutoffBuilder(w.project)
    builder.build()
    return w, builder


def test_save_load_integrity_cost(benchmark, tmp_path):
    """Per-record cost of checksummed save + verified load."""
    rows = []

    def run():
        results = []
        for size in (25, 50):
            _w, builder = _built_store(size)
            dest = str(tmp_path / f"s{size}")

            t0 = time.perf_counter()
            stats = builder.store.save_directory(dest)
            save_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            loaded = BinStore.load_directory(dest)
            load_s = time.perf_counter() - t0
            assert loaded.health.ok
            assert len(loaded.names()) == size

            t0 = time.perf_counter()
            report = BinStore.fsck(dest)
            fsck_s = time.perf_counter() - t0
            assert report.ok

            results.append(
                (size, save_s, load_s, fsck_s, stats.bytes_written))
        return results

    for size, save_s, load_s, fsck_s, nbytes in benchmark.pedantic(
            run, rounds=1, iterations=1):
        save_ms = 1000 * save_s / size
        load_ms = 1000 * load_s / size
        fsck_ms = 1000 * fsck_s / size
        rows.append([size, f"{save_ms:.2f}", f"{load_ms:.2f}",
                     f"{fsck_ms:.2f}", nbytes // size])
        # Integrity must stay noise next to ~10 ms/unit compilation.
        assert save_ms < 50, f"save {save_ms:.1f} ms/record"
        assert load_ms < 50, f"load {load_ms:.1f} ms/record"

    print_table(
        "S1a: checksummed store, per-record costs (ms/record)",
        ["records", "save", "load+verify", "fsck", "bytes/record"],
        rows,
    )
    benchmark.extra_info["rows"] = rows


def test_incremental_save_vs_full_rewrite(benchmark, tmp_path):
    """A one-unit edit should rewrite ~1 record, not all N."""
    size = 40
    rows = []

    def run():
        w, builder = _built_store(size)
        dest = str(tmp_path / "inc")
        full = builder.store.save_directory(dest)

        # Null save: nothing dirty, nothing written.
        null = builder.store.save_directory(dest)

        # Edit one leaf unit, rebuild (cutoff limits recompiles), save.
        name = w.project.names()[-1]
        w.project.edit(name, w.project.source(name) + "\n(* touch *)")
        store = BinStore.load_directory(dest)
        rebuilt = CutoffBuilder(w.project, store=store)
        rebuilt.build()
        t0 = time.perf_counter()
        incr = store.save_directory(dest)
        incr_s = time.perf_counter() - t0

        # The same store forced into a full rewrite (fresh directory).
        t0 = time.perf_counter()
        fullre = store.save_directory(str(tmp_path / "fullre"))
        fullre_s = time.perf_counter() - t0
        return full, null, incr, incr_s, fullre, fullre_s

    full, null, incr, incr_s, fullre, fullre_s = benchmark.pedantic(
        run, rounds=1, iterations=1)

    assert full.records_written == size
    assert null.records_written == 0 and null.bytes_written == 0
    assert 1 <= incr.records_written < size // 2
    assert fullre.records_written == size
    assert incr.bytes_written < fullre.bytes_written

    rows = [
        ["initial full", full.records_written, full.bytes_written, "-"],
        ["null (no edits)", null.records_written, null.bytes_written, "-"],
        ["incremental (1 edit)", incr.records_written,
         incr.bytes_written, f"{1000 * incr_s:.1f}"],
        ["forced full rewrite", fullre.records_written,
         fullre.bytes_written, f"{1000 * fullre_s:.1f}"],
    ]
    print_table(
        f"S1b: incremental vs full save ({size} records)",
        ["save", "records written", "bytes written", "ms"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
