"""Experiment T4 -- sharing preservation in bin files (paper §4).

"The binary file ... must preserve the sharing ... In the worst case,
writing the environments as trees would lead to exponential blowup."
We build towers of structures where level k+1 contains two references to
level k; with memoized (DAG) pickling the bin file grows linearly in the
depth, while the unshared tree it denotes grows as 2^depth.
"""

from repro.cm import CutoffBuilder, Project
from repro.pickle.pickler import Pickler

from .conftest import print_table


def tower_project(depth: int) -> Project:
    """Unit k defines a structure holding the previous structure twice."""
    sources = {
        "t000": "structure S000 = struct datatype t = Leaf of int end",
    }
    for k in range(1, depth):
        prev = f"S{k-1:03d}"
        sources[f"t{k:03d}"] = (
            f"structure S{k:03d} = struct\n"
            f"  structure L = {prev}\n"
            f"  structure R = {prev}\n"
            f"end"
        )
    return Project.from_sources(sources)


def _tree_node_count(env, depth_cache=None) -> int:
    """Size of the environment if sharing were lost (tree semantics):
    every structure contributes its subtree twice."""
    total = 1
    for struct in env.structures.values():
        total += _tree_node_count(struct.env)
    total += len(env.values) + len(env.tycons)
    return total


def test_sharing_linear_vs_exponential(benchmark):
    depth = 14

    def run():
        project = tower_project(depth)
        builder = CutoffBuilder(project)
        builder.build()
        rows = []
        for k in (2, 4, 6, 8, 10, 12, depth - 1):
            unit = builder.units[f"t{k:03d}"]
            shared_bytes = len(unit.payload)
            tree_nodes = _tree_node_count(unit.static_env)
            rows.append((k, shared_bytes, tree_nodes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [[k, size, nodes] for k, size, nodes in rows]
    print_table(
        "T4: bin size with sharing vs unshared tree size",
        ["tower depth", "bin bytes (DAG)", "tree nodes (no sharing)"],
        table,
    )

    # The tree explodes exponentially...
    ks = [k for k, _, _ in rows]
    nodes = {k: n for k, _, n in rows}
    assert nodes[ks[-1]] > 2 ** (ks[-1] - 2)
    # ...while the bin file stays bounded (stubs to the imported unit),
    # i.e. essentially flat in the depth.
    sizes = [size for _, size, _ in rows]
    assert max(sizes) < 4 * min(sizes)
    benchmark.extra_info["rows"] = rows


def test_intra_unit_sharing(benchmark):
    """Sharing within one unit: a single datatype referenced by many
    bindings is written once, so adding aliases costs O(1) bytes each."""

    def source(n_aliases: int) -> str:
        lines = ["structure Big = struct",
                 "  datatype t = A of int * string | B of t * t"]
        for i in range(n_aliases):
            lines.append(f"  fun use_{i} (x : t) = x")
        lines.append("end")
        return "\n".join(lines)

    def run():
        sizes = {}
        for n in (1, 20, 40):
            project = Project.from_sources({"big": source(n)})
            builder = CutoffBuilder(project)
            builder.build()
            sizes[n] = len(builder.units["big"].payload)
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    per_alias = (sizes[40] - sizes[20]) / 20
    assert per_alias < 120, f"alias cost {per_alias:.0f} bytes"
    print_table(
        "T4b: marginal cost of an alias to a shared datatype",
        ["aliases", "bin bytes"],
        [[n, sizes[n]] for n in sorted(sizes)] +
        [["bytes/alias", f"{per_alias:.0f}"]],
    )
    benchmark.extra_info["sizes"] = sizes
