"""Experiment R3 -- what trace-driven priority buys the scheduler.

Wavefront vs ready-name vs ready-longest-first on an *imbalanced*
fan-out workload (one middle unit several times heavier than its
siblings, with a late-alphabetical name so plain name order dispatches
it last).  Persisted as ``BENCH_priority.json``: wall clock, worker
occupancy, and where the heavy unit landed in each dispatch order.

Gates are the deterministic facts, not wall clock (1-core CI makes
thread timings noise):

- longest-first dispatches the heavy unit *first* among the middle
  layer, name order dispatches it *last*;
- all three arms produce identical export pids (priority is
  scheduling, never semantics).

Occupancy is recorded for the trajectory; the paper-style claim is
that longest-first keeps it at least at name-order's level on this
shape.
"""

import json
import os
import shutil
import tempfile

from repro.cm import CutoffBuilder
from repro.obs import Tracer, worker_idle
from repro.obs.history import (
    BuildHistory,
    longest_first_key,
    profile_from_report,
)
from repro.workload import fanout, generate_workload
from repro.workload.generate import unit_name

from .conftest import print_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT = os.path.join(REPO, "BENCH_priority.json")

WIDTH = 12  # 14 units: base, 12 middles, top
HEAVY = unit_name(WIDTH)  # the alphabetically-last middle unit
HEAVY_HELPERS = 90  # several times the default middle weight
JOBS = 4


def imbalanced_workload():
    workload = generate_workload(fanout(WIDTH), helpers_per_unit=6)
    workload.params[HEAVY].n_helpers = HEAVY_HELPERS
    workload._rerender(HEAVY)
    return workload


def middles():
    return [unit_name(k) for k in range(1, WIDTH + 1)]


def build_arm(schedule, offer_key=None):
    tracer = Tracer()
    workload = imbalanced_workload()
    builder = CutoffBuilder(workload.project, meter=tracer)
    report = builder.build(jobs=JOBS, pool="thread",
                           schedule=schedule, offer_key=offer_key)
    assert len(report.compiled) == len(workload.project)
    pids = {n: u.export_pid for n, u in builder.units.items()}
    return {
        "report": report,
        "idle": worker_idle(tracer, jobs=JOBS),
        "pids": pids,
    }


def heavy_rank(report):
    """Where the heavy unit landed among the middle layer's
    dispatches (0 = first middle offered)."""
    layer = set(middles())
    order = [n for n in report.dispatch_order if n in layer]
    return order.index(HEAVY)


def test_priority_occupancy_and_dispatch(benchmark):
    def run():
        # A profiling pass seeds the history the scheduler feeds on,
        # exactly as a real prior build would have.
        base = tempfile.mkdtemp(prefix="benchpriority-")
        try:
            history = BuildHistory(os.path.join(base, ".bin"))
            seed = build_arm("ready")
            history.record(profile_from_report(seed["report"],
                                               manager="cutoff"))
            key = longest_first_key(history.compile_seconds("cutoff"))
            assert key is not None
            return {
                "wavefront": build_arm("wavefront"),
                "ready-name": build_arm("ready"),
                "ready-longest-first": build_arm("ready",
                                                 offer_key=key),
            }
        finally:
            shutil.rmtree(base, ignore_errors=True)

    arms = benchmark.pedantic(run, rounds=1, iterations=1)

    # Deterministic gates: dispatch position and byte identity.
    assert heavy_rank(arms["ready-name"]["report"]) == WIDTH - 1
    assert heavy_rank(arms["ready-longest-first"]["report"]) == 0
    assert (arms["wavefront"]["pids"] == arms["ready-name"]["pids"]
            == arms["ready-longest-first"]["pids"])

    rows = []
    payload = {"units": WIDTH + 2, "jobs": JOBS, "heavy_unit": HEAVY,
               "arms": {}}
    for name, arm in arms.items():
        idle = arm["idle"]
        rank = heavy_rank(arm["report"])
        rows.append([name, f"{arm['report'].wall_seconds:.4f}",
                     idle["busy_seconds"], idle["occupancy"], rank])
        payload["arms"][name] = {
            "wall_seconds": round(arm["report"].wall_seconds, 6),
            "busy_seconds": idle["busy_seconds"],
            "occupancy": idle["occupancy"],
            "heavy_dispatch_rank": rank,
            "dispatch_order": list(arm["report"].dispatch_order),
        }
    print_table(
        f"R3: schedule arms on imbalanced fanout({WIDTH}), jobs={JOBS}",
        ["arm", "wall_s", "busy_s", "occupancy", "heavy_rank"],
        rows,
    )
    occ = {name: arm["idle"]["occupancy"] for name, arm in arms.items()}
    payload["longest_first_at_least_name_order"] = bool(
        occ["ready-longest-first"] >= occ["ready-name"] - 0.05)
    # Soft gate: equal-or-better occupancy modulo timing noise (the
    # hard gates above are the deterministic ones).
    assert payload["longest_first_at_least_name_order"]

    benchmark.extra_info["priority"] = payload
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump({"schema": "bench-priority/1", "priority": payload},
                  fh, indent=1, sort_keys=True)
        fh.write("\n")
