"""Experiment R1 -- what fault tolerance costs.

Two claims with numbers attached, persisted as ``BENCH_supervision.json``:

1. **Recovery overhead.**  A supervised ``--jobs 4`` build through which
   one worker crashes (and is retried) should cost little more than the
   same build with no fault: the retry re-runs one unit, not the build.
   We measure clean supervised wall-clock vs 1-crash wall-clock on a
   40-unit workload and report the overhead ratio.
2. **Schedule-search coverage.**  The bounded exhaustive two-writer
   search at depth 7 explores 128 schedules; we report how many
   *distinct realized interleavings* (states) that covers and assert
   every one converged -- the robustness headline, with the state count
   as the evidence of coverage.
"""

import json
import os
import time

from repro.cm import (
    BinStore,
    CutoffBuilder,
    SupervisePolicy,
    WorkerFaults,
    supervised_build,
)
from repro.cm.faults import (
    TwoWriterInterleaver,
    bounded_schedules,
    search_schedules,
)
from repro.workload import diamond, fanout, generate_workload

from .conftest import print_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT = os.path.join(REPO, "BENCH_supervision.json")

POLICY = SupervisePolicy(retries=2, backoff_base=0.001, backoff_cap=0.01)
SHAPE = fanout(38)  # 40 units: 1 base, 38 middle, 1 top
SEARCH_DEPTH = 7


def supervised_wall(faults=None):
    workload = generate_workload(SHAPE, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    t0 = time.perf_counter()
    report = supervised_build(builder, jobs=4, pool="thread",
                              faults=faults, policy=POLICY)
    wall = time.perf_counter() - t0
    assert not report.failed and not report.skipped
    assert len(report.compiled) == len(SHAPE)
    return wall, report


def test_one_crash_recovery_overhead(benchmark):
    """Clean supervised build vs the same build with one worker crash."""

    def run():
        clean_wall, _clean = supervised_wall()
        crash_wall, crash = supervised_wall(
            WorkerFaults(crash_units={"u005"}))
        return clean_wall, crash_wall, crash

    clean_wall, crash_wall, crash = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert crash.retries >= 1
    overhead = crash_wall / clean_wall if clean_wall else float("inf")

    print_table(
        "R1a: 1-crash recovery overhead (40 units, jobs=4)",
        ["build", "wall_s", "retries"],
        [["clean", f"{clean_wall:.3f}", 0],
         ["1 crash", f"{crash_wall:.3f}", crash.retries],
         ["overhead", f"{overhead:.2f}x", ""]],
    )
    payload = {
        "clean_wall_seconds": round(clean_wall, 4),
        "crash_wall_seconds": round(crash_wall, 4),
        "overhead_ratio": round(overhead, 3),
        "retries": crash.retries,
        "units": len(SHAPE),
        "jobs": 4,
    }
    benchmark.extra_info["recovery"] = payload
    _merge_out("recovery", payload)


def test_schedule_search_state_count(benchmark):
    """Bounded exhaustive search: schedules explored, states realized,
    every one of them converging to a healthy union store."""
    import tempfile

    shape = diamond(2, 1)
    workload_a = generate_workload(shape, helpers_per_unit=1)
    builder_a = CutoffBuilder(workload_a.project)
    builder_a.build()
    workload_b = generate_workload(shape, helpers_per_unit=1)
    workload_b.edit_implementation("u001")
    builder_b = CutoffBuilder(workload_b.project)
    builder_b.build()
    records_a = [builder_a.store.get(n) for n in builder_a.store.names()]
    records_b = [builder_b.store.get(n) for n in builder_b.store.names()]
    base = tempfile.mkdtemp(prefix="benchsched-")

    def run_one(schedule):
        drv = TwoWriterInterleaver(schedule, mutations_only=True)
        store_a, store_b = BinStore(fs=drv.fs("A")), BinStore(fs=drv.fs("B"))
        for rec in records_a:
            store_a.put(rec)
        for rec in records_b:
            store_b.put(rec)
        store_dir = os.path.join(base, schedule)
        drv.run(lambda: store_a.save_directory(store_dir, merge=True),
                lambda: store_b.save_directory(store_dir, merge=True))
        assert BinStore.fsck(store_dir).ok, schedule
        return drv

    def run():
        return search_schedules(bounded_schedules(SEARCH_DEPTH), run_one)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.ok, [f.schedule for f in report.failures]
    assert report.explored == 2 ** SEARCH_DEPTH >= 100

    print_table(
        "R1b: bounded exhaustive schedule search (2 merge-save writers)",
        ["depth", "schedules", "states", "verdict"],
        [[SEARCH_DEPTH, report.explored, report.states,
          "all converged" if report.ok else "FAILED"]],
    )
    payload = {
        "depth": SEARCH_DEPTH,
        "schedules_explored": report.explored,
        "states_realized": report.states,
        "all_converged": report.ok,
    }
    benchmark.extra_info["schedule_search"] = payload
    _merge_out("schedule_search", payload)


def _merge_out(key, payload):
    """Both tests write one file; merge so either order works."""
    data = {"schema": "bench-supervision/1"}
    if os.path.exists(OUT):
        try:
            with open(OUT, encoding="utf-8") as fh:
                data.update(json.load(fh))
        except (OSError, ValueError):
            pass
    data[key] = payload
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
