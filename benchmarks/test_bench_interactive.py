"""Interactive-loop latency (§6, §8).

The paper's architecture requires the interactive system to share the
compiler primitives with the batch manager without becoming sluggish:
each top-level input is a miniature compile+execute.  These benchmarks
measure per-input latency for representative phrase kinds.
"""

import pytest

from repro.interactive import REPL


@pytest.fixture(scope="module")
def repl():
    r = REPL()
    r.eval("signature ORD = sig type t val le : t * t -> bool end")
    r.eval("functor Sort(P : ORD) = struct "
           "fun insert (x, nil) = [x] "
           "  | insert (x, h :: t) = if P.le (x, h) then x :: h :: t "
           "    else h :: insert (x, t) "
           "fun sort l = foldl insert nil l end")
    return r


def test_repl_simple_expression(benchmark, repl):
    result = benchmark(lambda: repl.eval("1 + 2 * 3"))
    assert result.ok


def test_repl_function_definition(benchmark, repl):
    result = benchmark(
        lambda: repl.eval("fun fib 0 = 0 | fib 1 = 1 "
                          "| fib n = fib (n - 1) + fib (n - 2)"))
    assert result.ok


def test_repl_functor_application(benchmark, repl):
    result = benchmark(
        lambda: repl.eval(
            "structure S = Sort(struct type t = int "
            "fun le (a, b) = a <= b end)"))
    assert result.ok


def test_repl_execution_heavy(benchmark, repl):
    repl.eval("structure S = Sort(struct type t = int "
              "fun le (a, b) = a <= b end)")
    result = benchmark(
        lambda: repl.eval("length (S.sort (List.tabulate (60, "
                          "fn i => 59 - i)))"))
    assert result.ok
    assert "60" in result.render()
