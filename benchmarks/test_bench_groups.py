"""Experiment T8 -- groups and libraries (paper §9).

"The simplest--highest level--interface [to the IRM] is a simple
'makefile' system ... A lower-level interface ... uses intrinsic pids."
A library shared by several client groups should be built once, and an
interface-preserving library fix should not rebuild any client -- under
the pid level.  Under the timestamp level every client group rebuilds.
"""

from repro.cm import (
    CutoffBuilder,
    Group,
    GroupBuilder,
    Project,
    TimestampBuilder,
)
from repro.workload import generate_workload, layered

from .conftest import print_table

LIB_SOURCES = {
    "vec_sig": """
        signature VEC = sig
          type t
          val make : int * int -> t
          val add : t * t -> t
          val dot : t * t -> int
        end
    """,
    "vec": """
        structure Vec : VEC = struct
          type t = int * int
          fun make p = p
          fun add ((a, b), (c, d)) = (a + c, b + d)
          fun dot ((a, b), (c, d)) = a * c + b * d
        end
    """,
}

CLIENT_A = {
    "physics": """
        structure Physics = struct
          val momentum = Vec.dot (Vec.make (2, 3), Vec.make (4, 5))
        end
    """,
}

CLIENT_B = {
    "graphics": """
        structure Graphics = struct
          val corner = Vec.add (Vec.make (1, 1), Vec.make (9, 9))
        end
    """,
}

LIB_IMPL_FIX = LIB_SOURCES["vec"].replace(
    "fun dot ((a, b), (c, d)) = a * c + b * d",
    "fun dot ((a, b), (c, d)) = (a * c) + (b * d)  (* parenthesized *)")


def _setup():
    project = Project.from_sources(
        {**LIB_SOURCES, **CLIENT_A, **CLIENT_B})
    lib = Group("veclib", ["vec_sig", "vec"])
    physics = Group("physics", ["physics"], imports=[lib])
    graphics = Group("graphics", ["graphics"], imports=[lib])
    everything = Group("everything", [], imports=[physics, graphics])
    return project, everything


def _compiled_by_group(reports):
    return {name: sorted(r.compiled) for name, r in reports.items()}


def test_library_fix_under_both_levels(benchmark):
    def run():
        results = {}
        for label, builder_class in (("make", TimestampBuilder),
                                     ("cutoff", CutoffBuilder)):
            project, everything = _setup()
            gb = GroupBuilder(project, builder_class=builder_class)
            cold = _compiled_by_group(gb.build(everything))
            project.edit("vec", LIB_IMPL_FIX)
            warm = _compiled_by_group(gb.build(everything))
            results[label] = (cold, warm)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    make_cold, make_warm = results["make"]
    cut_cold, cut_warm = results["cutoff"]
    # Cold builds identical: the shared library compiles once.
    assert sum(len(v) for v in make_cold.values()) == 4
    assert sum(len(v) for v in cut_cold.values()) == 4
    # After an implementation-only library fix:
    assert make_warm["veclib"] == ["vec"]
    assert make_warm["physics"] == ["physics"]       # cascades into
    assert make_warm["graphics"] == ["graphics"]     # every client group
    assert cut_warm["veclib"] == ["vec"]
    assert cut_warm["physics"] == []                 # cutoff: clients
    assert cut_warm["graphics"] == []                # untouched

    rows = []
    for group in ("veclib", "physics", "graphics"):
        rows.append([group,
                     len(make_warm.get(group, [])),
                     len(cut_warm.get(group, []))])
    print_table(
        "T8: units recompiled per group after a library impl fix",
        ["group", "make level", "pid (cutoff) level"],
        rows,
    )
    benchmark.extra_info["make"] = make_warm
    benchmark.extra_info["cutoff"] = cut_warm


def test_group_execution_correct(benchmark):
    def run():
        project, everything = _setup()
        gb = GroupBuilder(project)
        gb.build(everything)
        return gb.link()

    exports = benchmark.pedantic(run, rounds=2, iterations=1)
    assert exports["physics"].structures["Physics"].values["momentum"] == 23
    assert exports["graphics"].structures["Graphics"].values["corner"] == \
        (10, 10)


def test_group_build_scales(benchmark):
    """A larger library stack: 60 units across three stacked groups."""
    deps = layered([1, 9, 10, 20, 15, 5], fan_in=2, seed=6)
    w = generate_workload(deps, helpers_per_unit=3)
    names = w.names()
    lib = Group("lib", names[:20])
    middle = Group("middle", names[20:40], imports=[lib])
    app = Group("app", names[40:], imports=[middle, lib])

    def run():
        gb = GroupBuilder(w.project)
        reports = gb.build(app)
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(len(r.compiled) for r in reports.values()) == len(names)
    benchmark.extra_info["units"] = len(names)
