"""Experiment T2 -- cutoff vs timestamp vs smart recompilation.

The paper's central claim (§1, §5): with intrinsic interface pids, "the
repeated recompilations [of] trivial modifications ... are avoided"; a
timestamp system must recompile every transitive dependent.  We measure
units recompiled after three edit kinds across four DAG shapes, for all
three builders, plus the wall-clock rebuild advantage.
"""

import pytest

from repro.cm import CutoffBuilder, SmartBuilder, TimestampBuilder
from repro.workload import chain, diamond, generate_workload, random_dag, tree

from .conftest import print_table

SHAPES = {
    "chain16": chain(16),
    "tree3x2": tree(3, 2),          # 7 units
    "diamond3x3": diamond(3, 3),    # 11 units
    "random24": random_dag(24, 3, seed=9),
}

EDITS = ["comment", "impl", "iface"]
BUILDERS = {
    "make": TimestampBuilder,
    "cutoff": CutoffBuilder,
    "smart": SmartBuilder,
}


def recompiles_after_edit(shape, builder_class, edit_kind,
                          target_index=0) -> tuple[int, int]:
    w = generate_workload(shape, helpers_per_unit=2)
    builder = builder_class(w.project)
    builder.build()
    name = f"u{target_index:03d}"
    if edit_kind == "comment":
        w.edit_comment(name)
    elif edit_kind == "impl":
        w.edit_implementation(name)
    else:
        w.edit_interface(name)
    report = builder.build()
    return len(report.compiled), len(shape)


def test_recompilation_matrix(benchmark):
    """Edit the root unit; count recompilations per builder and shape."""

    def run():
        matrix = {}
        for shape_name, shape in SHAPES.items():
            for edit in EDITS:
                for builder_name, builder_class in BUILDERS.items():
                    n, total = recompiles_after_edit(
                        shape, builder_class, edit)
                    matrix[(shape_name, edit, builder_name)] = (n, total)
        return matrix

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for shape_name in SHAPES:
        for edit in EDITS:
            cells = [matrix[(shape_name, edit, b)] for b in BUILDERS]
            rows.append([shape_name, edit] +
                        [f"{n}/{total}" for n, total in cells])
    print_table(
        "T2: units recompiled after editing the root unit",
        ["shape", "edit", "make", "cutoff", "smart"],
        rows,
    )

    for shape_name, shape in SHAPES.items():
        total = len(shape)
        cascade = 1 + len(_transitive_dependents(shape, 0))
        for edit in EDITS:
            n_make = matrix[(shape_name, edit, "make")][0]
            n_cut = matrix[(shape_name, edit, "cutoff")][0]
            n_smart = matrix[(shape_name, edit, "smart")][0]
            # The paper's ordering: classical >= cutoff >= smart.
            assert n_make >= n_cut >= n_smart, (shape_name, edit)
            # make always cascades to every transitive dependent.
            assert n_make == cascade, (shape_name, edit)
        # Non-interface edits stop at the edited unit under cutoff.
        assert matrix[(shape_name, "comment", "cutoff")][0] == 1
        assert matrix[(shape_name, "impl", "cutoff")][0] == 1
        # Interface edits cascade at most one level here (no type leak),
        # so cutoff still beats make on any shape with depth > 2.
        assert matrix[(shape_name, "iface", "cutoff")][0] <= total

    benchmark.extra_info["matrix"] = {
        f"{s}/{e}/{b}": matrix[(s, e, b)][0]
        for (s, e, b) in matrix
    }


def _transitive_dependents(shape, root: int) -> set[int]:
    out: set[int] = set()
    changed = True
    while changed:
        changed = False
        for k, deps in enumerate(shape):
            if k in out:
                continue
            if any(d == root or d in out for d in deps):
                out.add(k)
                changed = True
    return out


def test_type_leak_regime(benchmark):
    """With interfaces that re-export imported types (the transparent-
    matching regime of Figure 1), interface edits cascade even under
    cutoff -- but implementation edits still cut off."""

    def run():
        results = {}
        for leak in (False, True):
            w = generate_workload(chain(10), helpers_per_unit=2,
                                  leak_types=leak)
            builder = CutoffBuilder(w.project)
            builder.build()
            w.edit_interface("u001")
            iface = len(builder.build().compiled)
            w.edit_implementation("u001")
            impl = len(builder.build().compiled)
            results[leak] = (iface, impl)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    no_leak, leak = results[False], results[True]
    assert no_leak == (2, 1)     # one level, then cutoff
    assert leak[0] == 9          # u001..u009: full downstream cascade
    assert leak[1] == 1          # impl edits always cut off
    print_table(
        "T2b: interface-edit cascade depth on a 10-chain (cutoff)",
        ["interfaces", "iface edit", "impl edit"],
        [
            ["independent", f"{no_leak[0]}/10 recompiled",
             f"{no_leak[1]}/10"],
            ["type-leaking", f"{leak[0]}/10 recompiled", f"{leak[1]}/10"],
        ],
    )
    benchmark.extra_info["no_leak"] = no_leak
    benchmark.extra_info["leak"] = leak


def test_smart_strict_win(benchmark):
    """Where smart beats cutoff: a provider exporting several structures
    of which each client uses only one.  An interface change to an
    *unused* sibling flips the provider's whole-unit pid (cutoff
    recompiles all clients) but not the used member's hash (smart
    recompiles none)."""
    from repro.cm import Project

    def scenario(builder_class) -> int:
        provider = "\n".join(
            f"structure Mod{k} = struct fun get{k} () = {k} end"
            for k in range(4))
        sources = {"prov": provider}
        for k in range(4):
            sources[f"cli{k}"] = (
                f"structure Use{k} = struct "
                f"val v = Mod{k}.get{k} () end")
        project = Project.from_sources(sources)
        builder = builder_class(project)
        builder.build()
        # Interface change to Mod0 only.
        project.edit("prov", provider.replace(
            "structure Mod0 = struct fun get0 () = 0 end",
            "structure Mod0 = struct fun get0 () = 0 "
            "val extra = 1 end"))
        return len(builder.build().compiled)

    def run():
        return {name: scenario(cls) for name, cls in BUILDERS.items()}

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts["make"] == 5        # provider + every client
    assert counts["cutoff"] == 5      # whole-unit pid changed
    assert counts["smart"] == 2       # provider + the one real user
    print_table(
        "T2d: sibling-interface edit, 1 provider x 4 single-use clients",
        ["builder", "units recompiled (of 5)"],
        [[name, counts[name]] for name in ("make", "cutoff", "smart")],
    )
    benchmark.extra_info["counts"] = counts


def test_speedup_vs_depth(benchmark):
    """The paper's payoff as a curve: rebuild time after an
    implementation edit at the root, make vs cutoff, as the dependency
    chain deepens.  make grows linearly with depth; cutoff is flat."""
    import time

    def run():
        rows = []
        for depth in (4, 8, 16, 24):
            times = {}
            for label, builder_class in (("make", TimestampBuilder),
                                         ("cutoff", CutoffBuilder)):
                w = generate_workload(chain(depth), helpers_per_unit=4)
                builder = builder_class(w.project)
                builder.build()
                w.edit_implementation("u000")
                t0 = time.perf_counter()
                builder.build()
                times[label] = time.perf_counter() - t0
            rows.append((depth, times["make"], times["cutoff"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "T2c: rebuild seconds after a root impl edit vs chain depth",
        ["depth", "make", "cutoff", "speedup"],
        [[d, f"{m:.3f}", f"{c:.3f}", f"{m / c:.1f}x"] for d, m, c in rows],
    )
    # Speedup grows with depth (the 32-minutes-vs-seconds story).
    first_ratio = rows[0][1] / rows[0][2]
    last_ratio = rows[-1][1] / rows[-1][2]
    assert last_ratio > 1.5 * first_ratio, (first_ratio, last_ratio)
    benchmark.extra_info["rows"] = [
        (d, round(m, 4), round(c, 4)) for d, m, c in rows
    ]


@pytest.mark.parametrize("builder_name", ["make", "cutoff"])
def test_rebuild_wall_clock(benchmark, builder_name):
    """Wall-clock rebuild after an implementation edit mid-chain."""
    w = generate_workload(chain(20), helpers_per_unit=6)
    builder = BUILDERS[builder_name](w.project)
    builder.build()
    state = {"n": 0}

    def rebuild():
        state["n"] += 1
        w.edit_implementation("u005")
        return builder.build()

    report = benchmark.pedantic(rebuild, rounds=3, iterations=1)
    expected = 1 if builder_name == "cutoff" else 15  # u005..u019
    assert len(report.compiled) == expected
    benchmark.extra_info["units_recompiled"] = len(report.compiled)
