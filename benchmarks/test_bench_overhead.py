"""Experiment T1 -- the cost of the mechanism (paper §6).

Paper: compiling SML/NJ takes 32 minutes for ~200 units (~20 s/unit);
hashing measures as 0.0 s and dehydration+rehydration ~0.01 s per unit --
i.e. the separate-compilation machinery costs well under 1% of
compilation.  We measure the same per-phase breakdown over generated
projects and report the overhead ratio.
"""

import pytest

from repro.cm import CutoffBuilder
from repro.pickle.pickler import Pickler, Unpickler
from repro.pids.intrinsic import intrinsic_pid
from repro.units import Session, compile_unit
from repro.units.pipeline import load_unit
from repro.workload import generate_workload, random_dag

from .conftest import print_table


def _build_project(n_units: int, store=None):
    w = generate_workload(random_dag(n_units, 3, seed=11),
                          helpers_per_unit=12)
    builder = CutoffBuilder(w.project, store=store)
    report = builder.build()
    return w, builder, report


def test_phase_breakdown_sweep(benchmark):
    """The headline table: per-unit phase costs and the overhead ratio."""
    rows = []

    def run():
        results = []
        for size in (25, 50, 100):
            _w, builder, report = _build_project(size)
            compile_s = sum(o.times.compile_total() for o in report.outcomes)
            hash_s = sum(o.times.hash for o in report.outcomes)
            dehydrate_s = sum(o.times.dehydrate for o in report.outcomes)
            # Rehydration timing: reload everything in a fresh session.
            fresh = CutoffBuilder(builder.project, store=builder.store)
            null_report = fresh.build()
            rehydrate_s = sum(o.times.rehydrate
                              for o in null_report.outcomes)
            results.append(
                (size, compile_s, hash_s, dehydrate_s, rehydrate_s))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for size, compile_s, hash_s, dehydrate_s, rehydrate_s in results:
        overhead_ms = 1000 * (hash_s + dehydrate_s + rehydrate_s) / size
        rows.append([
            size,
            f"{1000 * compile_s / size:.2f}",
            f"{1000 * hash_s / size:.3f}",
            f"{1000 * dehydrate_s / size:.3f}",
            f"{1000 * rehydrate_s / size:.3f}",
            f"{overhead_ms:.2f}",
        ])
        # The paper reports the overhead in *absolute* terms: hashing
        # "0.0 seconds", dehydration+rehydration "0.01 seconds" per unit,
        # against ~20 s/unit native compilation.  Our absolute overhead
        # lands in the same ~10 ms/unit band; the *ratio* to compilation
        # is much larger only because a Python elaborator over small
        # units compiles in ~10 ms, not 20 s.
        assert overhead_ms < 100, f"overhead {overhead_ms:.1f} ms/unit"
        assert 1000 * hash_s / size < 1000 * compile_s / size

    print_table(
        "T1: per-unit phase costs (ms/unit)",
        ["units", "compile", "hash", "dehydrate", "rehydrate",
         "overhead(ms)"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["paper"] = (
        "compile ~20000 ms/unit; hash ~0 ms; dehydrate+rehydrate ~10 ms "
        "per unit")


@pytest.fixture(scope="module")
def sample_unit(basis):
    """A representative compiled unit + its session, for microbenchmarks."""
    session = Session(basis)
    w = generate_workload(random_dag(10, 3, seed=3), helpers_per_unit=12)
    units = []
    from repro.cm import analyze

    graph = analyze(w.project)
    by_name = {}
    for name in graph.order:
        imports = [by_name[d] for d in graph.deps[name]]
        unit = compile_unit(name, w.project.source(name), imports, session)
        by_name[name] = unit
        units.append(unit)
    return session, w, graph, by_name, units[-1]


def test_micro_compile(benchmark, sample_unit):
    session, w, graph, by_name, last = sample_unit
    imports = [by_name[d] for d in graph.deps[last.name]]
    source = w.project.source(last.name)
    benchmark(lambda: compile_unit(last.name, source, imports, session))


def test_micro_hash(benchmark, sample_unit):
    session, _w, graph, by_name, last = sample_unit
    benchmark(lambda: intrinsic_pid(
        last.static_env, last.owned_stamp_ids, session.extern,
        seed=last.name))


def test_micro_dehydrate(benchmark, sample_unit):
    session, _w, _graph, _by_name, last = sample_unit

    def dehydrate():
        pickler = Pickler(local_stamp_ids=last.owned_stamp_ids,
                          extern=session.extern)
        return pickler.run((last.static_env, last.code))

    benchmark(dehydrate)


def test_micro_rehydrate(benchmark, sample_unit):
    session, _w, graph, by_name, last = sample_unit
    imports = [by_name[d] for d in graph.deps[last.name]]
    payload = last.payload
    benchmark(lambda: load_unit(last.name, last.export_pid, imports,
                                payload, session))
