"""Experiment T3 -- pid collision analysis (paper §5).

Paper: "With perhaps 2^13 pids ... about 2^26 pairs of pids, so the
probability of any collision occurring is about 2^-102" using a 128-bit
CRC.  We hash 2^13 distinct interfaces, observe zero collisions, check
bit-level uniformity of the digests, and reproduce the birthday-bound
arithmetic (the exact bound is ~2^-103; the paper rounds pairs up).
"""

import math

from repro.pids.crc128 import CRC128, collision_probability, crc128_hex

from .conftest import print_table

N_PIDS = 2 ** 13


def _interface_bytes(i: int) -> bytes:
    # A synthetic canonical-serialization-like stream per interface.
    return (f"signature S{i} = sig type t{i % 7} "
            f"val v{i} : t -> int * int end").encode()


def test_no_collisions_at_paper_scale(benchmark):
    def run():
        digests = set()
        for i in range(N_PIDS):
            digests.add(crc128_hex(_interface_bytes(i)))
        return digests

    digests = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(digests) == N_PIDS

    p = collision_probability(N_PIDS)
    rows = [
        ["pids hashed", "2^13", f"2^13 ({N_PIDS})"],
        ["pairs", "~2^26", f"2^{math.log2(N_PIDS * (N_PIDS - 1) / 2):.1f}"],
        ["P(any collision)", "~2^-102", f"2^{math.log2(p):.1f}"],
        ["collisions observed", "0 (implied)", N_PIDS - len(digests)],
    ]
    print_table("T3: pid collision analysis",
                ["quantity", "paper", "measured"], rows)
    benchmark.extra_info["collisions"] = N_PIDS - len(digests)
    benchmark.extra_info["log2_probability"] = math.log2(p)


def test_bit_uniformity(benchmark):
    """A good hash: every digest bit is set ~half the time, and flipping
    one input bit flips ~half the output bits (avalanche)."""

    def run():
        n = 2000
        ones = [0] * 128
        avalanche = []
        for i in range(n):
            data = _interface_bytes(i)
            digest = CRC128().update(data).digest_int()
            for bit in range(128):
                if digest >> bit & 1:
                    ones[bit] += 1
            flipped = bytearray(data)
            flipped[0] ^= 1
            other = CRC128().update(bytes(flipped)).digest_int()
            avalanche.append(bin(digest ^ other).count("1"))
        return n, ones, avalanche

    n, ones, avalanche = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(abs(c / n - 0.5) for c in ones)
    mean_avalanche = sum(avalanche) / len(avalanche)
    assert worst < 0.2
    assert 40 < mean_avalanche < 88
    print_table(
        "T3b: digest statistics",
        ["statistic", "ideal", "measured"],
        [
            ["worst per-bit bias", "0.0", f"{worst:.3f}"],
            ["mean avalanche (bits)", "64", f"{mean_avalanche:.1f}"],
        ],
    )
    benchmark.extra_info["worst_bias"] = worst
    benchmark.extra_info["mean_avalanche"] = mean_avalanche


def test_crc_throughput(benchmark):
    data = b"x" * 4096
    benchmark(lambda: crc128_hex(data))
