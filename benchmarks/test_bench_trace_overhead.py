"""Experiment O1 -- telemetry overhead (observability PR).

The instrumentation seam (``BuildMeter``) sits on the build's hot path
permanently; only a real :class:`~repro.obs.Tracer` is opt-in.  The
claim to gate on: **the no-op meter costs < 5% of an untraced build**
on the 40-unit fan-out workload.

Wall-clock deltas between two whole builds are too noisy to assert on
a timesharing CI core, so the gate is computed structurally: count
every meter call a traced build actually makes (a counting meter),
time that many calls against the real ``NULL_METER``, and compare that
total -- the exact cost the no-op seam adds -- to the untraced build's
wall.  The traced-vs-untraced wall ratio is still measured and
reported (not gated).
"""

import time

from repro.cm import CutoffBuilder
from repro.obs import NULL_METER, Tracer
from repro.obs.meter import _NULL_SPAN
from repro.workload import generate_workload
from repro.workload.shapes import fanout

from .conftest import print_table

WIDTH = 38  # fanout(38) = 40 units: base + 38 middles + top


def _workload():
    return generate_workload(fanout(WIDTH), helpers_per_unit=8)


class CountingMeter:
    """Counts every meter call; behaves like the no-op otherwise."""

    enabled = False  # take exactly the branches NULL_METER takes

    def __init__(self):
        self.calls = 0

    def span(self, name, cat="build", **args):
        self.calls += 1
        return _NULL_SPAN

    def event(self, name, cat="build", **args):
        self.calls += 1

    def counter(self, name, value=1):
        self.calls += 1

    def complete_span(self, name, start, end, cat="build", track=None,
                      **args):
        self.calls += 1


def test_null_meter_overhead_under_5_percent(benchmark, bench_meter):
    def run():
        untraced = CutoffBuilder(_workload().project)
        t0 = time.perf_counter()
        untraced.build()
        untraced_s = time.perf_counter() - t0

        counting = CountingMeter()
        CutoffBuilder(_workload().project, meter=counting).build()

        # The seam's whole cost: that many calls against NULL_METER.
        t0 = time.perf_counter()
        for _ in range(counting.calls):
            with NULL_METER.span("unit", cat="unit", unit="u000"):
                pass
        seam_s = time.perf_counter() - t0

        traced = CutoffBuilder(_workload().project,
                               meter=Tracer() if bench_meter is NULL_METER
                               else bench_meter)
        t0 = time.perf_counter()
        traced.build()
        traced_s = time.perf_counter() - t0
        return untraced_s, counting.calls, seam_s, traced_s

    untraced_s, calls, seam_s, traced_s = benchmark.pedantic(
        run, rounds=1, iterations=1)

    overhead = seam_s / untraced_s
    assert overhead < 0.05, (
        f"no-op meter seam costs {overhead:.1%} of an untraced build "
        f"({calls} calls, {seam_s * 1e3:.2f} ms vs "
        f"{untraced_s * 1e3:.1f} ms)")

    print_table(
        f"O1: telemetry overhead on {WIDTH + 2} units",
        ["mode", "wall", "meter calls"],
        [
            ["untraced (NULL_METER)", f"{untraced_s:.3f}s", str(calls)],
            ["no-op seam alone", f"{seam_s * 1e3:.2f}ms", str(calls)],
            ["traced (Tracer)", f"{traced_s:.3f}s", str(calls)],
        ])
    print(f"no-op overhead: {overhead:.2%} of untraced wall (gate: <5%); "
          f"full tracing: {traced_s / untraced_s:.2f}x (reported only)")

    benchmark.extra_info.update({
        "units": WIDTH + 2,
        "meter_calls": calls,
        "untraced_wall_s": round(untraced_s, 4),
        "null_seam_s": round(seam_s, 6),
        "traced_wall_s": round(traced_s, 4),
        "null_overhead_pct": round(overhead * 100, 3),
    })
