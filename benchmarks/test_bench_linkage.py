"""Experiment T7 -- type-safe linkage (paper §7).

A timestamp build system with a subtly wrong makefile can link a stale
object file and miscompute silently.  The paper's linker matches import
pids against export pids, so inconsistency is caught *at link time*.
We stage exactly that bug and also measure the cost of the check.
"""

import pytest

from repro.linker import LinkError, Linker, check_consistency
from repro.units import Session, compile_unit
from repro.cm import CutoffBuilder
from repro.workload import generate_workload, layered

from .conftest import print_table

PROVIDER_V1 = "structure Fmt = struct fun width () = 80 end"
#: The interface changes: width now takes a scale factor.
PROVIDER_V2 = "structure Fmt = struct fun width (n : int) = n * 2 end"
CLIENT = "structure Report = struct val columns = Fmt.width () end"


def test_makefile_bug_caught(benchmark, basis):
    """Skip the client's recompilation after an interface change: the
    linker must reject the stale pair, where name-based linking would
    silently miscompute."""

    def run():
        session = Session(basis)
        p1 = compile_unit("fmt", PROVIDER_V1, [], session)
        client = compile_unit("report", CLIENT, [p1], session)
        p2 = compile_unit("fmt", PROVIDER_V2, [], session)
        try:
            check_consistency([p2, client])
            return "linked (BUG!)"
        except LinkError as err:
            return f"rejected: {err}"

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.startswith("rejected")
    print_table(
        "T7: stale-import linking",
        ["scenario", "name-based linker", "pid-based linker"],
        [["client stale after interface change",
          "links, later miscomputes", "LinkError at link time"]],
    )
    benchmark.extra_info["outcome"] = outcome[:90]


def test_interface_preserving_swap_links(benchmark, basis):
    """The converse guarantee: a recompiled provider with an unchanged
    interface links against old clients without their recompilation."""

    def run():
        session = Session(basis)
        p1 = compile_unit("fmt", PROVIDER_V1, [], session)
        client = compile_unit("report", CLIENT, [p1], session)
        p1b = compile_unit(
            "fmt", "structure Fmt = struct fun width () = 20 * 4 end", [],
            session)
        check_consistency([p1b, client])
        linker = Linker(session)
        exports = linker.link([p1b, client])
        return exports["report"].structures["Report"].values["columns"]

    columns = benchmark.pedantic(run, rounds=3, iterations=1)
    assert columns == 80
    benchmark.extra_info["columns"] = columns


def test_consistency_check_cost_at_scale(benchmark):
    """check_consistency over a 200-unit project is microseconds --
    negligible next to loading, let alone compiling."""
    w = generate_workload(layered([1, 20, 40, 60, 50, 25, 4], 3, seed=42),
                          helpers_per_unit=4)
    builder = CutoffBuilder(w.project)
    builder.build()
    units = [builder.units[name] for name in builder.last_graph.order]

    benchmark(lambda: check_consistency(units))
    benchmark.extra_info["units"] = len(units)


def test_unsafe_linking_demonstrates_miscomputation(benchmark, basis):
    """What verify=False permits: the wrongly-typed value flows."""

    def run():
        session = Session(basis)
        p1 = compile_unit("fmt", PROVIDER_V1, [], session)
        client = compile_unit("report", CLIENT, [p1], session)
        p2 = compile_unit("fmt", PROVIDER_V2, [], session)
        linker = Linker(session)
        exports = linker.link([p2, client], verify=False)
        return exports["report"].structures["Report"].values["columns"]

    columns = benchmark.pedantic(run, rounds=2, iterations=1)
    # Fmt.width now expects an int; the stale client passed unit.  The
    # evaluation happily computes `() * 2` (a Python quirk standing in
    # for machine-level garbage): columns claims type int but holds ().
    assert not isinstance(columns, int)
    benchmark.extra_info["miscomputed_value"] = repr(columns)
