"""Experiment T6 -- intrinsic-pid stability and sensitivity (paper §5).

A mutation battery over a realistic unit: every *non-interface* edit must
leave the pid fixed (alpha-conversion over stamps, line normalization
over comments); every *interface* edit must change it.  Plus cross-
session stability -- the property timestamps and naive hashes lack.
"""

from repro.units import Session, compile_unit

from .conftest import print_table

BASE = """
signature QUEUE = sig
  type 'a t
  val empty : 'a t
  val push : 'a * 'a t -> 'a t
  val pop : 'a t -> ('a * 'a t) option
end
structure Queue : QUEUE = struct
  datatype 'a t = Q of 'a list * 'a list
  val empty = Q (nil, nil)
  fun push (x, Q (front, back)) = Q (front, x :: back)
  fun pop (Q (nil, nil)) = NONE
    | pop (Q (nil, back)) = pop (Q (rev back, nil))
    | pop (Q (h :: t, back)) = SOME (h, Q (t, back))
end
functor Drain(X : QUEUE) = struct
  fun drain q = case X.pop q of NONE => nil
                              | SOME (h, rest) => h :: drain rest
end
"""

#: (label, transform, interface_changed?)
MUTATIONS = [
    ("leading comment", lambda s: "(* rev 2 *)\n" + s, False),
    ("inline comment",
     lambda s: s.replace("val empty = Q (nil, nil)",
                         "val empty = Q (nil, nil) (* both empty *)"),
     False),
    ("blank lines", lambda s: s.replace("\n", "\n\n"), False),
    ("rename bound variable",
     lambda s: s.replace("fun push (x, Q (front, back))",
                         "fun push (item, Q (front, back))").replace(
         "Q (front, x :: back)", "Q (front, item :: back)"), False),
    ("different algorithm",
     lambda s: s.replace("Q (front, x :: back)",
                         "Q (front @ [x], back)"), False),
    ("reorder independent bindings",
     lambda s: s.replace(
         "val empty = Q (nil, nil)\n  fun push (x, Q (front, back)) = "
         "Q (front, x :: back)",
         "fun push (x, Q (front, back)) = Q (front, x :: back)\n  "
         "val empty = Q (nil, nil)"), False),
    # Adding a member to Queue does NOT change the interface: Queue is
    # ascribed `: QUEUE`, and signature matching *thins* unspecified
    # members away.  The pid correctly stays put.
    ("new member hidden by ascription",
     lambda s: s.replace("end\nfunctor",
                         "  val size = 0\nend\nfunctor", 1), False),
    ("new top-level structure",
     lambda s: s + "\nstructure Extra = struct val size = 0 end\n", True),
    ("new signature member",
     lambda s: s.replace(
         "val pop : 'a t -> ('a * 'a t) option\nend",
         "val pop : 'a t -> ('a * 'a t) option\n  val depth : 'a t -> int"
         "\nend").replace(
         "end\nfunctor",
         "  fun depth (Q (f, b)) = length f + length b\nend\nfunctor", 1),
     True),
    ("datatype constructor added",
     lambda s: s.replace("datatype 'a t = Q of 'a list * 'a list",
                         "datatype 'a t = Q of 'a list * 'a list | Mark"
                         ).replace(
         "fun pop (Q (nil, nil)) = NONE",
         "fun pop Mark = NONE | pop (Q (nil, nil)) = NONE"), True),
    ("functor body edit (closure changes)",
     lambda s: s.replace("h :: drain rest", "drain rest @ [h]"), True),
]


def test_mutation_battery(benchmark, basis):
    def run():
        session = Session(basis)
        reference = compile_unit("q", BASE, [], session).export_pid
        outcomes = []
        for label, transform, iface in MUTATIONS:
            mutated = transform(BASE)
            assert mutated != BASE, label
            pid = compile_unit("q", mutated, [], session).export_pid
            outcomes.append((label, iface, pid != reference))
        return reference, outcomes

    _reference, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, iface_changed, pid_changed in outcomes:
        expected = "changes pid" if iface_changed else "keeps pid"
        observed = "changed" if pid_changed else "kept"
        rows.append([label, expected, observed])
        assert pid_changed == iface_changed, label
    print_table("T6: pid mutation battery",
                ["edit", "expected", "observed"], rows)
    benchmark.extra_info["battery"] = [
        {"edit": label, "pid_changed": changed}
        for label, _e, changed in outcomes
    ]


def test_cross_session_stability(benchmark, basis):
    """Pids are intrinsic: independent of the session that computed
    them and of how many stamps were minted beforehand."""

    def run():
        pids = []
        for warmup in range(3):
            session = Session(basis)
            for i in range(warmup * 5):
                compile_unit(f"junk{i}",
                             f"structure J{i} = struct datatype t = "
                             f"T{i} of int end", [], session)
            pids.append(compile_unit("q", BASE, [], session).export_pid)
        return pids

    pids = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(set(pids)) == 1
    print_table(
        "T6b: cross-session pid stability",
        ["session", "stamp offset", "pid (prefix)"],
        [[i, i * 5 * 2, pids[i][:16]] for i in range(len(pids))],
    )
    benchmark.extra_info["stable"] = True
