"""Ablations -- why each piece of the paper's design is load-bearing.

Three knobs, each switched off in isolation:

A1. *No DAG sharing in bin files* (§4): pickle environments as trees.
    The paper: "In the worst case ... exponential blowup."
A2. *No stamp alpha-conversion in hashing* (§5): hash raw session-local
    stamp ids.  Pids stop being intrinsic: the same source hashed in a
    new session gets a new pid, so every new session recompiles the
    world's dependents.
A3. *Source digests instead of interface hashes*: cutoff structure with
    ccache-style content keys.  Comment and implementation edits now
    cascade exactly like timestamps.
"""

from repro.cm import CutoffBuilder, Project
from repro.cm.ablation import SourceDigestBuilder
from repro.pickle.pickler import Pickler
from repro.pids.crc128 import CRC128
from repro.units import Session, compile_unit
from repro.workload import chain, generate_workload

from .conftest import print_table


def _tower_source(depth: int) -> str:
    """One unit whose structures nest doubly: S_k holds S_{k-1} twice."""
    lines = ["structure S0 = struct datatype t = Leaf of int end"]
    for k in range(1, depth):
        lines.append(
            f"structure S{k} = struct structure L = S{k-1} "
            f"structure R = S{k-1} end")
    return "\n".join(lines)


def test_a1_sharing_ablation(benchmark, basis):
    """Tree-mode pickling of a shared-structure tower: exponential."""

    def run():
        rows = []
        for depth in (2, 4, 6, 8, 10):
            session = Session(basis)
            unit = compile_unit("tower", _tower_source(depth), [], session)
            shared = len(unit.payload)
            tree_pickler = Pickler(
                local_stamp_ids=unit.owned_stamp_ids,
                extern=session.extern, share=False)
            tree = len(tree_pickler.run((unit.static_env, unit.code)))
            rows.append((depth, shared, tree))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "A1: bin bytes, DAG pickling vs tree pickling",
        ["nesting depth", "with sharing", "without sharing"],
        [[d, s, t] for d, s, t in rows],
    )
    # Shared grows linearly (one frame per level); tree doubles per level.
    first, last = rows[0], rows[-1]
    shared_growth = last[1] / first[1]
    tree_growth = last[2] / first[2]
    assert tree_growth > 8 * shared_growth, (shared_growth, tree_growth)
    benchmark.extra_info["rows"] = rows


BASE = """
signature S = sig type t val get : t -> int end
structure Impl : S = struct datatype t = T of int fun get (T n) = n end
"""


def test_a2_alpha_conversion_ablation(benchmark, basis):
    """Raw-stamp hashing: pids differ across sessions for identical
    source; alpha-converted pids do not."""

    def pid(session, raw: bool) -> str:
        unit = compile_unit("m", BASE, [], session)
        pickler = Pickler(local_stamp_ids=unit.owned_stamp_ids,
                          extern=session.extern, normalize_lines=True,
                          raw_stamps=raw)
        data = pickler.run(unit.static_env)
        return CRC128().update(data).hexdigest()

    def run():
        s1, s2 = Session(basis), Session(basis)
        # Skew s2's stamp counter the way any real session history would.
        compile_unit("skew", "structure Skew = struct datatype t = K end",
                     [], s2)
        return {
            "alpha": (pid(s1, raw=False), pid(s2, raw=False)),
            "raw": (pid(s1, raw=True), pid(s2, raw=True)),
        }

    pids = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pids["alpha"][0] == pids["alpha"][1]
    assert pids["raw"][0] != pids["raw"][1]
    print_table(
        "A2: cross-session pid stability",
        ["hashing", "session 1", "session 2", "stable?"],
        [
            ["alpha-converted (paper)", pids["alpha"][0][:12],
             pids["alpha"][1][:12], "yes"],
            ["raw stamp ids (ablation)", pids["raw"][0][:12],
             pids["raw"][1][:12], "NO -> every new session cascades"],
        ],
    )
    benchmark.extra_info["alpha_stable"] = True
    benchmark.extra_info["raw_stable"] = False


def test_a3_source_digest_overcompiles(benchmark):
    """Source-digest keys recompile every *direct* dependent on any
    textual change -- comments included -- where intrinsic pids stop at
    the edited unit."""

    def counts(builder_class, op: str) -> int:
        w = generate_workload(chain(10), helpers_per_unit=2)
        builder = builder_class(w.project)
        builder.build()
        getattr(w, op)("u000")
        return len(builder.build().compiled)

    def run():
        table = {}
        for op in ("edit_comment", "edit_implementation",
                   "edit_interface"):
            table[op] = (counts(SourceDigestBuilder, op),
                         counts(CutoffBuilder, op))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert table["edit_comment"] == (2, 1)
    assert table["edit_implementation"] == (2, 1)
    assert table["edit_interface"] == (2, 2)
    print_table(
        "A3: units recompiled (10-chain, root edited)",
        ["edit", "source-digest keys", "intrinsic pids (paper)"],
        [[op.removeprefix("edit_"), f"{a}/10", f"{b}/10"]
         for op, (a, b) in table.items()],
    )
    benchmark.extra_info["table"] = table


def test_a3b_source_digest_unsound_under_leakage(benchmark):
    """The deeper failure: source keys cannot see that a recompiled
    *intermediate* unit changed its exported interface (type leakage),
    so transitive dependents go stale.  Intrinsic pids both (a) schedule
    those recompilations and (b) catch the stale build at link time when
    the scheduler is wrong."""
    from repro.linker import LinkError

    def run():
        w = generate_workload(chain(6), helpers_per_unit=2,
                              leak_types=True)
        digests = SourceDigestBuilder(w.project)
        digests.build()
        w.edit_interface("u000")
        report = digests.build()
        try:
            digests.link()
            link_outcome = "linked stale build (UNSOUND)"
        except LinkError:
            link_outcome = "LinkError (pid check caught it)"

        w2 = generate_workload(chain(6), helpers_per_unit=2,
                               leak_types=True)
        cutoff = CutoffBuilder(w2.project)
        cutoff.build()
        w2.edit_interface("u000")
        cutoff_report = cutoff.build()
        cutoff.link()  # sound by construction
        return report.compiled, link_outcome, cutoff_report.compiled

    digest_compiled, link_outcome, cutoff_compiled = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert digest_compiled == ["u000", "u001"]       # stops too early
    assert "LinkError" in link_outcome               # but linkage saves us
    assert len(cutoff_compiled) == 6                 # pids do it right
    print_table(
        "A3b: leaky-interface edit on a 6-chain",
        ["scheduler", "recompiled", "link"],
        [
            ["source digests", f"{len(digest_compiled)}/6 (stale!)",
             link_outcome],
            ["intrinsic pids", f"{len(cutoff_compiled)}/6", "ok"],
        ],
    )
    benchmark.extra_info["digest"] = digest_compiled
    benchmark.extra_info["cutoff"] = cutoff_compiled
