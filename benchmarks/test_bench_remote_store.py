"""Experiment R3 -- what a shared remote bin cache buys a fleet.

N editing clients share one remote store server, each fronting it with
its own write-through local cache.  One client pays the cold
from-scratch build; everyone after that should *fetch* records instead
of recompiling them, and a client's second session should not even
touch the wire.  Persisted as ``BENCH_remote_store.json``:

- **hit rates**: fraction of units satisfied from the store (server
  fetch or local cache) rather than recompiled -- for a brand-new
  client, for a warm-cache client, and for a client that just edited a
  unit.  These are deterministic record counts and are gated (> 0.9
  warm); wall-clock ratios are machine-dependent and are reported
  without a CI gate.
- **bytes transferred**: the server's wire counters (compressed
  frames), split in/out, plus fetch/hit counts per phase.
- **cold vs warm wall time**: the from-scratch build against a fresh
  client's fetch-everything session and a warm client's no-op.
"""

import json
import os
import shutil
import tempfile
import time

from repro.cm import BinStore, CutoffBuilder, StoreServer
from repro.cm.remote import LoopbackTransport, RemoteBackend
from repro.workload import fanout, generate_workload

from .conftest import print_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT = os.path.join(REPO, "BENCH_remote_store.json")

SHAPE = fanout(22)  # 24 units: 1 base, 22 middles, 1 top
CLIENTS = 4
URL = "rbs://bench.fleet"


def fresh_project(edit=None):
    workload = generate_workload(SHAPE, helpers_per_unit=2)
    if edit:
        workload.edit_implementation(edit)
    return workload.project


def client_session(server, base, cid, edit=None, merge=False):
    """One client session: load via the remote backend, build, save.
    Returns (report, backend, wall_seconds)."""
    cache = os.path.join(base, f"client{cid}", ".bin")
    backend = RemoteBackend(URL, cache, LoopbackTransport(server))
    project = fresh_project(edit)
    t0 = time.perf_counter()
    store = BinStore.load_directory(cache, backend=backend)
    builder = CutoffBuilder(project, store=store)
    report = builder.build()
    store.save_directory(cache, merge=merge)
    wall = time.perf_counter() - t0
    return report, backend, wall


def hit_rate(report):
    total = len(report.loaded) + len(report.compiled)
    return len(report.loaded) / total if total else 0.0


def test_fleet_sharing_one_remote_store(benchmark):
    base = tempfile.mkdtemp(prefix="bench-remote-")

    def run():
        server = StoreServer(os.path.join(base, "server"))
        units = len(SHAPE)

        # Phase 1: one client pays the cold build and seeds the server.
        report, _backend, cold_wall = client_session(server, base, 0)
        assert len(report.compiled) == units
        seed_bytes_out = server.bytes_out

        # Phase 2: every other client's first session fetches, never
        # compiles.
        first_walls, first_rates, first_fetches = [], [], 0
        for cid in range(1, CLIENTS):
            report, backend, wall = client_session(server, base, cid)
            assert report.compiled == []
            first_walls.append(wall)
            first_rates.append(hit_rate(report))
            first_fetches += backend.remote_fetches

        # Phase 3: the same clients again -- warm caches, no wire
        # fetches at all.
        second_walls, second_rates = [], []
        for cid in range(1, CLIENTS):
            report, backend, wall = client_session(server, base, cid)
            assert report.compiled == []
            assert backend.remote_fetches == 0
            second_walls.append(wall)
            second_rates.append(hit_rate(report))

        # Phase 4: every client edits its own unit
        # (interface-preserving) and merge-saves; the cutoff keeps the
        # recompile to the edited unit, everything else is a hit.
        edit_rates = []
        for cid in range(1, CLIENTS):
            report, backend, _wall = client_session(
                server, base, cid, edit=f"u{cid:03d}", merge=True)
            assert len(report.compiled) >= 1
            edit_rates.append(hit_rate(report))

        return {
            "units": units,
            "clients": CLIENTS,
            "cold_wall_s": cold_wall,
            "warm_first_wall_s": min(first_walls),
            "warm_second_wall_s": min(second_walls),
            "warm_first_hit_rate": min(first_rates),
            "warm_second_hit_rate": min(second_rates),
            "edit_hit_rate": min(edit_rates),
            "remote_fetches_first_sessions": first_fetches,
            "server_requests": server.requests,
            "server_bytes_in": server.bytes_in,
            "server_bytes_out": server.bytes_out,
            "seed_bytes_out": seed_bytes_out,
        }

    try:
        result = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        shutil.rmtree(base, ignore_errors=True)

    # The deterministic gates: a warm client is a cache, not a compiler.
    assert result["warm_first_hit_rate"] > 0.9
    assert result["warm_second_hit_rate"] > 0.9
    assert result["edit_hit_rate"] > 0.9

    speedup = (result["cold_wall_s"] / result["warm_first_wall_s"]
               if result["warm_first_wall_s"] else float("inf"))
    print_table(
        f"R3: {CLIENTS} clients sharing one remote store "
        f"({result['units']} units)",
        ["metric", "value"],
        [["cold build (s)", f"{result['cold_wall_s']:.3f}"],
         ["warm fetch-all session (s)",
          f"{result['warm_first_wall_s']:.3f}"],
         ["warm cached session (s)",
          f"{result['warm_second_wall_s']:.3f}"],
         ["cold/warm ratio (no gate)", f"{speedup:.1f}x"],
         ["hit rate, first warm session",
          f"{result['warm_first_hit_rate']:.3f}"],
         ["hit rate, second session",
          f"{result['warm_second_hit_rate']:.3f}"],
         ["hit rate, after one edit", f"{result['edit_hit_rate']:.3f}"],
         ["server bytes out", result["server_bytes_out"]],
         ["server bytes in", result["server_bytes_in"]],
         ["server requests", result["server_requests"]]],
    )

    payload = {"schema": "bench-remote-store/1", "fleet": {
        key: (round(value, 6) if isinstance(value, float) else value)
        for key, value in result.items()
    }}
    benchmark.extra_info["fleet"] = payload["fleet"]
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
