"""Experiment F1 -- the paper's Figure 1, compiled, built, and run.

Checks the figure's semantic point (transparent matching propagates
``FSort.t = int list`` through the ``SORT``-constrained functor result)
and benchmarks the four-unit build.
"""

from repro.cm import CutoffBuilder, Project
from repro.dynamic.evaluate import apply_value
from repro.dynamic.values import python_list, sml_list
from repro.semant.format import format_type

from .conftest import print_table

UNITS = {
    "orders": """
        signature PARTIAL_ORDER = sig
          type elem
          val less : elem * elem -> bool
        end
        signature SORT = sig
          type t
          val sort : t list -> t list
        end
    """,
    "topsort": """
        functor TopSort(P : PARTIAL_ORDER) : SORT = struct
          type t = P.elem
          fun insert (x, nil) = [x]
            | insert (x, h :: rest) =
                if P.less (x, h) then x :: h :: rest
                else h :: insert (x, rest)
          fun sort l = foldl insert nil l
        end
    """,
    "factors": """
        structure Factors : PARTIAL_ORDER = struct
          type elem = int
          fun less (i, j) = (j mod i = 0)
        end
    """,
    "fsort": "structure FSort : SORT = TopSort(Factors)",
    "client": """
        structure Client = struct
          val sorted = FSort.sort [9, 3, 27, 1]
          val first = hd sorted
        end
    """,
}


def build_and_run():
    project = Project.from_sources(UNITS)
    builder = CutoffBuilder(project)
    report = builder.build()
    exports = builder.link()
    return builder, report, exports


def test_figure1_build_and_run(benchmark):
    builder, report, exports = benchmark.pedantic(
        build_and_run, rounds=3, iterations=1)

    # Transparency: the client applied FSort.sort to int list and took
    # hd :: int -- only legal because FSort.t = int leaked through SORT.
    fsort = builder.units["fsort"].static_env.structures["FSort"]
    sort_type = format_type(fsort.env.values["sort"].scheme)
    assert sort_type == "int list -> int list"

    client = exports["client"].structures["Client"]
    assert client.values["first"] in (1, 3, 9, 27)
    result = apply_value(
        exports["fsort"].structures["FSort"].values["sort"],
        sml_list([6, 2, 3]))
    assert sorted(python_list(result)) == [2, 3, 6]

    benchmark.extra_info["fsort_sort_type"] = sort_type
    benchmark.extra_info["units_compiled"] = len(report.compiled)
    print_table(
        "F1: Figure 1 reproduction",
        ["property", "paper", "measured"],
        [
            ["FSort.t", "int (list) visible to clients", sort_type],
            ["units", "5 (4 from figure + client)", len(report.compiled)],
            ["client sees int", "yes (transparent matching)", "yes"],
        ],
    )


def test_figure1_impl_edit_cutoff(benchmark):
    """Editing Factors' implementation must not recompile TopSort
    appliers (cutoff); editing its `elem` must."""

    def scenario():
        project = Project.from_sources(UNITS)
        builder = CutoffBuilder(project)
        builder.build()
        project.edit("factors", UNITS["factors"].replace(
            "(j mod i = 0)", "(0 = j mod i)"))
        impl_report = builder.build()
        project.edit("factors", UNITS["factors"] + "\n(* noop *)")
        builder.build()
        project.edit("factors", UNITS["factors"].replace(
            "type elem = int", "type elem = int * int").replace(
            "fun less (i, j) = (j mod i = 0)",
            "fun less ((i, _), (j, _)) = (j mod i = 0)"))
        try:
            iface_report = builder.build()
        except Exception:
            iface_report = None  # client no longer typechecks: expected
        return impl_report, iface_report

    impl_report, _ = benchmark.pedantic(scenario, rounds=2, iterations=1)
    assert impl_report.compiled == ["factors"]
    benchmark.extra_info["impl_edit_recompiles"] = impl_report.compiled
