"""Experiment T5 -- full-build and null-build at the paper's scale.

Paper §6: SML/NJ is "65,000 lines ... about 200 compilation units"; a
full bootstrap took 32 minutes.  The mechanism's payoff is that later
sessions *load bin files instead of recompiling*: we measure a cold
build, a warm null build (same session), a cross-session null build
(everything rehydrated from bins), and a one-unit touch rebuild.
"""

import time

from repro.cm import BinStore, CutoffBuilder
from repro.workload import generate_workload, layered

from .conftest import print_table

#: ~200 units in realistic layers, ~7k generated lines.
DEPS = layered([1, 20, 40, 60, 50, 25, 4], fan_in=3, seed=42)


def test_full_vs_null_vs_touch(benchmark):
    def run():
        w = generate_workload(DEPS, helpers_per_unit=10)
        timings = {}

        t0 = time.perf_counter()
        s1 = CutoffBuilder(w.project)
        cold_report = s1.build()
        timings["cold build"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_report = s1.build()
        timings["warm null build"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        s2 = CutoffBuilder(w.project, store=s1.store)
        load_report = s2.build()
        timings["new-session null build"] = time.perf_counter() - t0

        w.edit_implementation("u000")  # the root: worst case for make
        t0 = time.perf_counter()
        touch_report = s2.build()
        timings["root impl-edit rebuild"] = time.perf_counter() - t0

        return (w, timings, cold_report, warm_report, load_report,
                touch_report)

    (w, timings, cold, warm, load, touch) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    n = len(DEPS)
    assert len(cold.compiled) == n
    assert warm.compiled == [] and len(warm.cached) == n
    assert load.compiled == [] and len(load.loaded) == n
    assert touch.compiled == ["u000"]

    rows = [
        ["project", f"~200 units / 65k lines",
         f"{n} units / {w.total_lines()} lines"],
        ["cold build", "32 min",
         f"{timings['cold build']:.2f} s ({n} compiled)"],
        ["warm null build", "(in-memory envs)",
         f"{timings['warm null build']:.3f} s (all cached)"],
        ["new-session null build", "bin loading << recompiling",
         f"{timings['new-session null build']:.2f} s (all loaded)"],
        ["root impl-edit rebuild", "1 unit (cutoff)",
         f"{timings['root impl-edit rebuild']:.2f} s "
         f"({len(touch.compiled)} compiled)"],
    ]
    print_table("T5: build modes at ~200-unit scale",
                ["mode", "paper", "measured"], rows)

    # Shape assertions: loading dominates recompiling; touch << cold.
    assert timings["new-session null build"] < timings["cold build"]
    assert timings["root impl-edit rebuild"] < 0.5 * timings["cold build"]
    assert timings["warm null build"] < 0.2 * timings["cold build"]
    benchmark.extra_info["timings"] = {k: round(v, 3)
                                       for k, v in timings.items()}


def test_build_scales_linearly(benchmark):
    """Cold-build time per unit should be roughly flat in project size."""

    def run():
        per_unit = {}
        for layers in ([1, 5, 6], [1, 10, 15, 14], [1, 15, 30, 25, 9]):
            deps = layered(layers, fan_in=2, seed=3)
            w = generate_workload(deps, helpers_per_unit=6)
            t0 = time.perf_counter()
            CutoffBuilder(w.project).build()
            per_unit[len(deps)] = (time.perf_counter() - t0) / len(deps)
        return per_unit

    per_unit = benchmark.pedantic(run, rounds=1, iterations=1)
    times = list(per_unit.values())
    assert max(times) < 6 * min(times), per_unit
    print_table(
        "T5b: cold-build cost per unit vs project size",
        ["units", "ms/unit"],
        [[n, f"{1000 * t:.1f}"] for n, t in sorted(per_unit.items())],
    )
    benchmark.extra_info["ms_per_unit"] = {
        n: round(1000 * t, 2) for n, t in per_unit.items()
    }
