"""Experiment P1 -- wavefront parallel builds (parallel-build PR).

A 40-unit layered workload built serially and with ``--jobs 4``.  Two
questions:

1. *Determinism at scale*: the parallel build's export pids must equal
   the serial build's exactly (the byte-level half of this claim lives
   in tests/cm/test_parallel_determinism.py; here we re-check pids on a
   workload an order of magnitude larger).
2. *Available parallelism*: how much concurrency does the DAG actually
   offer?  Reported as total compile work / critical-path work over the
   wavefronts.

Wall-clock speedup is recorded but NOT asserted: this box advertises
``os.cpu_count()`` cores and CI containers routinely give exactly one,
where workers timeshare a single core and a process pool's pickling
only adds overhead.  The paper's determinism claim is scheduling-
independent, which is precisely what makes the number safe to report
rather than gate on.
"""

import os
import time

from repro.cm import CutoffBuilder, wavefronts
from repro.cm.depend import analyze
from repro.workload import generate_workload, layered

from .conftest import print_table

LAYERS = [8, 8, 8, 8, 8]  # 40 units, 5 waves


def _workload():
    return generate_workload(layered(LAYERS, fan_in=2, seed=7),
                             helpers_per_unit=12)


def test_parallel_vs_serial_build(benchmark):
    rows = []

    def run():
        serial_wl = _workload()
        serial = CutoffBuilder(serial_wl.project)
        t0 = time.perf_counter()
        serial_report = serial.build()
        serial_s = time.perf_counter() - t0

        parallel_wl = _workload()
        parallel = CutoffBuilder(parallel_wl.project)
        t0 = time.perf_counter()
        parallel_report = parallel.build(jobs=4, pool="process")
        parallel_s = time.perf_counter() - t0

        assert ({n: u.export_pid for n, u in parallel.units.items()}
                == {n: u.export_pid for n, u in serial.units.items()})
        assert len(parallel_report.outcomes) == sum(LAYERS)

        # Available parallelism from the serial build's own timings:
        # total compile work vs the critical path (per-wave maximum).
        graph = analyze(serial_wl.project)
        compile_s = {o.name: o.times.compile_total()
                     for o in serial_report.outcomes}
        total_work = sum(compile_s.values())
        critical = sum(max(compile_s[n] for n in wave)
                       for wave in wavefronts(graph))
        return (serial_s, parallel_s, parallel_report.pool,
                total_work, critical)

    serial_s, parallel_s, pool, total_work, critical = benchmark.pedantic(
        run, rounds=1, iterations=1)

    parallelism = total_work / critical if critical else 1.0
    rows = [
        ["serial", f"{serial_s:.3f}s", "1", "-"],
        [f"jobs=4 ({pool})", f"{parallel_s:.3f}s", "4",
         f"{serial_s / parallel_s:.2f}x"],
    ]
    print_table(
        f"P1: 40-unit layered build on {os.cpu_count()} core(s)",
        ["mode", "wall", "jobs", "speedup"], rows)
    print(f"DAG-available parallelism: {parallelism:.2f}x "
          f"(total work {total_work:.3f}s / "
          f"critical path {critical:.3f}s over {len(LAYERS)} waves)")

    benchmark.extra_info.update({
        "units": sum(LAYERS),
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "pool": pool,
        "cpu_count": os.cpu_count(),
        "dag_parallelism_x": round(parallelism, 3),
        "pids_identical": True,  # asserted above
    })
