"""Experiment R2 -- what the resident daemon buys.

Two claims with numbers attached, persisted as ``BENCH_daemon.json``:

1. **Warm-request latency.**  A no-op request against a warm daemon
   (live builder, warm sessions, no store load) should answer far
   faster than the batch cold start it replaces (process boots, store
   loads, every unit rehydrates).  We measure both on a 40-unit
   workload and report the speedup -- printed and persisted, no CI
   gate (wall-clock ratios are machine-dependent).
2. **Schedule occupancy.**  Ready-set dispatch exists to keep workers
   fed where wave barriers leave them idle (every wave waits for its
   slowest unit).  We trace a ``jobs=4`` build under both schedules
   and report ``worker_idle``'s occupancy for each.
"""

import json
import os
import shutil
import tempfile
import time

from repro.cm import (
    BinStore,
    BuildDaemon,
    CutoffBuilder,
    Project,
    SupervisePolicy,
)
from repro.obs import Tracer, worker_idle
from repro.workload import fanout, generate_workload

from .conftest import print_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT = os.path.join(REPO, "BENCH_daemon.json")

POLICY = SupervisePolicy(retries=1, backoff_base=0.001, backoff_cap=0.01)
SHAPE = fanout(38)  # 40 units: 1 base, 38 middle, 1 top
WARM_REQUESTS = 5


def write_tree(srcdir):
    workload = generate_workload(SHAPE, helpers_per_unit=1)
    os.makedirs(srcdir, exist_ok=True)
    for name in workload.project.names():
        with open(os.path.join(srcdir, name + ".sml"), "w",
                  encoding="utf-8") as fh:
            fh.write(workload.project.source(name))


def batch_noop_wall(srcdir):
    """One batch-style no-op run over an already-built tree: load the
    store, rebuild (all loaded), save -- the cold start every
    ``python -m repro.cm`` pays even when nothing changed."""
    bin_dir = os.path.join(srcdir, ".bin")
    t0 = time.perf_counter()
    store = BinStore.load_directory(bin_dir)
    builder = CutoffBuilder(Project.from_directory(srcdir), store=store)
    report = builder.build(jobs=4, pool="thread")
    store.save_directory(bin_dir)
    wall = time.perf_counter() - t0
    assert not report.compiled and not report.failed
    return wall


def test_cold_start_vs_warm_request(benchmark):
    """Batch no-op cold start vs the daemon's warm no-op request."""
    base = tempfile.mkdtemp(prefix="benchdaemon-")
    srcdir = os.path.join(base, "grp")

    def run():
        write_tree(srcdir)
        daemon = BuildDaemon(jobs=4, pool="thread", policy=POLICY)
        try:
            first = daemon.request(srcdir)  # populates store + builder
            assert len(first.report.compiled) == len(SHAPE)
            cold = min(batch_noop_wall(srcdir)
                       for _ in range(WARM_REQUESTS))
            warm_walls = []
            for _ in range(WARM_REQUESTS):
                reply = daemon.request(srcdir)
                assert len(reply.report.cached) == len(SHAPE)
                warm_walls.append(reply.wall_seconds)
        finally:
            daemon.shutdown()
        return cold, min(warm_walls)

    try:
        cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        shutil.rmtree(base, ignore_errors=True)
    speedup = cold / warm if warm else float("inf")

    print_table(
        "R2a: no-op latency, batch cold start vs warm daemon (40 units)",
        ["path", "best_of_5_s"],
        [["batch cold start", f"{cold:.4f}"],
         ["daemon warm request", f"{warm:.4f}"],
         ["speedup", f"{speedup:.1f}x"]],
    )
    payload = {
        "units": len(SHAPE),
        "jobs": 4,
        "cold_start_seconds": round(cold, 6),
        "warm_request_seconds": round(warm, 6),
        "speedup_ratio": round(speedup, 2),
    }
    benchmark.extra_info["latency"] = payload
    _merge_out("latency", payload)


def occupancy_for(schedule):
    tracer = Tracer()
    workload = generate_workload(SHAPE, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project, meter=tracer)
    report = builder.build(jobs=4, pool="thread", schedule=schedule)
    assert len(report.compiled) == len(SHAPE)
    return worker_idle(tracer, jobs=4)


def test_barrier_idle_vs_ready_set_occupancy(benchmark):
    """Worker occupancy under wave barriers vs ready-set dispatch."""

    def run():
        return occupancy_for("wavefront"), occupancy_for("ready")

    wave, ready = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "R2b: worker occupancy, jobs=4 (busy / jobs x build wall)",
        ["schedule", "busy_s", "wall_s", "idle_s", "occupancy"],
        [["wavefront", wave["busy_seconds"], wave["build_wall_seconds"],
          wave["idle_seconds"], wave["occupancy"]],
         ["ready-set", ready["busy_seconds"],
          ready["build_wall_seconds"], ready["idle_seconds"],
          ready["occupancy"]]],
    )
    payload = {"wavefront": wave, "ready": ready}
    benchmark.extra_info["occupancy"] = payload
    _merge_out("occupancy", payload)


def _merge_out(key, payload):
    """Both tests write one file; merge so either order works."""
    data = {"schema": "bench-daemon/1"}
    if os.path.exists(OUT):
        try:
            with open(OUT, encoding="utf-8") as fh:
                data.update(json.load(fh))
        except (OSError, ValueError):
            pass
    data[key] = payload
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
