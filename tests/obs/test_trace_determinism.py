"""Observability must not observe itself into the build output.

A traced build must produce byte-identical artifacts (export pids and
on-disk store files) to an untraced build: the meter reads the build,
it never feeds it.
"""

import os

from repro.cm import BinStore, CutoffBuilder, parallel_build
from repro.cm.store import LOCK_NAME, RECORD_LOCK_SUFFIX
from repro.obs import Tracer
from repro.workload import generate_workload
from repro.workload.shapes import diamond


def store_files(store_dir):
    out = {}
    for entry in sorted(os.listdir(store_dir)):
        if entry == LOCK_NAME or entry.endswith(RECORD_LOCK_SUFFIX):
            continue
        with open(os.path.join(store_dir, entry), "rb") as f:
            out[entry] = f.read()
    return out


def flow(store_dir, tracer=None, jobs=0):
    """Clean build + save, interface edit, rebuild + save."""
    workload = generate_workload(diamond(2, 2), helpers_per_unit=1)

    def run(builder):
        if jobs:
            return parallel_build(builder, jobs=jobs, pool="thread")
        return builder.build()

    builder = CutoffBuilder(workload.project, meter=tracer)
    run(builder)
    builder.store.save_directory(store_dir)
    workload.edit_interface("u000")
    builder = CutoffBuilder(
        workload.project,
        store=BinStore.load_directory(store_dir), meter=tracer)
    run(builder)
    builder.store.save_directory(store_dir)
    pids = {n: u.export_pid for n, u in builder.units.items()}
    return pids, store_files(store_dir)


class TestTracedBuildsAreByteIdentical:
    def test_serial(self, tmp_path):
        plain = flow(str(tmp_path / "plain"))
        tracer = Tracer()
        traced = flow(str(tmp_path / "traced"), tracer=tracer)
        assert traced == plain
        assert tracer.roots  # the tracer really was recording

    def test_parallel(self, tmp_path):
        plain = flow(str(tmp_path / "plain"), jobs=4)
        tracer = Tracer()
        traced = flow(str(tmp_path / "traced"), tracer=tracer, jobs=4)
        assert traced == plain
        assert any(s.name == "wave" for s in tracer.all_spans())

    def test_traced_serial_matches_untraced_parallel(self, tmp_path):
        serial = flow(str(tmp_path / "serial"), tracer=Tracer())
        par = flow(str(tmp_path / "par"), jobs=4)
        assert serial == par
