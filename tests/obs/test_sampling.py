"""Sampled always-on tracing: the counter tier and the 1-in-N tracer."""

from repro.obs.meter import BuildMeter
from repro.obs.sampling import CounterMeter, SamplingMeter

from tests.obs.test_tracer import FakeClock


class TestCounterMeter:
    def test_is_an_enabled_build_meter(self):
        meter = CounterMeter(clock=FakeClock())
        assert isinstance(meter, BuildMeter)
        assert meter.enabled is True

    def test_aggregates_spans_events_counters(self):
        clock = FakeClock()
        meter = CounterMeter(clock=clock)
        for _ in range(3):
            with meter.span("compile", unit="a"):
                clock.tick(2.0)
        meter.event("decision")
        meter.event("decision")
        meter.counter("bytes", 10)
        meter.counter("bytes", 5)
        meter.complete_span("worker-compile", 100.0, 101.5,
                            track="w1")
        roll = meter.rollup()
        assert roll["spans"]["compile"] == {"count": 3, "seconds": 6.0}
        assert roll["spans"]["worker-compile"]["seconds"] == 1.5
        assert roll["events"] == {"decision": 2}
        assert roll["counters"] == {"bytes": 15}

    def test_memory_is_aggregate_only(self):
        clock = FakeClock()
        meter = CounterMeter(clock=clock)
        for _ in range(1000):
            with meter.span("unit", unit="x"):
                clock.tick(0.001)
        assert len(meter.spans) == 1  # O(names), not O(spans)


class TestSamplingMeter:
    def meter(self, sample):
        clock = FakeClock()
        return clock, SamplingMeter(sample=sample, clock=clock)

    def run_build(self, clock, meter):
        with meter.span("build", cat="build"):
            with meter.span("unit", unit="a"):
                clock.tick(1.0)
            meter.counter("units.compiled", 1)

    def test_samples_one_in_n_builds(self):
        clock, meter = self.meter(sample=3)
        tracers = []
        for _ in range(7):
            self.run_build(clock, meter)
            tracers.append(meter.last_tracer)
        roll = meter.rollup()
        assert roll["builds_seen"] == 7
        assert roll["sampled_builds"] == 3  # builds 1, 4, 7
        # Aggregates cover every build, sampled or not.
        assert roll["spans"]["build"]["count"] == 7
        assert roll["counters"]["units.compiled"] == 7

    def test_sampled_build_gets_full_span_tree(self):
        clock, meter = self.meter(sample=2)
        self.run_build(clock, meter)
        tracer = meter.last_tracer
        assert tracer is not None
        (build,) = tracer.roots
        assert build.name == "build"
        assert [c.name for c in build.children] == ["unit"]
        # Between samples there is no in-flight tracer.
        assert meter.tracer is None

    def test_unsampled_build_keeps_no_spans(self):
        clock, meter = self.meter(sample=2)
        self.run_build(clock, meter)  # build 1: sampled
        first = meter.last_tracer
        self.run_build(clock, meter)  # build 2: counters only
        assert meter.last_tracer is first

    def test_sample_one_traces_everything(self):
        clock, meter = self.meter(sample=1)
        for _ in range(3):
            self.run_build(clock, meter)
        assert meter.rollup()["sampled_builds"] == 3
