"""Build history: the profile ring buffer and its scheduling feedback."""

import json
import os

from repro.cm.report import BuildReport, UnitOutcome
from repro.obs.history import (
    BuildHistory,
    BuildProfile,
    UnitProfile,
    longest_first_key,
    profile_from_report,
)
from repro.obs.ledger import BuildDecision, ExplanationLedger
from repro.units.unit import PhaseTimes


def make_profile(seq=0, manager="cutoff", **unit_seconds):
    profile = BuildProfile(seq=seq, manager=manager, group="g")
    for name, seconds in unit_seconds.items():
        profile.units[name] = UnitProfile(
            name=name, action="compiled", seconds=seconds)
    return profile


def make_report():
    report = BuildReport(jobs=2, pool="thread", schedule="ready",
                         wall_seconds=1.5,
                         dispatch_order=["a", "b"])
    report.add(UnitOutcome(
        name="a", action="compiled", reason="source changed",
        times=PhaseTimes(parse=0.5, elaborate=1.0, hash=0.25)))
    report.add(UnitOutcome(name="b", action="loaded",
                           reason="bin file current"))
    return report


class TestProfileFromReport:
    def test_captures_config_units_and_decisions(self):
        report = make_report()
        ledger = ExplanationLedger()
        ledger.record(BuildDecision(unit="a", verdict="recompiled",
                                    cause="source-changed",
                                    action="compiled"))
        ledger.record(BuildDecision(unit="b", verdict="reused",
                                    cause="all-import-pids-stable",
                                    action="loaded"))
        profile = profile_from_report(
            report, ledger=ledger,
            export_pids={"a": "aa" * 16, "b": "bb" * 16},
            group="proj", manager="cutoff")
        assert (profile.group, profile.manager) == ("proj", "cutoff")
        assert (profile.schedule, profile.jobs) == ("ready", 2)
        assert profile.dispatch_order == ["a", "b"]
        a = profile.unit("a")
        # Per-unit seconds are the full pipeline: compile + overhead.
        assert a.seconds == 1.75
        assert (a.verdict, a.cause) == ("recompiled", "source-changed")
        assert a.export_pid == "aa" * 16
        assert profile.unit("b").verdict == "reused"

    def test_round_trips_through_json(self):
        profile = profile_from_report(make_report(), group="g",
                                      manager="make")
        profile.seq = 7
        data = json.loads(json.dumps(profile.to_json()))
        back = BuildProfile.from_json(data)
        assert back.to_json() == profile.to_json()

    def test_unknown_format_is_rejected(self):
        try:
            BuildProfile.from_json({"format": 99})
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestRingBuffer:
    def test_record_assigns_monotonic_seqs(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        for _ in range(3):
            assert history.record(make_profile(x=1.0))
        assert [p.seq for p in history.profiles()] == [1, 2, 3]
        names = sorted(os.listdir(tmp_path / "profiles"))
        assert names == [f"BUILD_PROFILE-{n}.json" for n in (1, 2, 3)]

    def test_ring_keeps_newest(self, tmp_path):
        history = BuildHistory(str(tmp_path), keep=2)
        for _ in range(5):
            history.record(make_profile(x=1.0))
        assert [p.seq for p in history.profiles()] == [4, 5]

    def test_writes_are_atomic_no_tmp_left_behind(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        history.record(make_profile(x=1.0))
        leftovers = [n for n in os.listdir(tmp_path / "profiles")
                     if n.endswith(".tmp")]
        assert leftovers == []

    def test_damaged_profile_reads_as_absent(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        history.record(make_profile(x=1.0))
        history.record(make_profile(x=2.0))
        path = tmp_path / "profiles" / "BUILD_PROFILE-2.json"
        path.write_bytes(b"{ torn json")
        assert [p.seq for p in history.profiles()] == [1]
        assert history.latest().seq == 1

    def test_empty_history_queries(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        assert history.profiles() == []
        assert history.latest() is None
        assert history.compile_seconds() == {}
        assert history.next_seq() == 1

    def test_latest_filters_by_manager(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        history.record(make_profile(manager="cutoff", x=1.0))
        history.record(make_profile(manager="make", x=2.0))
        assert history.latest("cutoff").units["x"].seconds == 1.0
        assert history.latest("make").units["x"].seconds == 2.0
        assert history.latest("smart") is None


class TestCompileSeconds:
    def test_newest_measurement_wins(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        history.record(make_profile(a=5.0, b=1.0))
        history.record(make_profile(a=2.0))  # incremental: only a
        merged = history.compile_seconds()
        assert merged == {"a": 2.0, "b": 1.0}

    def test_depth_bounds_the_merge(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        history.record(make_profile(old=9.0))
        for _ in range(4):
            history.record(make_profile(a=1.0))
        assert "old" not in history.compile_seconds(depth=4)
        assert "old" in history.compile_seconds(depth=5)


class TestLongestFirstKey:
    def test_orders_longest_first_with_name_ties(self):
        key = longest_first_key({"slow": 5.0, "fast": 1.0, "mid": 3.0})
        names = sorted(["fast", "mid", "slow"], key=key)
        assert names == ["slow", "mid", "fast"]

    def test_unknown_units_rank_at_the_median(self):
        key = longest_first_key({"slow": 5.0, "mid": 3.0, "fast": 1.0})
        # median is 3.0: unknown sorts with "mid", after "slow",
        # before "fast"; ties break by name.
        names = sorted(["fast", "slow", "aaa-new"], key=key)
        assert names == ["slow", "aaa-new", "fast"]

    def test_no_history_means_no_key(self):
        assert longest_first_key({}) is None
