"""The span/event tracer: timing, nesting, tracks, Chrome export."""

import json
import threading

from repro.obs import (
    NULL_METER,
    BuildMeter,
    NullMeter,
    Tracer,
    phase_rollup,
    span_coverage,
    worker_idle,
    worker_occupancy,
)


class FakeClock:
    """A hand-cranked monotonic clock for byte-stable traces."""

    def __init__(self, start=100.0):
        self.t = start

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


class TestSpans:
    def test_nesting_and_durations(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("build"):
            clock.tick(2.0)
            with tr.span("unit", unit="a"):
                clock.tick(3.0)
            clock.tick(1.0)
        assert len(tr.roots) == 1
        build = tr.roots[0]
        assert build.name == "build"
        assert build.duration == 6.0
        (unit,) = build.children
        assert unit.name == "unit"
        assert unit.duration == 3.0
        assert unit.args == {"unit": "a"}

    def test_set_attaches_results(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("wave", index=0) as sp:
            sp.set(dispatched=4)
        assert tr.roots[0].args == {"index": 0, "dispatched": 4}

    def test_counters_accumulate(self):
        tr = Tracer(clock=FakeClock())
        tr.counter("bytes", 10)
        tr.counter("bytes", 5)
        tr.counter("units")
        assert tr.counters == {"bytes": 15, "units": 1}
        assert [s[2] for s in tr.counter_samples] == [10, 15, 1]

    def test_complete_span_lands_on_named_track(self):
        tr = Tracer(clock=FakeClock())
        tr.complete_span("compile", 101.0, 104.5, track="w9", unit="a")
        (span,) = tr.roots
        assert (span.track, span.duration) == ("w9", 3.5)

    def test_events_are_instants(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        clock.tick(0.5)
        tr.event("dispatch", cat="sched", unit="a")
        assert tr.events[0].at == 100.5
        assert tr.events[0].args == {"unit": "a"}

    def test_thread_gets_own_track_and_stack(self):
        tr = Tracer(clock=FakeClock())

        def work():
            with tr.span("inner"):
                pass

        with tr.span("outer"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        tracks = {s.track for s in tr.all_spans()}
        assert "main" in tracks and len(tracks) == 2
        # The thread's span is a root on its own track, not a child of
        # the main thread's open span.
        assert {s.name for s in tr.roots} == {"outer", "inner"}


class TestChromeExport:
    def trace(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("build", cat="build", jobs=2):
            clock.tick(1.0)
            with tr.span("unit", cat="unit", unit="a"):
                clock.tick(2.0)
            tr.event("dispatch", cat="sched", unit="b")
            tr.counter("pickle.bytes_out", 42)
        tr.complete_span("compile", 101.0, 102.0, track="w1")
        return tr

    def test_object_format_and_round_trip(self):
        doc = self.trace().to_chrome_trace()
        text = json.dumps(doc, sort_keys=True)
        assert json.loads(text) == doc
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i", "C", "M"}

    def test_timestamps_are_relative_microseconds(self):
        doc = self.trace().to_chrome_trace()
        build = next(e for e in doc["traceEvents"]
                     if e["name"] == "build")
        assert build["ts"] == 0.0
        assert build["dur"] == 3_000_000.0
        unit = next(e for e in doc["traceEvents"] if e["name"] == "unit")
        assert unit["ts"] == 1_000_000.0

    def test_tracks_map_to_tids_with_names(self):
        doc = self.trace().to_chrome_trace()
        meta = {e["args"]["name"]: e["tid"]
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert meta["main"] == 0
        assert "w1" in meta
        compile_ev = next(e for e in doc["traceEvents"]
                          if e["name"] == "compile")
        assert compile_ev["tid"] == meta["w1"]

    def test_extra_metadata_rides_along(self):
        doc = self.trace().to_chrome_trace(
            extra={"buildDecisions": {"units": {}}})
        assert doc["buildDecisions"] == {"units": {}}
        assert "traceEvents" in doc

    def test_fake_clock_traces_are_byte_stable(self):
        a = json.dumps(self.trace().to_chrome_trace(), sort_keys=True)
        b = json.dumps(self.trace().to_chrome_trace(), sort_keys=True)
        assert a == b


class TestAnalytics:
    def test_phase_rollup(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        for _ in range(2):
            with tr.span("parse"):
                clock.tick(1.0)
        roll = phase_rollup(tr)
        assert roll["parse"] == {"count": 2, "seconds": 2.0}

    def test_worker_occupancy(self):
        tr = Tracer(clock=FakeClock())
        tr.complete_span("c", 100.0, 101.0, track="w1")
        tr.complete_span("c", 101.0, 103.0, track="w1")
        tr.complete_span("c", 100.0, 100.5, track="w2")
        assert worker_occupancy(tr) == {"w1": 3.0, "w2": 0.5}

    def test_worker_occupancy_unions_overlapping_attempts(self):
        # A timed-out attempt and its retry can overlap on the same
        # track (the supervisor records abandoned attempts too): busy
        # time is the interval union, never more than wall clock.
        tr = Tracer(clock=FakeClock())
        tr.complete_span("c", 100.0, 104.0, track="sup")
        tr.complete_span("c", 102.0, 106.0, track="sup")
        tr.complete_span("c", 103.0, 105.0, track="sup")
        assert worker_occupancy(tr) == {"sup": 6.0}

    def test_worker_idle_occupancy_never_exceeds_one(self):
        # Two fully-overlapping attempt spans on one track must not
        # double-count busy time: one job busy for the whole build is
        # occupancy 1.0, not 2.0.
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("build"):
            clock.tick(4.0)
        tr.complete_span("worker-compile", 100.0, 104.0, track="w1")
        tr.complete_span("worker-compile", 100.0, 104.0, track="w1")
        idle = worker_idle(tr, jobs=1)
        assert idle["busy_seconds"] == 4.0
        assert idle["occupancy"] == 1.0
        assert idle["idle_seconds"] == 0.0

    def test_worker_idle_separate_tracks_still_sum(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("build"):
            clock.tick(4.0)
        tr.complete_span("worker-compile", 100.0, 104.0, track="w1")
        tr.complete_span("worker-compile", 100.0, 102.0, track="w2")
        idle = worker_idle(tr, jobs=2)
        assert idle["busy_seconds"] == 6.0
        assert idle["occupancy"] == 0.75

    def test_span_coverage_full_and_partial(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("run"):
            clock.tick(8.0)
        clock.tick(2.0)  # trailing unmeasured time
        assert abs(span_coverage(tr) - 0.8) < 1e-9

    def test_render_tree_mentions_spans_and_counters(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("build", jobs=2):
            clock.tick(1.0)
        tr.counter("units.compiled", 3)
        text = tr.render_tree()
        assert "build" in text and "jobs=2" in text
        assert "units.compiled = 3" in text


class TestNullMeter:
    def test_protocol_conformance(self):
        assert isinstance(NULL_METER, BuildMeter)
        assert isinstance(Tracer(clock=FakeClock()), BuildMeter)

    def test_null_meter_is_inert(self):
        assert NULL_METER.enabled is False
        with NULL_METER.span("x", cat="y", a=1) as sp:
            sp.set(b=2)
        NULL_METER.event("e")
        NULL_METER.counter("c", 5)
        NULL_METER.complete_span("z", 0.0, 1.0)

    def test_span_handle_is_shared_singleton(self):
        a = NullMeter().span("a")
        b = NULL_METER.span("b")
        assert a is b
