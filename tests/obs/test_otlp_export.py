"""OTLP/JSON trace export (tier 1): shape, links, determinism.

No OpenTelemetry package exists in this environment -- which is the
point.  The exporter writes the proto3 JSON mapping by hand and
:func:`validate_otlp` plays the collector's decoder: nesting, hex id
widths, int64-as-string timestamps, typed attributes.
"""

import json

import pytest

from repro.cm.__main__ import main
from repro.obs.export import to_otlp, validate_otlp
from repro.obs.ledger import BuildDecision, ExplanationLedger, PidChange
from repro.obs.tracer import Tracer

from tests.obs.test_tracer import FakeClock


def fake_trace():
    clock = FakeClock()
    tr = Tracer(clock=clock)
    with tr.span("build", cat="build", jobs=2):
        clock.tick(1.0)
        with tr.span("unit", cat="unit", unit="a"):
            clock.tick(2.0)
        with tr.span("unit", cat="unit", unit="b"):
            clock.tick(1.0)
        tr.event("dispatch", cat="sched", unit="b")
        tr.counter("units.compiled", 2)
    return tr


def all_spans(payload):
    return payload["resourceSpans"][0]["scopeSpans"][0]["spans"]


class TestShape:
    def test_validates_and_round_trips(self):
        payload = to_otlp(fake_trace(), resource={"build.jobs": 2})
        assert validate_otlp(payload) == []
        assert json.loads(json.dumps(payload)) == payload

    def test_span_tree_is_preserved(self):
        spans = all_spans(to_otlp(fake_trace()))
        build = next(s for s in spans if s["name"] == "build")
        units = [s for s in spans if s["name"] == "unit"]
        assert len(units) == 2
        assert all(u["parentSpanId"] == build["spanId"] for u in units)
        assert "parentSpanId" not in build

    def test_timestamps_anchor_to_base_epoch(self):
        base = 1_700_000_000_000_000_000
        spans = all_spans(to_otlp(fake_trace(), base_unix_nano=base))
        build = next(s for s in spans if s["name"] == "build")
        assert build["startTimeUnixNano"] == str(base)
        assert build["endTimeUnixNano"] == str(base + 4_000_000_000)

    def test_resource_attrs_and_counters(self):
        payload = to_otlp(fake_trace(),
                          resource={"build.manager": "cutoff",
                                    "build.jobs": 2})
        attrs = {a["key"]: a["value"] for a in
                 payload["resourceSpans"][0]["resource"]["attributes"]}
        assert attrs["build.manager"] == {"stringValue": "cutoff"}
        # int64s ride as strings (proto3 JSON mapping).
        assert attrs["build.jobs"] == {"intValue": "2"}
        assert attrs["counter.units.compiled"] == {"intValue": "2"}

    def test_events_attach_to_tightest_enclosing_span(self):
        # The instant lands inside both the build span and unit "b"
        # (which ends at the same tick); the narrower span wins.
        spans = all_spans(to_otlp(fake_trace()))
        build = next(s for s in spans if s["name"] == "build")
        b = next(s for s in spans if s["name"] == "unit"
                 and {"key": "unit", "value": {"stringValue": "b"}}
                 in s["attributes"])
        (event,) = b["events"]
        assert event["name"] == "dispatch"
        assert event["timeUnixNano"].isdigit()
        assert "events" not in build

    def test_fake_clock_export_is_byte_stable(self):
        a = json.dumps(to_otlp(fake_trace()), sort_keys=True)
        b = json.dumps(to_otlp(fake_trace()), sort_keys=True)
        assert a == b


class TestCulpritLinks:
    def test_recompile_links_to_culprit_span(self):
        tr = fake_trace()
        ledger = ExplanationLedger()
        ledger.record(BuildDecision(
            unit="b", verdict="recompiled", cause="import-pid-changed",
            action="compiled",
            changes=(PidChange(unit="a", old_pid="0" * 32,
                               new_pid="1" * 32),)))
        payload = to_otlp(tr, ledger=ledger)
        assert validate_otlp(payload) == []
        spans = all_spans(payload)
        a = next(s for s in spans if s["name"] == "unit"
                 and {"key": "unit", "value": {"stringValue": "a"}}
                 in s["attributes"])
        b = next(s for s in spans if s["name"] == "unit"
                 and {"key": "unit", "value": {"stringValue": "b"}}
                 in s["attributes"])
        (link,) = b["links"]
        assert link["spanId"] == a["spanId"]
        attrs = {x["key"]: x["value"] for x in link["attributes"]}
        assert attrs["relation"] == {"stringValue": "culprit-import"}
        assert "links" not in a

    def test_reuse_decisions_link_nothing(self):
        ledger = ExplanationLedger()
        ledger.record(BuildDecision(
            unit="b", verdict="reused", cause="all-import-pids-stable",
            action="loaded"))
        spans = all_spans(to_otlp(fake_trace(), ledger=ledger))
        assert not any("links" in s for s in spans)


class TestValidator:
    def test_flags_bad_ids_and_untyped_attrs(self):
        payload = to_otlp(fake_trace())
        spans = all_spans(payload)
        spans[0]["traceId"] = "nope"
        spans[1]["attributes"].append(
            {"key": "raw", "value": {"weird": 1}})
        problems = validate_otlp(payload)
        assert any("bad traceId" in p for p in problems)
        assert any("no typed value" in p for p in problems)

    def test_flags_int_value_not_string(self):
        payload = to_otlp(fake_trace())
        all_spans(payload)[0]["attributes"].append(
            {"key": "n", "value": {"intValue": 7}})
        assert any("must be a string" in p
                   for p in validate_otlp(payload))

    def test_flags_dangling_parent(self):
        payload = to_otlp(fake_trace())
        all_spans(payload)[1]["parentSpanId"] = "f" * 16
        assert any("dangling" in p for p in validate_otlp(payload))


@pytest.fixture
def srcdir(tmp_path):
    d = tmp_path / "proj"
    d.mkdir()
    (d / "one.sml").write_text(
        "structure One = struct val v = 11 end\n")
    (d / "two.sml").write_text(
        "structure Two = struct val w = One.v + 1 end\n")
    return str(d)


class TestCLI:
    def test_trace_format_otlp_writes_valid_payload(self, srcdir,
                                                    tmp_path, capsys):
        out = str(tmp_path / "build.otlp.json")
        rc = main([srcdir, "--no-link", "--jobs", "2",
                   "--trace-out", out, "--trace-format", "otlp"])
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        with open(out, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert validate_otlp(payload) == []
        attrs = {a["key"] for a in
                 payload["resourceSpans"][0]["resource"]["attributes"]}
        assert {"build.group", "build.manager", "build.schedule",
                "build.jobs"} <= attrs
        names = {s["name"] for s in all_spans(payload)}
        assert "run" in names and "build" in names
