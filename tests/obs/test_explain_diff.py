"""``--explain-diff``: cross-build decision diffing (tier 1).

A three-build story pinned down by a pid-normalized golden transcript:
the first build has no baseline, the second changes decisions
(store-miss becomes source-changed / import-pid-changed), and the
third keeps the client's cause but moves its culprit import from one
upstream unit to another -- the "why did it rebuild *this* time"
question the diff exists to answer.
"""

import os
import re

import pytest

from repro.cm.__main__ import main
from repro.obs.diff import UnitDiff, diff_against_profile
from repro.obs.history import BuildHistory
from repro.obs.ledger import BuildDecision, ExplanationLedger

PID = re.compile(r"\b[0-9a-f]{32}\b")
GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "explain_diff.txt")


@pytest.fixture
def srcdir(tmp_path):
    d = tmp_path / "proj"
    d.mkdir()
    (d / "a.sml").write_text("structure A = struct val x = 1 end\n")
    (d / "b.sml").write_text("structure B = struct val y = 2 end\n")
    (d / "client.sml").write_text(
        "structure C = struct val z = A.x + B.y end\n")
    return str(d)


def run_diff(srcdir, capsys):
    rc = main([srcdir, "--no-link", "--explain-diff"])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    text = captured.out
    start = text.index("explain-diff")
    return PID.sub("<pid>", text[start:].rstrip()) + "\n"


class TestGoldenTranscript:
    def test_three_build_transcript_matches_golden(self, srcdir,
                                                   capsys):
        transcript = ["== build 1: from scratch ==\n",
                      run_diff(srcdir, capsys)]

        # Widen A's interface: a recompiles (source), client
        # recompiles because A's export pid changed.
        with open(os.path.join(srcdir, "a.sml"), "w") as fh:
            fh.write("structure A = struct val x = 1 "
                     "val extra = 5 end\n")
        transcript += ["== build 2: A's interface changed ==\n",
                       run_diff(srcdir, capsys)]

        # Now widen B's interface: the client's cause is the same
        # (import-pid-changed) but the culprit moves from a to b.
        with open(os.path.join(srcdir, "b.sml"), "w") as fh:
            fh.write("structure B = struct val y = 2 "
                     "val extra = 7 end\n")
        transcript += ["== build 3: B's interface changed ==\n",
                       run_diff(srcdir, capsys)]

        got = "".join(transcript)
        with open(GOLDEN, encoding="utf-8") as fh:
            want = fh.read()
        assert got == want

    def test_single_unit_query(self, srcdir, capsys):
        # Two builds stabilize every decision; the third then asks
        # about one untouched unit only.
        for _ in range(2):
            rc = main([srcdir, "--no-link"])
            capsys.readouterr()
            assert rc == 0
        with open(os.path.join(srcdir, "a.sml"), "w") as fh:
            fh.write("structure A = struct val x = 9 end\n")
        rc = main([srcdir, "--no-link", "--explain-diff", "b"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "b: unchanged" in captured.out
        assert "client" not in captured.out.split("explain-diff")[1]


class TestDiffAPI:
    def decision(self, unit, verdict, cause, **kw):
        return BuildDecision(unit=unit, verdict=verdict, cause=cause,
                             action="compiled", **kw)

    def test_no_prior_profile(self):
        ledger = ExplanationLedger()
        ledger.record(self.decision("a", "recompiled", "store-miss"))
        diff = diff_against_profile(ledger, None)
        assert diff.prior is None
        assert "first recorded build" in diff.render_text()
        assert "first recorded build" in diff.render_text("a")

    def test_dropped_and_new_units(self, tmp_path):
        history = BuildHistory(str(tmp_path))
        ledger = ExplanationLedger()
        ledger.record(self.decision("old", "recompiled", "store-miss"))
        from repro.cm.report import BuildReport, UnitOutcome
        from repro.obs.history import profile_from_report
        report = BuildReport()
        report.add(UnitOutcome(name="old", action="compiled"))
        profile = profile_from_report(report, ledger=ledger)

        after = ExplanationLedger()
        after.record(self.decision("new", "recompiled", "store-miss"))
        diff = diff_against_profile(after, profile)
        kinds = {d.unit: d.kind for d in diff.diffs.values()}
        assert kinds == {"new": "new-unit", "old": "dropped-unit"}
        assert all(isinstance(d, UnitDiff)
                   for d in diff.diffs.values())
        assert diff.get("missing") is None
        assert "no decision in either build" in \
            diff.render_text("missing")
