"""``--explain`` with interface slices (golden, tier 1).

The per-binding cutoff's audit trail: after an interface edit to one
binding of a shared provider, the ledger names the *actual* binding
behind each decision -- ``iface.Cold (structure) stable`` for the
client that reused, ``iface.Hot (structure) changed`` for the one that
recompiled.  Pids are volatile (they move whenever the pickler
changes), so the golden normalizes every 32-hex digest to ``<pid>``;
everything else must match byte for byte.
"""

import os
import re

import pytest

from repro.cm.__main__ import main

HERE = os.path.dirname(__file__)
GOLDEN = os.path.join(HERE, "golden", "explain_slicing.txt")

IFACE_V1 = """structure Hot = struct
  fun heat x = x + 1
end
structure Cold = struct
  fun chill x = x - 1
end
"""

#: The edit: one new value in Hot's interface; Cold untouched.
IFACE_V2 = IFACE_V1.replace(
    "  fun heat x = x + 1\n",
    "  fun heat x = x + 1\n  val boiling = 100\n")

PID = re.compile(r"\b[0-9a-f]{32}\b")


@pytest.fixture
def srcdir(tmp_path):
    d = tmp_path / "proj"
    d.mkdir()
    (d / "iface.sml").write_text(IFACE_V1)
    (d / "hot.sml").write_text(
        "structure UseHot = struct\n  val v = Hot.heat 1\nend\n")
    (d / "cold.sml").write_text(
        "structure UseCold = struct\n  val v = Cold.chill 1\nend\n")
    return str(d)


def rebuild_after_edit(srcdir, capsys, *extra):
    assert main([srcdir, "--manager", "smart", "--no-link"]) == 0
    capsys.readouterr()
    with open(os.path.join(srcdir, "iface.sml"), "w") as fh:
        fh.write(IFACE_V2)
    assert main([srcdir, "--manager", "smart", "--no-link",
                 "--explain", *extra]) == 0
    return capsys.readouterr().out


class TestExplainSlicing:
    def test_ledger_matches_golden(self, srcdir, capsys):
        out = rebuild_after_edit(srcdir, capsys)
        ledger = out[out.index("build decisions"):]
        with open(GOLDEN) as fh:
            expected = fh.read()
        assert PID.sub("<pid>", ledger) == expected

    def test_single_unit_names_the_stable_binding(self, srcdir, capsys):
        out = rebuild_after_edit(srcdir, capsys, "cold")
        assert "cold: reused (used-bindings-stable)" in out
        assert "iface.Cold (structure) stable" in out
        # Only the requested unit is explained.
        ledger = out[out.index("cold: reused"):]
        assert "iface.Hot" not in ledger

    def test_single_unit_names_the_changed_binding(self, srcdir, capsys):
        out = rebuild_after_edit(srcdir, capsys, "hot")
        assert "hot: recompiled (import-pid-changed)" in out
        assert "iface.Hot (structure) changed (pid " in out
