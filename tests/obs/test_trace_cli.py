"""``--trace`` / ``--trace-out`` / ``--explain`` from the CLI (tier 1).

The acceptance gates live here: the emitted file is valid Chrome
``trace_event`` JSON, its spans cover (almost) all of the measured
wall-clock, and the embedded decision ledger attributes every unit.
"""

import json
import os

import pytest

from repro.cm.__main__ import main


@pytest.fixture
def srcdir(tmp_path):
    d = tmp_path / "proj"
    d.mkdir()
    (d / "base.sml").write_text(
        "structure Base = struct fun triple x = 3 * x end\n")
    (d / "mid.sml").write_text(
        "structure Mid = struct val six = Base.triple 2 end\n")
    (d / "main.sml").write_text(
        "structure Main = struct val answer = Base.triple 14 end\n")
    return str(d)


def run_traced(srcdir, tmp_path, capsys, extra_args=()):
    out_file = str(tmp_path / "build.trace.json")
    rc = main([srcdir, "--jobs", "4", "--trace-out", out_file,
               *extra_args])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    with open(out_file, encoding="utf-8") as fh:
        text = fh.read()
    return json.loads(text), text, captured


class TestTraceOut:
    def test_valid_chrome_trace_json(self, srcdir, tmp_path, capsys):
        doc, text, _ = run_traced(srcdir, tmp_path, capsys)
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i", "C", "M")
            assert "pid" in ev and "tid" in ev
            if ev["ph"] == "X":
                assert ev["dur"] >= 0 and ev["ts"] >= 0
        # sort_keys=True: re-serialising reproduces the file.
        assert json.dumps(doc, indent=1, sort_keys=True) == text.rstrip()

    def test_spans_cover_95_percent_of_wall_clock(self, srcdir,
                                                  tmp_path, capsys):
        doc, _text, _ = run_traced(srcdir, tmp_path, capsys)
        wall_us = doc["wallSeconds"] * 1e6
        assert wall_us > 0
        run = next(e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["name"] == "run")
        assert run["dur"] >= 0.95 * wall_us

    def test_ledger_attributes_every_unit(self, srcdir, tmp_path,
                                          capsys):
        doc, _text, _ = run_traced(srcdir, tmp_path, capsys)
        decisions = doc["buildDecisions"]["units"]
        assert sorted(decisions) == ["base", "main", "mid"]
        for entry in decisions.values():
            assert entry["verdict"] in ("recompiled", "reused")
            assert entry["cause"]
        assert doc["criticalPath"]["chain"]
        assert set(doc["phaseTotals"]) >= {"parse", "elaborate"}

    def test_incremental_trace_explains_the_cascade(self, srcdir,
                                                    tmp_path, capsys):
        run_traced(srcdir, tmp_path, capsys)
        with open(os.path.join(srcdir, "base.sml"), "w") as fh:
            fh.write("structure Base = struct fun triple x = x * 3"
                     "  fun extra y = y end\n")
        doc, _text, _ = run_traced(srcdir, tmp_path, capsys)
        units = doc["buildDecisions"]["units"]
        assert units["base"]["cause"] == "source-changed"
        assert units["mid"]["cause"] == "import-pid-changed"
        assert units["mid"]["changes"][0]["unit"] == "base"

    def test_worker_tracks_present_for_parallel_build(self, srcdir,
                                                      tmp_path, capsys):
        doc, _text, _ = run_traced(srcdir, tmp_path, capsys)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert "main" in names
        assert any(n.startswith("w") for n in names)

    def test_unwritable_output_is_an_error(self, srcdir, capsys):
        rc = main([srcdir, "--no-link", "--trace-out",
                   "/nonexistent/dir/t.json"])
        assert rc == 1
        assert "cannot write" in capsys.readouterr().err


class TestTraceReport:
    def test_trace_prints_tree_and_critical_path(self, srcdir, tmp_path,
                                                 capsys):
        assert main([srcdir, "--trace", "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "ms wall" in out
        assert "build" in out
        assert "critical path" in out
        assert "counters:" in out

    def test_explain_all_units(self, srcdir, capsys):
        assert main([srcdir, "--explain", "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "build decisions (3 unit(s))" in out
        assert "store-miss" in out

    def test_explain_single_unit(self, srcdir, capsys):
        assert main([srcdir, "--no-link"]) == 0
        capsys.readouterr()
        assert main([srcdir, "--explain", "mid", "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "mid: reused (all-import-pids-stable)" in out
        assert "base:" not in out

    def test_untraced_build_output_unchanged(self, srcdir, capsys):
        assert main([srcdir, "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "trace" not in out
        assert "build decisions" not in out
