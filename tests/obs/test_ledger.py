"""The cutoff-explanation ledger: every decision has a typed cause."""

import os

from repro.cm import BinStore, CutoffBuilder, SmartBuilder, TimestampBuilder
from repro.cm.faults import bit_flip, payload_path
from repro.obs.ledger import (
    RECOMPILE_CAUSES,
    REUSE_CAUSES,
    ExplanationLedger,
    PidChange,
    explain_decision,
    pid_changes,
)
from repro.workload import generate_workload
from repro.workload.shapes import chain


class TestExplainDecision:
    def test_store_miss(self):
        d = explain_decision("a", "compiled", reason="no bin file",
                             had_record=False)
        assert (d.verdict, d.cause) == ("recompiled", "store-miss")

    def test_quarantined(self):
        d = explain_decision("a", "compiled", had_record=False,
                             quarantine_kinds=("payload-checksum-mismatch",))
        assert d.cause == "quarantined"
        assert d.quarantine_kinds == ("payload-checksum-mismatch",)

    def test_source_changed(self):
        d = explain_decision("a", "compiled", had_record=True,
                             source_changed=True)
        assert d.cause == "source-changed"

    def test_import_pid_changed_names_the_culprit(self):
        d = explain_decision(
            "b", "compiled", had_record=True, source_changed=False,
            prior_imports=(("a", "pid1"),),
            live_imports=(("a", "pid2"),))
        assert d.cause == "import-pid-changed"
        assert d.changes == (PidChange("a", "pid1", "pid2"),)
        assert "pid1 -> pid2" in d.describe()

    def test_policy_when_nothing_actually_changed(self):
        d = explain_decision(
            "b", "compiled", reason="an import was rebuilt",
            had_record=True, source_changed=False,
            prior_imports=(("a", "pid1"),),
            live_imports=(("a", "pid1"),))
        assert d.cause == "policy"

    def test_reused_stable(self):
        d = explain_decision(
            "b", "loaded", had_record=True,
            prior_imports=(("a", "pid1"),),
            live_imports=(("a", "pid1"),))
        assert (d.verdict, d.cause) == ("reused", "all-import-pids-stable")

    def test_reused_despite_pid_change_is_smart_cutoff(self):
        d = explain_decision(
            "b", "cached", had_record=True,
            prior_imports=(("a", "pid1"),),
            live_imports=(("a", "pid2"),))
        assert d.cause == "used-bindings-stable"

    def test_causes_are_in_the_published_vocabulary(self):
        assert "policy" in RECOMPILE_CAUSES
        assert "used-bindings-stable" in REUSE_CAUSES


class TestPidChanges:
    def test_kinds(self):
        changes = pid_changes(
            (("a", "p1"), ("gone", "p2")),
            (("a", "p9"), ("new", "p3")))
        by_unit = {c.unit: c for c in changes}
        assert by_unit["a"].kind == "changed"
        assert by_unit["gone"].kind == "dropped-import"
        assert by_unit["new"].kind == "new-import"

    def test_stable_imports_report_nothing(self):
        assert pid_changes((("a", "p1"),), (("a", "p1"),)) == ()


class TestLedger:
    def test_render_unknown_unit(self):
        ledger = ExplanationLedger()
        assert "no decision recorded" in ledger.render_text("ghost")

    def test_json_shape(self):
        ledger = ExplanationLedger()
        ledger.record(explain_decision("a", "compiled",
                                       had_record=False))
        doc = ledger.to_json()
        assert doc["causes"] == {"store-miss": 1}
        assert doc["units"]["a"]["verdict"] == "recompiled"


def rebuild(workload, store_dir, cls=CutoffBuilder):
    builder = cls(workload.project,
                  store=BinStore.load_directory(store_dir))
    builder.build()
    builder.store.save_directory(store_dir)
    return builder


class TestLedgerIntegration:
    """chain(3): u000 <- u001 <- u002, the paper's cascade example."""

    def seed(self, tmp_path, cls=CutoffBuilder):
        workload = generate_workload(chain(3), helpers_per_unit=1)
        store_dir = str(tmp_path / "store")
        builder = cls(workload.project)
        builder.build()
        builder.store.save_directory(store_dir)
        return workload, store_dir, builder

    def test_clean_build_is_all_store_misses(self, tmp_path):
        _w, _d, builder = self.seed(tmp_path)
        assert builder.ledger.cause_counts() == {"store-miss": 3}

    def test_noop_rebuild_is_all_stable(self, tmp_path):
        workload, store_dir, _ = self.seed(tmp_path)
        builder = rebuild(workload, store_dir)
        assert builder.ledger.cause_counts() == {
            "all-import-pids-stable": 3}

    def test_interface_edit_cascade_and_cutoff(self, tmp_path):
        workload, store_dir, _ = self.seed(tmp_path)
        workload.edit_interface("u000")
        builder = rebuild(workload, store_dir)
        ledger = builder.ledger
        assert ledger.get("u000").cause == "source-changed"
        mid = ledger.get("u001")
        assert mid.cause == "import-pid-changed"
        assert [c.unit for c in mid.changes] == ["u000"]
        assert mid.changes[0].old_pid != mid.changes[0].new_pid
        # u001 re-exported the same interface, so the cascade stops:
        assert ledger.get("u002").cause == "all-import-pids-stable"

    def test_make_cascade_is_flagged_as_policy(self, tmp_path):
        workload, store_dir, _ = self.seed(tmp_path,
                                           cls=TimestampBuilder)
        workload.edit_comment("u000")
        builder = rebuild(workload, store_dir, cls=TimestampBuilder)
        ledger = builder.ledger
        assert ledger.get("u000").cause == "source-changed"
        # make rebuilds the dependents although every pid is stable --
        # exactly the rebuilds cutoff avoids, so the cause is "policy".
        assert ledger.get("u001").cause == "policy"
        assert ledger.get("u002").cause == "policy"

    def test_smart_reuse_despite_pid_change(self, tmp_path):
        workload, store_dir, _ = self.seed(tmp_path, cls=SmartBuilder)
        workload.edit_interface("u000")
        builder = rebuild(workload, store_dir, cls=SmartBuilder)
        ledger = builder.ledger
        assert ledger.get("u000").cause == "source-changed"
        mid = ledger.get("u001")
        if mid.verdict == "reused":  # none of the used bindings moved
            assert mid.cause == "used-bindings-stable"
            assert mid.changes  # the pid really did change

    def test_quarantined_record_is_attributed(self, tmp_path):
        workload, store_dir, _ = self.seed(tmp_path)
        bit_flip(payload_path(store_dir, "u001"), offset=2)
        builder = rebuild(workload, store_dir)
        decision = builder.ledger.get("u001")
        assert decision.cause == "quarantined"
        assert "payload-checksum-mismatch" in decision.quarantine_kinds

    def test_every_unit_gets_a_decision(self, tmp_path):
        workload, store_dir, builder = self.seed(tmp_path)
        assert sorted(d.unit for d in builder.ledger) == [
            "u000", "u001", "u002"]
        builder = rebuild(workload, store_dir)
        assert len(builder.ledger) == 3

    def test_report_carries_the_ledger(self, tmp_path):
        workload, store_dir, _ = self.seed(tmp_path)
        builder = CutoffBuilder(workload.project,
                                store=BinStore.load_directory(store_dir))
        report = builder.build()
        assert report.ledger is builder.ledger
        stats = report.stats()
        assert stats["causes"] == {"all-import-pids-stable": 3}
        assert stats["cache_hits"] == 3
