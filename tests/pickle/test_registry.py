"""The pickle class registry: the bin-file format's stability contract.

Class tags are positional, so the registry's order IS the format. This
golden test fails loudly when someone reorders or removes entries --
i.e. when old bin files would silently misparse.  (Adding new classes at
the end is compatible; extend the golden list.)

It also reports our equivalent of the paper's representation inventory:
"36 different datatypes ... 115 variants ... 193 record fields".
"""

import pytest

from repro.pickle.registry import (
    CLASS_TO_TAG,
    REGISTRY,
    STAMPED_CLASSES,
    TAG_TO_ENTRY,
    prim_tycon_table,
)

#: The first (semantic-object) section of the registry, in tag order.
GOLDEN_SEMANT_PREFIX = [
    "ConType",
    "RecordType",
    "FunType",
    "PolyType",
    "BoundVar",
    "DatatypeTycon",
    "AbstractTycon",
    "TypeFun",
    "Constructor",
    "OverloadScheme",
    "ValueBinding",
    "Env",
    "Structure",
    "Sig",
    "Functor",
]


class TestStability:
    def test_semantic_prefix_fixed(self):
        names = [cls.__name__ for cls, _fields in REGISTRY]
        assert names[: len(GOLDEN_SEMANT_PREFIX)] == GOLDEN_SEMANT_PREFIX

    def test_tags_bijective(self):
        assert len(CLASS_TO_TAG) == len(REGISTRY)
        assert len(TAG_TO_ENTRY) == len(REGISTRY)
        for cls, tag in CLASS_TO_TAG.items():
            assert TAG_TO_ENTRY[tag][0] is cls

    def test_every_ast_node_registered(self):
        import dataclasses

        from repro.lang import ast

        for name in dir(ast):
            cls = getattr(ast, name)
            if (isinstance(cls, type) and dataclasses.is_dataclass(cls)
                    and cls.__module__ == "repro.lang.ast"):
                assert cls in CLASS_TO_TAG, name

    def test_stamped_classes_registered(self):
        for cls in STAMPED_CLASSES:
            assert cls in CLASS_TO_TAG

    def test_fields_match_slots_or_dataclass(self):
        import dataclasses

        for cls, fields in REGISTRY:
            if dataclasses.is_dataclass(cls):
                expected = tuple(f.name for f in dataclasses.fields(cls))
            else:
                expected = tuple(cls.__slots__)
            assert fields == expected, cls.__name__

    def test_prim_table_contents(self):
        table = prim_tycon_table()
        assert set(table) == {
            "int", "word", "real", "string", "char", "exn", "ref",
            "array", "vector",
        }


class TestInventoryScale:
    """Our static-environment representation vs the paper's (§4)."""

    def test_inventory_reported(self):
        classes = len(REGISTRY)
        fields = sum(len(f) for _cls, f in REGISTRY)
        # The paper: 36 datatypes, 115 variants, 193 record fields.  Our
        # graph is leaner but must be rich enough to be a real test of
        # the pickler.
        assert classes >= 50
        assert fields >= 150
