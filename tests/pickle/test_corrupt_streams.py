"""Corrupt bin streams must fail *closed*: the unpickler may only ever
raise ``UnpickleError`` (with byte-offset context), never an uncaught
IndexError/KeyError/struct.error/RecursionError escaping to the caller.

This is the contract the bin store's quarantine path relies on: any
payload that slips past the checksums still surfaces as a typed error
the builder converts into a recompile.
"""

import pytest

from repro.pickle import UnpickleError, dehydrate, rehydrate


def sample_stream():
    value = {"env": [1, "two", (3.0, None)], "shared": ["abcdefgh"] * 3,
             "blob": b"\x00\x01\x02", "flag": True}
    data, _ = dehydrate(value)
    return data


def assert_typed_failure_or_value(blob):
    """Decoding may succeed (the corruption landed in slack space) but a
    failure must be exactly UnpickleError."""
    try:
        rehydrate(blob)
    except UnpickleError as err:
        assert "byte" in str(err)  # offset context for diagnostics
    # Any other exception type propagates and fails the test.


class TestTruncation:
    def test_every_prefix_is_typed(self):
        data = sample_stream()
        for cut in range(len(data)):
            assert_typed_failure_or_value(data[:cut])

    def test_empty_stream(self):
        with pytest.raises(UnpickleError):
            rehydrate(b"")


class TestBitFlips:
    def test_single_byte_substitutions(self):
        data = sample_stream()
        for pos in range(len(data)):
            for sub in (0x00, 0xFF, data[pos] ^ 0x01, data[pos] ^ 0x80):
                blob = data[:pos] + bytes([sub]) + data[pos + 1:]
                assert_typed_failure_or_value(blob)


class TestGarbage:
    def test_arbitrary_bytes(self):
        for blob in (b"\xff" * 64, bytes(range(256)), b"not a pickle",
                     b"\x00" * 32, b"\x7f" * 8):
            assert_typed_failure_or_value(blob)

    def test_big_ints_still_roundtrip(self):
        # Legitimate bigints far past 64 bits must survive; the varint
        # cap only kicks in on absurd continuation runs.
        for n in (2**64, 2**200, -(2**300)):
            data, _ = dehydrate(n)
            out, _ = rehydrate(data)
            assert out == n

    def test_oversized_varint_is_rejected(self):
        # An INT whose (terminated) varint exceeds the width cap must be
        # refused rather than accumulating a multi-megabit bigint.
        with pytest.raises(UnpickleError, match="varint too long"):
            rehydrate(b"\x03" + b"\xff" * 20000 + b"\x00")

    def test_unterminated_varint_is_truncation(self):
        with pytest.raises(UnpickleError, match="truncated"):
            rehydrate(b"\x03" + b"\xff" * 32)

    def test_out_of_range_backref(self):
        # T_REF to an object that was never defined.
        data = sample_stream()
        assert_typed_failure_or_value(data + b"\x0f\xff\x7f")
