"""Dehydration/rehydration: roundtrips, sharing, cycles, stubs."""

import pytest

from repro.elab.topdec import elaborate_decs
from repro.lang.parser import parse_program
from repro.pickle import PickleError, UnpickleError, dehydrate, rehydrate
from repro.pickle.pickler import Pickler, Unpickler, context_chain_ids
from repro.semant.env import Env, Structure, ValueBinding
from repro.semant.format import format_type
from repro.semant.stamps import StampGenerator
from repro.semant.types import ConType, DatatypeTycon, TyVar


def roundtrip(value):
    data, _ = dehydrate(value)
    out, _ = rehydrate(data)
    return out


class TestPrimitiveValues:
    def test_none(self):
        assert roundtrip(None) is None

    def test_bools(self):
        assert roundtrip(True) is True
        assert roundtrip(False) is False

    def test_ints(self):
        for n in (0, 1, -1, 127, 128, -128, 10**12, -(10**12)):
            assert roundtrip(n) == n

    def test_floats(self):
        for x in (0.0, -1.5, 3.14159, 1e300):
            assert roundtrip(x) == x

    def test_strings(self):
        for s in ("", "hello", "uniçode", "a\nb"):
            assert roundtrip(s) == s

    def test_bytes(self):
        assert roundtrip(b"\x00\xff") == b"\x00\xff"

    def test_tuple(self):
        assert roundtrip((1, "a", (2, 3))) == (1, "a", (2, 3))

    def test_list(self):
        assert roundtrip([1, [2], "x"]) == [1, [2], "x"]

    def test_dict(self):
        assert roundtrip({"a": 1, "b": [2]}) == {"a": 1, "b": [2]}

    def test_string_interning(self):
        # Repeated strings are written once.
        short, _ = dehydrate(["abcdefgh"] * 2)
        long_unique, _ = dehydrate(["abcdefgh", "ijklmnop"])
        assert len(short) < len(long_unique)


class TestSemanticObjects:
    def test_env_roundtrip(self, elab_full):
        env, el = elab_full("structure S = struct val x = 1 end")
        data, _ = dehydrate(env, local_stamp_ids=el.new_stamps,
                            extern=_no_extern)
        out, _ = rehydrate(data)
        assert "S" in out.structures
        assert format_type(out.structures["S"].env.values["x"].scheme) == \
            "int"

    def test_datatype_cycle(self, elab_full):
        env, el = elab_full(
            "structure S = struct datatype t = A | B of t end")
        data, _ = dehydrate(env, local_stamp_ids=el.new_stamps,
                            extern=_no_extern)
        out, _ = rehydrate(data)
        tycon = out.structures["S"].env.tycons["t"]
        assert isinstance(tycon, DatatypeTycon)
        # The cycle is rebuilt: B's argument type is the same tycon object.
        b = tycon.constructors[1]
        body = b.scheme
        assert body.dom.tycon is tycon

    def test_sharing_preserved(self):
        # One object referenced twice decodes to one object.
        shared = ConType(_fresh_datatype("t"), ())
        data, _ = dehydrate((shared, shared),
                            local_stamp_ids={shared.tycon.stamp.id})
        (a, b), _ = rehydrate(data)
        assert a is b

    def test_stamps_fresh_on_load(self):
        tycon = _fresh_datatype("t")
        data, _ = dehydrate(tycon, local_stamp_ids={tycon.stamp.id})
        out1, _ = rehydrate(data)
        out2, _ = rehydrate(data)
        # Two rehydrations yield distinct generative identities.
        assert out1.stamp is not out2.stamp
        assert out1.stamp.id != out2.stamp.id

    def test_prim_tycons_resolve_to_singletons(self, elab_full):
        env, el = elab_full("structure S = struct val n = 42 end")
        data, _ = dehydrate(env, local_stamp_ids=el.new_stamps,
                            extern=_no_extern)
        out, _ = rehydrate(data)
        from repro.semant.prim import INT

        assert out.structures["S"].env.values["n"].scheme.tycon is INT

    def test_unresolved_tyvar_rejected(self):
        env = Env()
        env.bind_value("x", ValueBinding(TyVar(level=1)))
        with pytest.raises(PickleError, match="type variable"):
            dehydrate(env)

    def test_unregistered_class_rejected(self):
        class Strange:
            pass

        with pytest.raises(PickleError, match="not registered"):
            dehydrate(Strange())


class TestStubs:
    def test_foreign_object_needs_registry(self):
        foreign = _fresh_datatype("foreign")
        with pytest.raises(PickleError, match="extern"):
            dehydrate(ConType(foreign, ()), local_stamp_ids=set())

    def test_dangling_reference_reported(self):
        foreign = _fresh_datatype("foreign")

        def extern(_stamp_id):
            raise KeyError(_stamp_id)

        with pytest.raises(PickleError, match="dangling"):
            dehydrate(ConType(foreign, ()), local_stamp_ids=set(),
                      extern=extern)

    def test_stub_resolution(self):
        foreign = _fresh_datatype("foreign")
        data, _ = dehydrate(
            ConType(foreign, ()), local_stamp_ids=set(),
            extern=lambda sid: ("PIDX", 7))
        out, _ = rehydrate(
            data, resolve=lambda pid, idx: {("PIDX", 7): foreign}[(pid, idx)])
        assert out.tycon is foreign

    def test_missing_context_object_reported(self):
        foreign = _fresh_datatype("foreign")
        data, _ = dehydrate(
            ConType(foreign, ()), local_stamp_ids=set(),
            extern=lambda sid: ("PIDX", 7))

        def resolve(pid, idx):
            raise KeyError((pid, idx))

        with pytest.raises(UnpickleError, match="unresolved external"):
            rehydrate(data, resolve=resolve)

    def test_export_index_symmetry(self, elab_full):
        env, el = elab_full(
            "structure A = struct datatype t = T end "
            "structure B = struct datatype u = U end")
        data, enc_index = dehydrate(env, local_stamp_ids=el.new_stamps,
                                    extern=_no_extern)
        _out, dec_index = rehydrate(data)
        assert len(enc_index) == len(dec_index)
        enc_kinds = [type(o).__name__ for o in enc_index]
        dec_kinds = [type(o).__name__ for o in dec_index]
        assert enc_kinds == dec_kinds


class TestContextBoundary:
    def test_context_marker(self):
        context = Env()
        inner = context.child()
        data, _ = dehydrate(inner, context_env_ids=frozenset({id(context)}))
        replacement = Env()
        out, _ = rehydrate(data, context_env=replacement)
        assert out.parent is replacement

    def test_context_without_replacement_fails(self):
        context = Env()
        inner = context.child()
        data, _ = dehydrate(inner, context_env_ids=frozenset({id(context)}))
        with pytest.raises(UnpickleError, match="context"):
            rehydrate(data)

    def test_context_chain_ids(self):
        a = Env()
        b = a.child()
        c = b.child()
        ids = context_chain_ids(c)
        assert ids == frozenset({id(a), id(b), id(c)})


class TestCorruption:
    def test_truncated_stream(self):
        data, _ = dehydrate([1, 2, 3])
        with pytest.raises(UnpickleError, match="truncated"):
            rehydrate(data[:-2])

    def test_trailing_garbage(self):
        data, _ = dehydrate(7)
        with pytest.raises(UnpickleError, match="trailing"):
            rehydrate(data + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(UnpickleError):
            rehydrate(b"\xfa")


def _no_extern(stamp_id):
    raise AssertionError(f"unexpected external reference {stamp_id}")


_GEN = StampGenerator(start=10_000_000)


def _fresh_datatype(name):
    return DatatypeTycon(_GEN.fresh(), name, 0)
