"""Tree-mode (share=False) pickling: the A1 ablation must still be
*correct* -- only bigger."""

import pytest

from repro.pickle.pickler import Pickler, Unpickler
from repro.units import Session, compile_unit


@pytest.fixture
def session(basis):
    return Session(basis)


SRC = """
structure Shared = struct
  datatype t = K of int | Pair of t * t
  structure L = struct val v = K 1 end
  structure R = L
end
"""


def _pickle(unit, session, share):
    pickler = Pickler(local_stamp_ids=unit.owned_stamp_ids,
                      extern=session.extern, share=share)
    return pickler.run((unit.static_env, unit.code))


class TestTreeMode:
    def test_roundtrips(self, session):
        unit = compile_unit("m", SRC, [], session)
        data = _pickle(unit, session, share=False)
        unpickler = Unpickler(data, resolve=session.resolve)
        env, _code = unpickler.run()
        shared = env.structures["Shared"]
        assert "L" in shared.env.structures
        assert "R" in shared.env.structures

    def test_bigger_than_dag(self, session):
        unit = compile_unit("m", SRC, [], session)
        tree = _pickle(unit, session, share=False)
        dag = _pickle(unit, session, share=True)
        assert len(tree) > len(dag)

    def test_identity_lost_in_tree_mode(self, session):
        # The price of tree mode: the aliased structures' shared *env*
        # decodes as two copies.
        unit = compile_unit("m", SRC, [], session)
        data = _pickle(unit, session, share=False)
        env, _ = Unpickler(data, resolve=session.resolve).run()
        shared = env.structures["Shared"]
        left = shared.env.structures["L"]
        right = shared.env.structures["R"]
        assert left.env is not right.env

    def test_identity_kept_in_dag_mode(self, session):
        # `structure R = L` produces two Structure records (the binder
        # renames) sharing one stamp and one env; DAG pickling preserves
        # exactly that topology.
        unit = compile_unit("m", SRC, [], session)
        data = _pickle(unit, session, share=True)
        env, _ = Unpickler(data, resolve=session.resolve).run()
        shared = env.structures["Shared"]
        left = shared.env.structures["L"]
        right = shared.env.structures["R"]
        assert left.env is right.env
        assert left.stamp is right.stamp

    def test_datatype_cycle_survives_tree_mode(self, session):
        # Cycles go through datatypes, which stay memoized even in tree
        # mode -- otherwise encoding would not terminate.
        unit = compile_unit("m", SRC, [], session)
        data = _pickle(unit, session, share=False)
        env, _ = Unpickler(data, resolve=session.resolve).run()
        tycon = env.structures["Shared"].env.tycons["t"]
        pair = tycon.constructors[1]
        assert pair.scheme.dom.fields[0][1].tycon is tycon
