"""The Visible Compiler: metaprogramming over compiler primitives."""

import pytest

from repro.interactive import VisibleCompiler


class TestVisibleCompiler:
    def test_compile_and_execute(self):
        vc = VisibleCompiler()
        unit = vc.compile("m", "structure M = struct val v = 6 * 7 end", [])
        export = vc.execute(unit)
        assert export.structures["M"].values["v"] == 42

    def test_chain(self):
        vc = VisibleCompiler()
        a = vc.compile("a", "structure A = struct fun f x = x + 1 end", [])
        b = vc.compile("b", "structure B = struct val v = A.f 1 end", [a])
        exports = vc.execute_all([a, b])
        assert exports["b"].structures["B"].values["v"] == 2

    def test_pid_extraction(self):
        vc = VisibleCompiler()
        unit = vc.compile("m", "structure M = struct end", [])
        assert vc.export_pid(unit) == unit.export_pid
        assert vc.import_pids(unit) == []

    def test_dehydrate_rehydrate_cycle(self):
        vc1 = VisibleCompiler()
        src = "structure M = struct datatype t = T of int fun un (T n) = n end"
        unit = vc1.compile("m", src, [])
        payload = vc1.dehydrate(unit)

        vc2 = VisibleCompiler()
        loaded = vc2.rehydrate("m", unit.export_pid, payload, [], src)
        client = vc2.compile(
            "c", "structure C = struct val v = M.un (M.T 5) end", [loaded])
        exports = vc2.execute_all([loaded, client])
        assert exports["c"].structures["C"].values["v"] == 5

    def test_generated_code_compilation(self):
        # The paper's metaprogramming scenario: a program that *builds*
        # sources and compiles them at runtime.
        vc = VisibleCompiler()
        units = []
        for k in range(5):
            dep = [units[-1]] if units else []
            prev = f"+ M{k-1}.v " if units else ""
            src = f"structure M{k} = struct val v = 1 {prev}end"
            units.append(vc.compile(f"m{k}", src, dep))
        exports = vc.execute_all(units)
        assert exports["m4"].structures["M4"].values["v"] == 5

    def test_context_env_layering(self):
        vc = VisibleCompiler()
        a = vc.compile("a", "structure A = struct val v = 1 end", [])
        env = vc.context_env([a])
        assert env.lookup_structure("A") is not None
