"""The interactive read-eval-print loop."""

import pytest

from repro.interactive import REPL


@pytest.fixture(scope="module")
def repl():
    # One session for the read-only tests; stateful tests make their own.
    return REPL()


class TestBasics:
    def test_val(self):
        r = REPL()
        assert r.eval("val x = 1 + 2").render() == "val x = 3 : int"

    def test_it_binding(self):
        r = REPL()
        assert r.eval("40 + 2").render() == "val it = 42 : int"

    def test_bindings_persist(self):
        r = REPL()
        r.eval("val x = 10")
        assert r.eval("x * x").render() == "val it = 100 : int"

    def test_it_is_usable(self):
        r = REPL()
        r.eval("21")
        assert r.eval("it + it").render() == "val it = 42 : int"

    def test_function_definition(self):
        r = REPL()
        out = r.eval("fun square n = n * n").render()
        assert out == "val square = fn : int -> int"

    def test_polymorphic_rendering(self):
        r = REPL()
        out = r.eval("fun id x = x").render()
        assert out == "val id = fn : 'a -> 'a"

    def test_datatype(self):
        r = REPL()
        r.eval("datatype t = A | B of int")
        assert r.eval("B 5").render() == "val it = B 5 : t"

    def test_structure(self):
        r = REPL()
        r.eval("structure S = struct val v = 9 end")
        assert r.eval("S.v").render() == "val it = 9 : int"

    def test_functor_declaration_and_use(self):
        r = REPL()
        r.eval("functor F(X : sig val n : int end) = "
               "struct val m = X.n * 2 end")
        r.eval("structure R = F(struct val n = 21 end)")
        assert r.eval("R.m").render() == "val it = 42 : int"

    def test_signature(self):
        r = REPL()
        out = r.eval("signature S = sig val v : int end").render()
        assert out == "signature S"

    def test_string_value_rendering(self):
        r = REPL()
        assert r.eval('"a" ^ "b"').render() == 'val it = "ab" : string'

    def test_list_rendering(self):
        r = REPL()
        assert r.eval("[1, 2, 3]").render() == \
            "val it = [1, 2, 3] : int list"

    def test_tuple_pattern_binding(self):
        r = REPL()
        out = r.eval("val (a, b) = (1, true)").render()
        assert "val a = 1 : int" in out
        assert "val b = true : bool" in out


class TestErrorsAndRecovery:
    def test_syntax_error(self):
        r = REPL()
        result = r.eval("val = 3")
        assert not result.ok
        assert "syntax error" in result.error

    def test_type_error(self):
        r = REPL()
        result = r.eval('1 + "two"')
        assert not result.ok
        assert "type error" in result.error

    def test_uncaught_exception(self):
        r = REPL()
        result = r.eval("hd nil")
        assert not result.ok
        assert "Empty" in result.error

    def test_failed_input_leaves_env_intact(self):
        r = REPL()
        r.eval("val x = 5")
        r.eval('val x = 1 + "bad"')   # fails
        assert r.eval("x").render() == "val it = 5 : int"

    def test_failed_exec_does_not_bind(self):
        r = REPL()
        result = r.eval("val y = hd nil")
        assert not result.ok
        assert not r.eval("y").ok  # y unbound

    def test_unbound_variable(self):
        r = REPL()
        result = r.eval("mystery")
        assert not result.ok
        assert "unbound" in result.error


class TestSessionSemantics:
    def test_shadowing(self):
        r = REPL()
        r.eval("val x = 1")
        r.eval('val x = "now a string"')
        assert r.eval("x").render() == 'val it = "now a string" : string'

    def test_old_closures_see_old_bindings(self):
        r = REPL()
        r.eval("val n = 1")
        r.eval("fun get () = n")
        r.eval("val n = 99")
        assert r.eval("get ()").render() == "val it = 1 : int"

    def test_print_output_captured(self):
        r = REPL()
        r.eval('print "side effect\\n"')
        assert r.printed_output() == "side effect\n"

    def test_refs_persist_across_inputs(self):
        r = REPL()
        r.eval("val cell = ref 0")
        r.eval("cell := 41")
        assert r.eval("!cell + 1").render() == "val it = 42 : int"

    def test_exception_declared_then_handled(self):
        r = REPL()
        r.eval("exception Boom of string")
        out = r.eval('(raise Boom "x") handle Boom s => s ^ "!"').render()
        assert out == 'val it = "x!" : string'

    def test_open_in_repl(self):
        r = REPL()
        r.eval("structure M = struct val hidden = 3 end")
        r.eval("open M")
        assert r.eval("hidden").render() == "val it = 3 : int"
