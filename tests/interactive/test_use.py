"""REPL <-> compilation manager integration (§6, §8: one world)."""

import pytest

from repro.cm import CutoffBuilder, Project
from repro.interactive import REPL

SOURCES = {
    "queue": """
        signature QUEUE = sig
          type 'a t
          val empty : 'a t
          val push : 'a * 'a t -> 'a t
          val peek : 'a t -> 'a option
        end
        structure Queue : QUEUE = struct
          type 'a t = 'a list
          val empty = nil
          fun push (x, q) = q @ [x]
          fun peek nil = NONE | peek (h :: _) = SOME h
        end
    """,
    "util": """
        functor Twice(X : QUEUE) = struct
          fun push2 (a, b, q) = X.push (b, X.push (a, q))
        end
    """,
}


class TestUse:
    def test_use_brings_structures(self):
        repl = REPL()
        builder = CutoffBuilder(Project.from_sources(SOURCES))
        result = repl.use(builder)
        assert result.ok
        assert any("structure Queue" in b for b in result.bindings)
        out = repl.eval(
            "Queue.peek (Queue.push (7, Queue.empty))").render()
        assert out == "val it = SOME 7 : int option"

    def test_use_brings_functors(self):
        repl = REPL()
        builder = CutoffBuilder(Project.from_sources(SOURCES))
        repl.use(builder)
        repl.eval("structure Q2 = Twice(Queue)")
        out = repl.eval(
            "Queue.peek (Q2.push2 (1, 2, Queue.empty))").render()
        assert out == "val it = SOME 1 : int option"

    def test_use_brings_signatures(self):
        repl = REPL()
        builder = CutoffBuilder(Project.from_sources(SOURCES))
        repl.use(builder)
        out = repl.eval(
            "structure Mine : QUEUE = struct type 'a t = 'a list "
            "val empty = nil fun push (x, q) = x :: q "
            "fun peek nil = NONE | peek (h :: _) = SOME h end").render()
        assert "structure Mine" in out

    def test_use_is_incremental(self):
        repl = REPL()
        project = Project.from_sources(SOURCES)
        builder = CutoffBuilder(project)
        first = repl.use(builder)
        assert "2 compiled" in first.bindings[0]
        second = repl.use(builder)
        assert "0 compiled" in second.bindings[0]

    def test_session_bindings_survive_use(self):
        repl = REPL()
        repl.eval("val mine = 5")
        builder = CutoffBuilder(Project.from_sources(SOURCES))
        repl.use(builder)
        assert repl.eval("mine").render() == "val it = 5 : int"

    def test_types_flow_between_worlds(self):
        # A value built interactively has the *same* type as the
        # compiled unit's (tycon identity is shared through the session).
        repl = REPL()
        builder = CutoffBuilder(Project.from_sources(SOURCES))
        repl.use(builder)
        repl.eval("val q = Queue.push (1, Queue.empty)")
        out = repl.eval("Queue.peek q").render()
        assert out == "val it = SOME 1 : int option"
