"""Exhaustiveness and redundancy warnings."""

import pytest


@pytest.fixture
def warnings_of(basis):
    from repro.elab.topdec import elaborate_decs
    from repro.lang.parser import parse_program

    def run(src):
        _env, el = elaborate_decs(parse_program(src), basis.static_env)
        return [message for message, _line in el.warnings]

    return run


class TestExhaustiveness:
    def test_complete_fun_is_silent(self, warnings_of):
        assert warnings_of("fun f 0 = 1 | f n = 2") == []

    def test_missing_literal_default(self, warnings_of):
        assert any("not exhaustive" in w
                   for w in warnings_of("fun f 0 = 1"))

    def test_complete_datatype(self, warnings_of):
        src = "datatype c = R | G | B fun f R = 1 | f G = 2 | f B = 3"
        assert warnings_of(src) == []

    def test_missing_datatype_constructor(self, warnings_of):
        src = "datatype c = R | G | B fun f R = 1 | f G = 2"
        assert any("not exhaustive" in w for w in warnings_of(src))

    def test_complete_list_match(self, warnings_of):
        assert warnings_of("fun f nil = 0 | f (h :: t) = 1") == []

    def test_fixed_length_list_incomplete(self, warnings_of):
        assert any("not exhaustive" in w
                   for w in warnings_of("fun g [a, b] = a"))

    def test_bool_tuple_complete(self, warnings_of):
        src = ("val x = case (true, false) of (true, _) => 1 "
               "| (_, true) => 2 | (false, false) => 3")
        assert warnings_of(src) == []

    def test_bool_tuple_incomplete(self, warnings_of):
        src = ("val x = case (true, false) of (true, _) => 1 "
               "| (false, true) => 2")
        assert any("not exhaustive" in w for w in warnings_of(src))

    def test_nested_constructor_matrix(self, warnings_of):
        src = ("datatype 'a t = L | N of 'a t * 'a t "
               "fun d L = 0 | d (N (L, r)) = 1 | d (N (N (a, b), r)) = 2")
        assert warnings_of(src) == []

    def test_option_complete(self, warnings_of):
        assert warnings_of(
            "fun f (SOME x) = x | f NONE = 0") == []

    def test_wildcard_silences(self, warnings_of):
        assert warnings_of("fun f 0 = 1 | f _ = 2") == []

    def test_variable_silences(self, warnings_of):
        assert warnings_of('fun f "a" = 1 | f other = 2') == []

    def test_record_pattern(self, warnings_of):
        src = ("fun f ({ok = true, n} : {ok: bool, n: int}) = n "
               "  | f {ok = false, n} = 0 - n")
        assert warnings_of(src) == []

    def test_exceptions_never_exhaustive_requirement(self, warnings_of):
        # handle matches are allowed to be partial (unmatched re-raise).
        assert warnings_of("val z = (1 handle Div => 2)") == []

    def test_fn_expression_checked(self, warnings_of):
        assert any("not exhaustive" in w
                   for w in warnings_of("val f = fn 0 => 1"))

    def test_case_checked(self, warnings_of):
        assert any("not exhaustive" in w for w in warnings_of(
            "datatype t = A | B val x = case A of A => 1"))


class TestValBindings:
    def test_refutable_binding_warns(self, warnings_of):
        assert any("not exhaustive" in w
                   for w in warnings_of("val SOME y = SOME 3"))

    def test_tuple_binding_silent(self, warnings_of):
        assert warnings_of("val (a, b) = (1, 2)") == []

    def test_single_constructor_datatype_silent(self, warnings_of):
        src = "datatype w = W of int val W n = W 5"
        assert warnings_of(src) == []

    def test_cons_binding_warns(self, warnings_of):
        assert any("not exhaustive" in w
                   for w in warnings_of("val h :: t = [1, 2]"))


class TestRedundancy:
    def test_duplicate_literal(self, warnings_of):
        src = "fun h x = case x of 1 => 1 | 1 => 2 | _ => 3"
        assert any("redundant" in w for w in warnings_of(src))

    def test_rule_after_wildcard(self, warnings_of):
        src = "datatype c = R | G fun f R = 1 | f _ = 2 | f G = 3"
        assert any("redundant" in w for w in warnings_of(src))

    def test_shadowed_constructor_rule(self, warnings_of):
        src = ("fun f (SOME _) = 1 | f NONE = 2 | f (SOME 3) = 3")
        assert any("redundant" in w for w in warnings_of(src))

    def test_no_false_redundancy(self, warnings_of):
        src = ("fun f (SOME 1) = 1 | f (SOME _) = 2 | f NONE = 0")
        assert warnings_of(src) == []

    def test_overlapping_but_not_redundant(self, warnings_of):
        src = ("fun f (1, _) = 1 | f (_, 1) = 2 | f _ = 3")
        assert warnings_of(src) == []


class TestReplWarnings:
    def test_repl_shows_warning(self):
        from repro.interactive import REPL

        repl = REPL()
        out = repl.eval("fun f 0 = 1").render()
        assert "warning" in out and "not exhaustive" in out
        # The binding still happens.
        assert "val f = fn : int -> int" in out

    def test_repl_silent_when_complete(self):
        from repro.interactive import REPL

        repl = REPL()
        out = repl.eval("fun f 0 = 1 | f n = n").render()
        assert "warning" not in out
