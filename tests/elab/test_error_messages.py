"""Error-message quality: diagnostics must name the offending
identifier and carry a sensible source line."""

import pytest

from repro.elab.errors import ElabError


def error_of(elab, src) -> ElabError:
    with pytest.raises(ElabError) as err:
        elab(src)
    return err.value


class TestNames:
    def test_unbound_variable_named(self, elab):
        err = error_of(elab, "val x = mysteriousName")
        assert "mysteriousName" in str(err)

    def test_unbound_qualified_named(self, elab):
        err = error_of(elab, "val x = Lost.member")
        assert "Lost.member" in str(err)

    def test_unbound_tycon_named(self, elab):
        err = error_of(elab, "val x : phantom = 1")
        assert "phantom" in str(err)

    def test_unbound_signature_named(self, elab):
        err = error_of(elab, "structure S : GHOST = struct end")
        assert "GHOST" in str(err)

    def test_unbound_functor_named(self, elab):
        err = error_of(elab, "structure S = Spectral(struct end)")
        assert "Spectral" in str(err)

    def test_signature_mismatch_names_member(self, elab):
        err = error_of(
            elab,
            "signature S = sig val needed : int end "
            "structure X : S = struct end")
        assert "needed" in str(err)

    def test_signature_mismatch_names_signature(self, elab):
        err = error_of(
            elab,
            "signature WINDOW = sig type t end "
            "structure X : WINDOW = struct end")
        assert "WINDOW" in str(err)

    def test_constructor_misuse_named(self, elab):
        err = error_of(
            elab,
            "datatype t = Boxed of int "
            "fun f Boxed = 1")
        assert "Boxed" in str(err)

    def test_duplicate_variable_named(self, elab):
        err = error_of(elab, "fun f (dup, dup) = dup")
        assert "dup" in str(err)

    def test_arity_error_counts(self, elab):
        err = error_of(elab, "val x : (int, int) list = nil")
        text = str(err)
        assert "2" in text and "1" in text


class TestLines:
    def test_line_of_type_clash(self, elab):
        err = error_of(elab, "val a = 1\nval b = 2\nval c = 1 + true")
        assert err.line == 3

    def test_line_of_unbound(self, elab):
        err = error_of(elab, "val a = 1\nval b = ghost")
        assert err.line == 2

    def test_line_inside_structure(self, elab):
        err = error_of(
            elab,
            "structure S = struct\n  val good = 1\n  val bad = ghost\nend")
        assert err.line == 3


class TestWarningsCarryContext:
    def test_fun_warning_names_function(self, elab_full):
        _env, el = elab_full("fun partial 0 = 1")
        assert any("partial" in msg for msg, _ in el.warnings)

    def test_redundant_names_clause_number(self, elab_full):
        _env, el = elab_full("fun f 1 = 1 | f 1 = 2 | f _ = 3")
        assert any("clause 2" in msg for msg, _ in el.warnings)
