"""Type inference for the core language."""

import pytest

from repro.elab.errors import ElabError


class TestLiterals:
    def test_int(self, type_of):
        assert type_of("val x = 42", "x") == "int"

    def test_real(self, type_of):
        assert type_of("val x = 3.14", "x") == "real"

    def test_string(self, type_of):
        assert type_of('val x = "hi"', "x") == "string"

    def test_char(self, type_of):
        assert type_of('val x = #"a"', "x") == "char"

    def test_word(self, type_of):
        assert type_of("val x = 0w7", "x") == "word"

    def test_unit(self, type_of):
        assert type_of("val x = ()", "x") == "unit"

    def test_bool(self, type_of):
        assert type_of("val x = true", "x") == "bool"


class TestFunctions:
    def test_identity_polymorphic(self, type_of):
        assert type_of("fun id x = x", "id") == "'a -> 'a"

    def test_const(self, type_of):
        assert type_of("fun const x y = x", "const") == "'a -> 'b -> 'a"

    def test_compose_type(self, type_of):
        t = type_of("fun comp f g x = f (g x)", "comp")
        assert t == "('a -> 'b) -> ('c -> 'a) -> 'c -> 'b"

    def test_monomorphic_after_use(self, type_of):
        assert type_of("fun inc x = x + 1", "inc") == "int -> int"

    def test_recursion(self, type_of):
        t = type_of("fun fact n = if n = 0 then 1 else n * fact (n - 1)",
                    "fact")
        assert t == "int -> int"

    def test_mutual_recursion(self, type_of):
        src = ("fun even n = if n = 0 then true else odd (n - 1) "
               "and odd n = if n = 0 then false else even (n - 1)")
        assert type_of(src, "even") == "int -> bool"

    def test_clausal_patterns(self, type_of):
        t = type_of("fun len nil = 0 | len (_ :: t) = 1 + len t", "len")
        assert t == "'a list -> int"

    def test_higher_order(self, type_of):
        t = type_of("fun apply f = f 0", "apply")
        assert t == "(int -> 'a) -> 'a"

    def test_fn_expression(self, type_of):
        assert type_of("val f = fn (a, b) => a + b", "f") == \
            "int * int -> int"

    def test_curried_result_annotation(self, type_of):
        assert type_of("fun f x : int = x", "f") == "int -> int"


class TestLetPolymorphism:
    def test_let_generalizes(self, type_of):
        src = "val p = let fun id x = x in (id 1, id \"s\") end"
        assert type_of(src, "p") == "int * string"

    def test_lambda_bound_not_generalized(self, elab):
        src = 'fun bad f = (f 1, f "s")'
        with pytest.raises(ElabError):
            elab(src)

    def test_value_restriction(self, type_of):
        # `id id` is expansive: it must not generalize.
        src = "fun id x = x val f = id id val use = f 5"
        assert type_of(src, "use") == "int"

    def test_value_restriction_blocks_polymorphic_use(self, elab):
        src = 'fun id x = x val f = id id val a = f 5 val b = f "s"'
        with pytest.raises(ElabError):
            elab(src)

    def test_fn_is_nonexpansive(self, type_of):
        src = "val f = fn x => x"
        assert type_of(src, "f") == "'a -> 'a"

    def test_tuple_of_values_nonexpansive(self, type_of):
        src = "val p = (fn x => x, nil)"
        assert type_of(src, "p") == "('a -> 'a) * 'b list"


class TestDatatypes:
    def test_simple_enum(self, type_of):
        src = "datatype color = Red | Green val c = Red"
        assert type_of(src, "c") == "color"

    def test_constructor_function(self, type_of):
        src = "datatype box = Box of int val b = Box"
        assert type_of(src, "b") == "int -> box"

    def test_polymorphic(self, type_of):
        src = "datatype 'a pair = P of 'a * 'a val p = P (1, 2)"
        assert type_of(src, "p") == "int pair"

    def test_recursive(self, type_of):
        src = ("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree "
               "fun depth Leaf = 0 "
               "  | depth (Node (l, _, r)) = "
               "      1 + (if depth l > depth r then depth l else depth r)")
        assert type_of(src, "depth") == "'a tree -> int"

    def test_mutually_recursive(self, elab):
        src = ("datatype exp = Num of int | Let of bind * exp "
               "and bind = Bind of string * exp")
        env = elab(src)
        assert "exp" in env.tycons
        assert "bind" in env.tycons

    def test_generativity(self, elab):
        # Two structurally identical datatypes are distinct generative
        # types; the second A shadows the first, so `bad : a` fails.
        import pytest as _pytest
        from repro.elab.errors import ElabError as _E
        with _pytest.raises(_E):
            elab("datatype a = A of int datatype b = A of int "
                 "val bad : a = A 3")

    def test_generativity_mismatch(self, elab):
        src = ("structure X = struct datatype t = T end "
               "structure Y = struct datatype t = T end "
               "val bad : X.t = Y.T")
        with pytest.raises(ElabError):
            elab(src)

    def test_withtype(self, type_of):
        src = ("datatype t = Node of edges withtype edges = t list "
               "val n = Node nil")
        assert type_of(src, "n") == "t"

    def test_replication(self, type_of):
        src = ("structure A = struct datatype t = X of int end "
               "datatype u = datatype A.t "
               "val v = X 3")
        assert type_of(src, "v") == "t"

    def test_constructor_arity_error(self, elab):
        with pytest.raises(ElabError):
            elab("datatype t = C of int val x = case C 1 of C => 1")


class TestRecordsAndTuples:
    def test_tuple(self, type_of):
        assert type_of("val t = (1, \"a\", true)", "t") == \
            "int * string * bool"

    def test_record(self, type_of):
        assert type_of("val r = {name = \"x\", age = 3}", "r") == \
            "{age: int, name: string}"

    def test_selector_on_known_record(self, type_of):
        src = "val r = {a = 1, b = \"s\"} val x = #b r"
        assert type_of(src, "x") == "string"

    def test_tuple_selector(self, type_of):
        assert type_of("val x = #2 (1, \"s\")", "x") == "string"

    def test_flexible_pattern_with_annotation(self, type_of):
        src = ("fun get ({name, ...} : {name: string, age: int}) = name")
        assert type_of(src, "get") == "{age: int, name: string} -> string"

    def test_unresolved_flex_record_rejected(self, elab):
        with pytest.raises(ElabError):
            elab("fun get {name, ...} = name")

    def test_record_field_order_irrelevant(self, type_of):
        src = "val a = {x = 1, y = 2} val b = {y = 2, x = 1} val c = a = b"
        assert type_of(src, "c") == "bool"

    def test_missing_field(self, elab):
        with pytest.raises(ElabError):
            elab("val r = {a = 1} val x = #b r")


class TestExceptionsStatic:
    def test_exception_type(self, type_of):
        assert type_of("exception E val e = E", "e") == "exn"

    def test_exception_with_arg(self, type_of):
        assert type_of("exception E of string val e = E", "e") == \
            "string -> exn"

    def test_raise_any_type(self, type_of):
        src = "exception E fun f true = 1 | f false = raise E"
        assert type_of(src, "f") == "bool -> int"

    def test_handle_types_must_agree(self, elab):
        with pytest.raises(ElabError):
            elab('exception E val x = (1 handle E => "s")')

    def test_polymorphic_exception_rejected(self, elab):
        with pytest.raises(ElabError):
            elab("exception E of 'a list")

    def test_exception_alias(self, type_of):
        src = "exception E of int exception F = E val f = F"
        assert type_of(src, "f") == "int -> exn"


class TestReferences:
    def test_ref_type(self, type_of):
        assert type_of("val r = ref 0", "r") == "int ref"

    def test_deref(self, type_of):
        assert type_of("val r = ref \"s\" val x = !r", "x") == "string"

    def test_assign_type(self, type_of):
        assert type_of("val r = ref 0 val u = r := 1", "u") == "unit"

    def test_ref_is_expansive(self, elab):
        # `ref nil` must not be polymorphic (the classic unsoundness).
        src = 'val r = ref nil val _ = r := [1] val s = "x" :: !r'
        with pytest.raises(ElabError):
            elab(src)


class TestErrors:
    def test_unbound_variable(self, elab):
        with pytest.raises(ElabError, match="unbound variable"):
            elab("val x = nonexistent")

    def test_unbound_type(self, elab):
        with pytest.raises(ElabError, match="unbound type"):
            elab("val x : mystery = 1")

    def test_type_clash(self, elab):
        with pytest.raises(ElabError):
            elab('val x = 1 + "two"')

    def test_occurs_check(self, elab):
        with pytest.raises(ElabError, match="circular"):
            elab("fun f x = x x")

    def test_arity_mismatch_tycon(self, elab):
        with pytest.raises(ElabError):
            elab("val x : (int, int) list = nil")

    def test_if_branches_must_agree(self, elab):
        with pytest.raises(ElabError):
            elab('val x = if true then 1 else "s"')

    def test_condition_must_be_bool(self, elab):
        with pytest.raises(ElabError):
            elab("val x = if 1 then 2 else 3")

    def test_duplicate_pattern_variable(self, elab):
        with pytest.raises(ElabError, match="duplicate"):
            elab("fun f (x, x) = x")

    def test_case_rules_must_agree(self, elab):
        with pytest.raises(ElabError):
            elab('val x = case 1 of 0 => "a" | _ => 1')


class TestShadowing:
    def test_value_shadowing(self, type_of):
        src = 'val x = 1 val x = "s"'
        assert type_of(src, "x") == "string"

    def test_let_shadowing_restores(self, type_of):
        src = "val x = 1 val y = let val x = \"s\" in x end val z = x"
        assert type_of(src, "z") == "int"

    def test_constructor_not_shadowable_by_val(self, elab):
        # In SML, `val C = 5` where C is a nullary constructor is a
        # *pattern match* of C against 5, which is a type error.
        with pytest.raises(ElabError):
            elab("datatype t = C val C = 5")

    def test_local_hides_private(self, elab):
        env = elab("local val secret = 1 in val public = secret + 1 end")
        assert "public" in env.values
        assert "secret" not in env.values


class TestTypeAbbreviations:
    def test_simple(self, type_of):
        src = "type point = int * int val p : point = (1, 2)"
        assert type_of(src, "p") == "int * int"

    def test_parameterized(self, type_of):
        src = ("type 'a pair = 'a * 'a val p : int pair = (1, 2)")
        assert type_of(src, "p") == "int * int"

    def test_two_params(self, type_of):
        src = ("type ('a, 'b) assoc = ('a * 'b) list "
               "val m : (string, int) assoc = [(\"a\", 1)]")
        assert type_of(src, "m") == "(string * int) list"

    def test_abbreviation_expands_in_unification(self, type_of):
        src = ("type t = int fun f (x : t) = x + 1 val y = f 3")
        assert type_of(src, "y") == "int"
