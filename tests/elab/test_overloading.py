"""Operator overloading: arithmetic/comparison over int, real, word,
string, char with int defaulting (the Definition's scheme)."""

import pytest

from repro.elab.errors import ElabError


class TestResolution:
    def test_int_arith(self, type_of):
        assert type_of("val x = 1 + 2", "x") == "int"

    def test_real_arith(self, type_of):
        assert type_of("val x = 1.5 * 2.0", "x") == "real"

    def test_word_arith(self, type_of):
        assert type_of("val x = 0w3 + 0w4", "x") == "word"

    def test_context_from_annotation(self, type_of):
        assert type_of("val f = fn (x : real) => x + x", "f") == \
            "real -> real"

    def test_context_from_one_operand(self, type_of):
        assert type_of("fun f x = x + 1.0", "f") == "real -> real"

    def test_real_division(self, type_of):
        assert type_of("val x = 1.0 / 2.0", "x") == "real"

    def test_unary_minus_real(self, type_of):
        assert type_of("val x = ~(1.5)", "x") == "real"

    def test_string_comparison(self, type_of):
        assert type_of('val x = "a" < "b"', "x") == "bool"

    def test_char_comparison(self, type_of):
        assert type_of('val x = #"a" <= #"b"', "x") == "bool"

    def test_real_comparison(self, type_of):
        assert type_of("val x = 1.5 >= 0.5", "x") == "bool"


class TestDefaulting:
    def test_unconstrained_defaults_to_int(self, type_of):
        assert type_of("fun double x = x + x", "double") == "int -> int"

    def test_comparison_defaults_to_int(self, type_of):
        assert type_of("fun lt (a, b) = a < b", "lt") == \
            "int * int -> bool"

    def test_defaulted_value_usable_as_int(self, type_of):
        src = "fun double x = x + x val y = double 4"
        assert type_of(src, "y") == "int"

    def test_defaulted_value_rejects_real(self, elab):
        with pytest.raises(ElabError):
            elab("fun double x = x + x val y = double 4.0")

    def test_operator_as_value_defaults(self, type_of):
        assert type_of("val plus = op+", "plus") == "int * int -> int"


class TestRejection:
    def test_mixed_int_real(self, elab):
        with pytest.raises(ElabError):
            elab("val x = 1 + 2.0")

    def test_string_addition(self, elab):
        with pytest.raises(ElabError, match="overloaded"):
            elab('val x = "a" + "b"')

    def test_bool_comparison(self, elab):
        with pytest.raises(ElabError, match="overloaded"):
            elab("val x = true < false")

    def test_real_div_rejected(self, elab):
        with pytest.raises(ElabError, match="overloaded"):
            elab("val x = 1.5 div 2.0")

    def test_int_slash_rejected(self, elab):
        with pytest.raises(ElabError):
            elab("val x = 1 / 2")

    def test_real_equality_rejected(self, elab):
        # real is not an equality type; = must not accept it.
        with pytest.raises(ElabError):
            elab("val x = 1.5 = 1.5")


class TestDynamics:
    def test_real_values(self, value_of):
        assert value_of("val x = 1.5 + 2.25", "x") == 3.75

    def test_word_values_wrap(self, value_of):
        from repro.dynamic.values import Word

        v = value_of("val x = 0w3 * 0w5", "x")
        assert v == Word(15)

    def test_word_subtraction_wraps(self, value_of):
        from repro.dynamic.values import Word

        v = value_of("val x = 0w1 - 0w2", "x")
        assert v.bits > 0  # wrapped around, not negative

    def test_char_comparison_value(self, value_of):
        assert value_of('val x = #"b" > #"a"', "x") is True

    def test_real_division_by_zero(self, value_of):
        src = "val x = (1.0 / 0.0) handle Div => ~1.0"
        assert value_of(src, "x") == -1.0

    def test_word_div(self, value_of):
        from repro.dynamic.values import Word

        assert value_of("val x = 0w7 div 0w2", "x") == Word(3)

    def test_defaulted_double(self, value_of):
        assert value_of("fun d x = x + x val v = d 21", "v") == 42
