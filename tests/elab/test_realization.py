"""Realization corners: where type with parameters, nested realization,
constructor rebinding under transparent matching."""

import pytest

from repro.elab.errors import ElabError


class TestWhereTypeParameterized:
    def test_unary_where_type(self, type_of):
        src = ("signature C = sig type 'a t val wrap : 'a -> 'a t end "
               "structure L : C where type 'a t = 'a list = struct "
               "  type 'a t = 'a list fun wrap x = [x] end "
               "val v = hd (L.wrap 5)")
        assert type_of(src, "v") == "int"

    def test_where_type_to_concrete(self, type_of):
        src = ("signature S = sig type t val get : t -> int end "
               "signature SI = S where type t = int "
               "structure X : SI = struct type t = int fun get n = n end "
               "val v = X.get 3 + 1")
        assert type_of(src, "v") == "int"

    def test_where_arity_mismatch(self, elab):
        src = ("signature S = sig type 'a t end "
               "signature BAD = S where type t = int")
        with pytest.raises(ElabError, match="arity"):
            elab(src)

    def test_chained_where(self, type_of):
        src = ("signature P = sig type a type b val mk : a -> b end "
               "structure X : P where type a = int where type b = string = "
               "  struct type a = int type b = string "
               "         val mk = Int.toString end "
               "val v = X.mk 3")
        assert type_of(src, "v") == "string"


class TestConstructorRealization:
    def test_datatype_spec_constructors_usable_through_match(self, value_of):
        src = ("signature S = sig datatype t = A | B of int "
               "              val flip : t -> t end "
               "structure X : S = struct "
               "  datatype t = A | B of int "
               "  fun flip A = B 0 | flip (B _) = A end "
               "val v = case X.flip X.A of X.B n => n | X.A => ~1")
        assert value_of(src, "v") == 0

    def test_shared_datatype_across_views(self, elab):
        # The same datatype seen through two ascriptions stays one type.
        src = ("structure Base = struct datatype t = K of int end "
               "signature V = sig datatype t = K of int end "
               "structure V1 : V = Base "
               "structure V2 : V = Base "
               "val ok : V1.t = V2.K 3")
        elab(src)

    def test_opaque_views_diverge(self, elab):
        src = ("structure Base = struct datatype t = K of int end "
               "signature V = sig type t val mk : int -> t end "
               "structure W1 :> V = struct open Base val mk = K end "
               "structure W2 :> V = struct open Base val mk = K end "
               "val bad : W1.t = W2.mk 3")
        with pytest.raises(ElabError):
            elab(src)


class TestNestedRealization:
    def test_two_level_structure_spec(self, type_of):
        src = ("signature DEEP = sig "
               "  structure A : sig structure B : sig type t end "
               "                   val get : B.t -> int end "
               "end "
               "structure D : DEEP = struct "
               "  structure A = struct "
               "    structure B = struct type t = string end "
               "    fun get (s : string) = size s "
               "  end "
               "end "
               "val v = D.A.get \"four\"")
        assert type_of(src, "v") == "int"

    def test_val_spec_uses_sibling_structure_type(self, elab):
        src = ("signature PAIR = sig "
               "  structure Key : sig type t end "
               "  val default : Key.t "
               "end "
               "structure P : PAIR = struct "
               "  structure Key = struct type t = int end "
               "  val default = 0 "
               "end "
               "val d = P.default + 1")
        elab(src)

    def test_wrong_nested_type_rejected(self, elab):
        src = ("signature PAIR = sig "
               "  structure Key : sig type t end "
               "  val default : Key.t "
               "end "
               "structure P : PAIR = struct "
               "  structure Key = struct type t = int end "
               "  val default = \"not an int\" "
               "end")
        with pytest.raises(ElabError):
            elab(src)
