"""Module-language elaboration: structures, signatures, functors,
signature matching."""

import pytest

from repro.elab.errors import ElabError
from repro.semant.format import format_type


def sig_of(env, struct, name):
    return format_type(env.structures[struct].env.values[name].scheme)


class TestStructures:
    def test_basic(self, elab):
        env = elab("structure S = struct val x = 1 fun f y = y + x end")
        assert sig_of(env, "S", "f") == "int -> int"

    def test_nested(self, elab):
        env = elab(
            "structure A = struct structure B = struct val v = 3 end end"
        )
        inner = env.structures["A"].env.structures["B"]
        assert "v" in inner.env.values

    def test_alias_shares_identity(self, elab):
        env = elab("structure A = struct datatype t = T end "
                   "structure B = A "
                   "val ok : A.t = B.T")
        assert format_type(env.values["ok"].scheme) == "t"

    def test_qualified_access(self, type_of):
        src = "structure S = struct val x = 41 end val y = S.x + 1"
        assert type_of(src, "y") == "int"

    def test_open(self, type_of):
        src = "structure S = struct val deep = 7 end open S val y = deep"
        assert type_of(src, "y") == "int"

    def test_open_brings_constructors(self, type_of):
        src = ("structure S = struct datatype t = K of int end "
               "open S val v = K 3")
        assert type_of(src, "v") == "t"

    def test_let_strexp(self, elab):
        env = elab("structure S = let val hidden = 2 in "
                   "struct val shown = hidden * 2 end end")
        assert "shown" in env.structures["S"].env.values
        assert "hidden" not in env.structures["S"].env.values

    def test_unbound_structure(self, elab):
        with pytest.raises(ElabError, match="unbound"):
            elab("val x = Missing.y")

    def test_unbound_structure_in_open(self, elab):
        with pytest.raises(ElabError, match="unbound structure"):
            elab("open Missing")


class TestSignatureMatching:
    ORDER = ("signature ORDER = sig type t val le : t * t -> bool end ")

    def test_transparent_type_leaks(self, type_of):
        src = (self.ORDER +
               "structure S : ORDER = struct "
               "  type t = int fun le (a, b) = a <= b end "
               "val uses_int = S.le (1, 2)")
        assert type_of(src, "uses_int") == "bool"

    def test_opaque_type_hidden(self, elab):
        src = (self.ORDER +
               "structure S :> ORDER = struct "
               "  type t = int fun le (a, b) = a <= b end "
               "val bad = S.le (1, 2)")
        with pytest.raises(ElabError):
            elab(src)

    def test_thinning_hides_extra_members(self, elab):
        src = (self.ORDER +
               "structure S : ORDER = struct "
               "  type t = int fun le (a, b) = a <= b "
               "  val unspecified = 99 end "
               "val bad = S.unspecified")
        with pytest.raises(ElabError, match="unbound"):
            elab(src)

    def test_missing_value_rejected(self, elab):
        src = self.ORDER + "structure S : ORDER = struct type t = int end"
        with pytest.raises(ElabError, match="le"):
            elab(src)

    def test_missing_type_rejected(self, elab):
        src = (self.ORDER +
               "structure S : ORDER = struct "
               "fun le (a, b) = a <= (b : int) end")
        with pytest.raises(ElabError, match="type t"):
            elab(src)

    def test_wrong_value_type_rejected(self, elab):
        src = (self.ORDER +
               "structure S : ORDER = struct "
               "type t = int val le = 5 end")
        with pytest.raises(ElabError):
            elab(src)

    def test_polymorphic_value_matches_monomorphic_spec(self, elab):
        src = ("signature S = sig val id : int -> int end "
               "structure X : S = struct fun id x = x end "
               "val v = X.id 3")
        elab(src)

    def test_monomorphic_value_fails_polymorphic_spec(self, elab):
        src = ("signature S = sig val id : 'a -> 'a end "
               "structure X : S = struct fun id (x : int) = x end")
        with pytest.raises(ElabError):
            elab(src)

    def test_type_spec_with_definition_checked(self, elab):
        src = ("signature S = sig type t = int val v : t end "
               "structure X : S = struct type t = string "
               "val v = \"s\" end")
        with pytest.raises(ElabError, match="spec definition"):
            elab(src)

    def test_type_spec_with_definition_ok(self, type_of):
        src = ("signature S = sig type t = int val v : t end "
               "structure X : S = struct type t = int val v = 3 end "
               "val y = X.v + 1")
        assert type_of(src, "y") == "int"

    def test_datatype_spec(self, type_of):
        src = ("signature S = sig datatype t = A | B of int end "
               "structure X : S = struct datatype t = A | B of int end "
               "val v = X.B 3")
        assert type_of(src, "v") == "t"

    def test_datatype_spec_missing_constructor(self, elab):
        src = ("signature S = sig datatype t = A | B of int end "
               "structure X : S = struct datatype t = A end")
        with pytest.raises(ElabError, match="constructors differ"):
            elab(src)

    def test_datatype_spec_wrong_arg(self, elab):
        src = ("signature S = sig datatype t = B of int end "
               "structure X : S = struct datatype t = B of string end")
        with pytest.raises(ElabError):
            elab(src)

    def test_exception_spec(self, elab):
        src = ("signature S = sig exception E of int end "
               "structure X : S = struct exception E of int end "
               "val v = (raise X.E 3) handle X.E n => n")
        elab(src)

    def test_structure_spec(self, elab):
        src = ("signature INNER = sig val v : int end "
               "signature OUTER = sig structure I : INNER end "
               "structure X : OUTER = struct "
               "  structure I = struct val v = 1 end end "
               "val y = X.I.v")
        elab(src)

    def test_nested_type_realization(self, type_of):
        src = ("signature P = sig structure A : sig type t end "
               "              val get : A.t -> int end "
               "structure X : P = struct "
               "  structure A = struct type t = string end "
               "  fun get (s : string) = size s end "
               "val n = X.get \"abc\"")
        assert type_of(src, "n") == "int"

    def test_opaque_generativity(self, elab):
        # Two opaque ascriptions of the same struct give distinct types.
        src = ("signature S = sig type t val mk : int -> t end "
               "structure A :> S = struct type t = int fun mk n = n end "
               "structure B :> S = struct type t = int fun mk n = n end "
               "val bad : A.t = B.mk 3")
        with pytest.raises(ElabError):
            elab(src)

    def test_eqtype_spec_satisfied(self, elab):
        src = ("signature S = sig eqtype t val v : t end "
               "structure X : S = struct type t = int val v = 1 end "
               "val b = X.v = X.v")
        elab(src)

    def test_eqtype_spec_violated(self, elab):
        src = ("signature S = sig eqtype t end "
               "structure X : S = struct type t = int -> int end")
        with pytest.raises(ElabError, match="equality"):
            elab(src)

    def test_eqtype_real_rejected(self, elab):
        src = ("signature S = sig eqtype t end "
               "structure X : S = struct type t = real end")
        with pytest.raises(ElabError, match="equality"):
            elab(src)


class TestWhereAndSharing:
    def test_where_type(self, type_of):
        src = ("signature S = sig type t val v : t end "
               "structure X : S where type t = int = "
               "  struct type t = int val v = 3 end "
               "val y = X.v + 1")
        assert type_of(src, "y") == "int"

    def test_where_type_conflict(self, elab):
        src = ("signature S = sig type t val v : t end "
               "structure X : S where type t = int = "
               "  struct type t = string val v = \"s\" end")
        with pytest.raises(ElabError):
            elab(src)

    def test_where_type_non_flexible_rejected(self, elab):
        src = ("signature S = sig type t = int end "
               "signature BAD = S where type t = string")
        with pytest.raises(ElabError, match="flexible"):
            elab(src)

    def test_sharing_allows_crossuse(self, elab):
        src = ("signature PAIR = sig "
               "  structure A : sig type t val v : t end "
               "  structure B : sig type t val f : t -> int end "
               "  sharing type A.t = B.t end "
               "functor F(P : PAIR) = struct val n = P.B.f P.A.v end")
        elab(src)

    def test_no_sharing_no_crossuse(self, elab):
        src = ("signature PAIR = sig "
               "  structure A : sig type t val v : t end "
               "  structure B : sig type t val f : t -> int end end "
               "functor F(P : PAIR) = struct val n = P.B.f P.A.v end")
        with pytest.raises(ElabError):
            elab(src)

    def test_sharing_match_requires_same_type(self, elab):
        src = ("signature PAIR = sig "
               "  structure A : sig type t end "
               "  structure B : sig type t end "
               "  sharing type A.t = B.t end "
               "structure Bad = struct "
               "  structure A = struct type t = int end "
               "  structure B = struct type t = string end end "
               "functor F(P : PAIR) = struct end "
               "structure R = F(Bad)")
        with pytest.raises(ElabError, match="sharing|realization"):
            elab(src)

    def test_include(self, elab):
        src = ("signature BASE = sig val x : int end "
               "signature EXT = sig include BASE val y : int end "
               "structure S : EXT = struct val x = 1 val y = 2 end "
               "val both = S.x + S.y")
        elab(src)


class TestFunctors:
    def test_basic_application(self, type_of):
        src = ("signature T = sig type t val v : t end "
               "functor Twice(X : T) = struct val pair = (X.v, X.v) end "
               "structure R = Twice(struct type t = int val v = 5 end) "
               "val p = R.pair")
        assert type_of(src, "p") == "int * int"

    def test_generative_datatypes(self, elab):
        # Each application mints a fresh datatype.
        src = ("functor Mk(X : sig end) = struct datatype t = K end "
               "structure E = struct end "
               "structure A = Mk(E) structure B = Mk(E) "
               "val bad : A.t = B.K")
        with pytest.raises(ElabError):
            elab(src)

    def test_result_signature_constrains(self, elab):
        src = ("signature OUT = sig val visible : int end "
               "functor F(X : sig end) : OUT = struct "
               "  val visible = 1 val hidden = 2 end "
               "structure R = F(struct end) "
               "val bad = R.hidden")
        with pytest.raises(ElabError, match="unbound"):
            elab(src)

    def test_opaque_result_signature(self, elab):
        src = ("signature OUT = sig type t val mk : int -> t end "
               "functor F(X : sig end) :> OUT = struct "
               "  type t = int fun mk n = n end "
               "structure R = F(struct end) "
               "val bad = R.mk 3 + 1")
        with pytest.raises(ElabError):
            elab(src)

    def test_argument_must_match(self, elab):
        src = ("signature T = sig val v : int end "
               "functor F(X : T) = struct end "
               "structure R = F(struct val w = 1 end)")
        with pytest.raises(ElabError, match="not present"):
            elab(src)

    def test_definition_time_body_errors(self, elab):
        # The body is checked at definition, not first application.
        src = ("functor F(X : sig val v : int end) = struct "
               "  val bad = X.v ^ \"s\" end")
        with pytest.raises(ElabError):
            elab(src)

    def test_parameter_signature_respected(self, elab):
        # Body may only use what the parameter signature specifies.
        src = ("functor F(X : sig val v : int end) = struct "
               "  val w = X.other end")
        with pytest.raises(ElabError, match="unbound"):
            elab(src)

    def test_transparent_propagation_through_functor(self, type_of):
        # Figure 1's crucial property.
        src = ("signature PO = sig type elem val less : elem * elem -> bool end "
               "functor Sort(P : PO) = struct "
               "  type t = P.elem fun sort (l : t list) = l end "
               "structure IntPO = struct "
               "  type elem = int fun less (a, b) = a < b end "
               "structure S = Sort(IntPO) "
               "val sorted = S.sort [3, 1]")
        assert type_of(src, "sorted") == "int list"

    def test_functor_closure_sees_definition_env(self, type_of):
        # The body references a structure visible at definition site.
        src = ("structure Helper = struct fun bump x = x + 1 end "
               "functor F(X : sig val v : int end) = struct "
               "  val w = Helper.bump X.v end "
               "structure R = F(struct val v = 41 end) "
               "val out = R.w")
        assert type_of(src, "out") == "int"

    def test_derived_form_argument(self, type_of):
        src = ("functor F(X : sig val v : int end) = "
               "  struct val w = X.v + 1 end "
               "structure R = F(val v = 1) "
               "val out = R.w")
        assert type_of(src, "out") == "int"

    def test_unbound_functor(self, elab):
        with pytest.raises(ElabError, match="unbound functor"):
            elab("structure R = Nope(struct end)")

    def test_functor_reuse_two_applications(self, type_of):
        src = ("signature T = sig type t val v : t end "
               "functor Id(X : T) = struct val v = X.v end "
               "structure A = Id(struct type t = int val v = 1 end) "
               "structure B = Id(struct type t = string val v = \"s\" end) "
               "val pair = (A.v, B.v)")
        assert type_of(src, "pair") == "int * string"


class TestSignatureInstances:
    def test_named_sig_instances_independent(self, elab):
        # Two structures matching the same named signature must NOT share
        # their abstract types implicitly.
        src = ("signature T = sig type t end "
               "functor F(X : sig structure A : T structure B : T "
               "              val inject : A.t -> B.t end) = struct end")
        elab(src)  # must elaborate: A.t and B.t are distinct flexibles

    def test_signature_binding(self, elab):
        env = elab("signature S = sig val v : int end signature S2 = S")
        assert "S2" in env.signatures

    def test_val_spec_implicit_polymorphism(self, elab):
        src = ("signature M = sig val map : ('a -> 'b) -> 'a list -> 'b list end "
               "structure X : M = struct val map = map end "
               "val r = X.map (fn n => n + 1) [1]")
        elab(src)
