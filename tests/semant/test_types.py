"""Semantic types: substitution, equality admission, pretty-printing."""

import pytest

from repro.semant import prim
from repro.semant.format import format_type
from repro.semant.stamps import Stamp, StampGenerator, fresh_stamp
from repro.semant.types import (
    AbstractTycon,
    BoundVar,
    ConType,
    Constructor,
    DatatypeTycon,
    FunType,
    PolyType,
    RecordType,
    TyVar,
    TypeFun,
    apply_typefun,
    compute_datatype_equality,
    force_equality,
    instantiate,
    prune,
    subst_bound,
    tuple_type,
    unit_type,
)


class TestStamps:
    def test_identity_not_value(self):
        a, b = fresh_stamp(), fresh_stamp()
        assert a != b
        assert a == a
        assert a.id != b.id

    def test_generator_isolation(self):
        gen = StampGenerator(start=500)
        assert gen.fresh().id == 500
        assert gen.fresh().id == 501

    def test_hashable(self):
        s = fresh_stamp()
        assert {s: 1}[s] == 1


class TestTypeConstruction:
    def test_tuple_labels(self):
        t = tuple_type([prim.int_type(), prim.string_type()])
        assert t.labels() == ("1", "2")
        assert t.is_tuple()

    def test_record_sorted(self):
        t = RecordType((("z", prim.int_type()), ("a", prim.int_type())))
        assert t.labels() == ("a", "z")
        assert not t.is_tuple()

    def test_numeric_labels_sort_numerically(self):
        t = RecordType(tuple(
            (str(i), prim.int_type()) for i in (10, 2, 1)))
        assert t.labels() == ("1", "2", "10")

    def test_unit(self):
        assert unit_type().fields == ()

    def test_contype_arity_checked(self):
        with pytest.raises(AssertionError):
            ConType(prim.LIST, ())


class TestSubstitution:
    def test_subst_bound(self):
        body = FunType(BoundVar(0), ConType(prim.LIST, (BoundVar(0),)))
        out = subst_bound(body, (prim.int_type(),))
        assert format_type(out) == "int -> int list"

    def test_apply_typefun(self):
        fun = TypeFun(2, tuple_type([BoundVar(1), BoundVar(0)]), "swap")
        out = apply_typefun(fun, (prim.int_type(), prim.string_type()))
        assert format_type(out) == "string * int"

    def test_instantiate_fresh_vars(self):
        scheme = PolyType(1, FunType(BoundVar(0), BoundVar(0)))
        t1 = prune(instantiate(scheme, level=1))
        t2 = prune(instantiate(scheme, level=1))
        assert isinstance(t1, FunType) and isinstance(t2, FunType)
        assert prune(t1.dom) is not prune(t2.dom)

    def test_instantiate_monomorphic_identity(self):
        t = prim.int_type()
        assert instantiate(t, 0) is t


class TestEqualityAdmission:
    def test_int_admits(self):
        assert force_equality(prim.int_type())

    def test_real_does_not(self):
        assert not force_equality(prim.real_type())

    def test_function_does_not(self):
        assert not force_equality(
            FunType(prim.int_type(), prim.int_type()))

    def test_ref_always(self):
        inner = FunType(prim.int_type(), prim.int_type())
        assert force_equality(prim.ref_type(inner))

    def test_tyvar_coerced(self):
        var = TyVar(level=1)
        assert force_equality(var)
        assert var.eq

    def test_record_needs_all_fields(self):
        good = tuple_type([prim.int_type(), prim.string_type()])
        bad = tuple_type([prim.int_type(), prim.real_type()])
        assert force_equality(good)
        assert not force_equality(bad)

    def test_datatype_fixpoint_simple(self):
        gen = StampGenerator(start=9000)
        tycon = DatatypeTycon(gen.fresh(), "t", 0)
        con = Constructor("C", tycon,
                          FunType(prim.int_type(), ConType(tycon, ())),
                          True)
        tycon.constructors.append(con)
        compute_datatype_equality([tycon])
        assert tycon.eq

    def test_datatype_fixpoint_fn_arg_demotes(self):
        gen = StampGenerator(start=9100)
        tycon = DatatypeTycon(gen.fresh(), "t", 0)
        fn_arg = FunType(prim.int_type(), prim.int_type())
        con = Constructor("C", tycon,
                          FunType(fn_arg, ConType(tycon, ())), True)
        tycon.constructors.append(con)
        compute_datatype_equality([tycon])
        assert not tycon.eq

    def test_mutual_recursion_demotes_both(self):
        gen = StampGenerator(start=9200)
        a = DatatypeTycon(gen.fresh(), "a", 0)
        b = DatatypeTycon(gen.fresh(), "b", 0)
        fn_arg = FunType(prim.int_type(), prim.int_type())
        a.constructors.append(Constructor(
            "A", a, FunType(ConType(b, ()), ConType(a, ())), True))
        b.constructors.append(Constructor(
            "B", b, FunType(fn_arg, ConType(b, ())), True))
        compute_datatype_equality([a, b])
        assert not a.eq and not b.eq


class TestFormat:
    def test_nested_arrows(self):
        t = FunType(FunType(prim.int_type(), prim.int_type()),
                    prim.int_type())
        assert format_type(t) == "(int -> int) -> int"

    def test_tuple_in_arrow(self):
        t = FunType(tuple_type([prim.int_type(), prim.int_type()]),
                    prim.bool_type())
        assert format_type(t) == "int * int -> bool"

    def test_tuple_of_tuples(self):
        inner = tuple_type([prim.int_type(), prim.int_type()])
        t = tuple_type([inner, prim.string_type()])
        assert format_type(t) == "(int * int) * string"

    def test_constructor_application(self):
        t = ConType(prim.LIST, (ConType(prim.LIST, (prim.int_type(),)),))
        assert format_type(t) == "int list list"

    def test_multi_arg_tycon(self):
        gen = StampGenerator(start=9300)
        pair = AbstractTycon(gen.fresh(), "pair", 2)
        t = ConType(pair, (prim.int_type(), prim.string_type()))
        assert format_type(t) == "(int, string) pair"

    def test_scheme_vars(self):
        scheme = PolyType(
            2, FunType(BoundVar(0), BoundVar(1)), (False, False))
        assert format_type(scheme) == "'a -> 'b"

    def test_equality_vars(self):
        scheme = PolyType(
            1, FunType(tuple_type([BoundVar(0), BoundVar(0)]),
                       prim.bool_type()), (True,))
        assert format_type(scheme) == "''a * ''a -> bool"

    def test_unit_formats(self):
        assert format_type(unit_type()) == "unit"

    def test_record_format(self):
        t = RecordType((("x", prim.int_type()),
                        ("y", prim.string_type())))
        assert format_type(t) == "{x: int, y: string}"
