"""Environments: layering, lookup, stamp indexing."""

import pytest

from repro.semant import prim
from repro.semant.env import Env, Structure, ValueBinding, stamp_index
from repro.semant.stamps import StampGenerator
from repro.semant.types import DatatypeTycon

GEN = StampGenerator(start=20_000)


def _struct(name, env=None):
    return Structure(GEN.fresh(), name, env if env is not None else Env())


class TestLookup:
    def test_frame_lookup(self):
        env = Env()
        env.bind_value("x", ValueBinding(prim.int_type()))
        assert env.lookup_value("x") is not None
        assert env.lookup_value("y") is None

    def test_parent_chain(self):
        base = Env()
        base.bind_value("x", ValueBinding(prim.int_type()))
        child = base.child()
        assert child.lookup_value("x") is not None

    def test_shadowing(self):
        base = Env()
        base.bind_value("x", ValueBinding(prim.int_type()))
        child = base.child()
        child.bind_value("x", ValueBinding(prim.string_type()))
        assert child.lookup_value("x").scheme is not \
            base.lookup_value("x").scheme

    def test_namespaces_independent(self):
        env = Env()
        env.bind_value("t", ValueBinding(prim.int_type()))
        env.bind_tycon("t", prim.INT)
        env.bind_structure("t", _struct("t"))
        assert env.lookup_value("t") is not None
        assert env.lookup_tycon("t") is prim.INT
        assert env.lookup_structure("t") is not None

    def test_structure_path(self):
        inner = Env()
        inner.bind_value("v", ValueBinding(prim.int_type()))
        mid = Env()
        mid.bind_structure("B", _struct("B", inner))
        outer = Env()
        outer.bind_structure("A", _struct("A", mid))
        assert outer.lookup_value_path(("A", "B", "v")) is not None
        assert outer.lookup_value_path(("A", "C", "v")) is None
        assert outer.lookup_structure_path(("A", "B")) is not None

    def test_atop_layering(self):
        base = Env()
        base.bind_value("x", ValueBinding(prim.int_type()))
        overlay = Env()
        overlay.bind_value("y", ValueBinding(prim.string_type()))
        merged = overlay.atop(base)
        assert merged.lookup_value("x") is not None
        assert merged.lookup_value("y") is not None
        # Layering does not mutate either input.
        assert base.lookup_value("y") is None
        assert overlay.parent is None

    def test_absorb(self):
        a = Env()
        a.bind_value("x", ValueBinding(prim.int_type()))
        b = Env()
        b.absorb(a)
        assert b.lookup_value("x") is not None

    def test_frame_names_sorted(self):
        env = Env()
        env.bind_value("z", ValueBinding(prim.int_type()))
        env.bind_value("a", ValueBinding(prim.int_type()))
        assert env.frame_names()["values"] == ["a", "z"]

    def test_empty_frame(self):
        assert Env().is_empty_frame()
        env = Env()
        env.bind_tycon("t", prim.INT)
        assert not env.is_empty_frame()


class TestStampIndex:
    def test_indexes_datatypes(self):
        env = Env()
        tycon = DatatypeTycon(GEN.fresh(), "t", 0)
        env.bind_tycon("t", tycon)
        index = stamp_index(env)
        assert index[tycon.stamp.id] is tycon

    def test_indexes_nested_structures(self):
        inner = Env()
        deep = DatatypeTycon(GEN.fresh(), "d", 0)
        inner.bind_tycon("d", deep)
        outer = Env()
        struct = _struct("S", inner)
        outer.bind_structure("S", struct)
        index = stamp_index(outer)
        assert index[struct.stamp.id] is struct
        assert index[deep.stamp.id] is deep

    def test_walks_parents(self):
        base = Env()
        tycon = DatatypeTycon(GEN.fresh(), "t", 0)
        base.bind_tycon("t", tycon)
        child = base.child()
        assert tycon.stamp.id in stamp_index(child)

    def test_handles_sharing_without_duplication(self):
        shared = _struct("Shared")
        a = Env()
        a.bind_structure("A", shared)
        a.bind_structure("B", shared)
        index = stamp_index(a)
        assert index[shared.stamp.id] is shared
