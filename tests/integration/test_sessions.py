"""Cross-session scenarios: the work dehydration exists to enable."""

import pytest

from repro.cm import BinStore, CutoffBuilder, Project
from repro.workload import chain, diamond, generate_workload


class TestMultiSession:
    def test_three_session_development(self):
        """Session 1 builds; session 2 edits and rebuilds incrementally;
        session 3 only loads."""
        w = generate_workload(chain(6), helpers_per_unit=2)
        store = BinStore()

        s1 = CutoffBuilder(w.project, store=store)
        assert len(s1.build().compiled) == 6

        w.edit_implementation("u002")
        s2 = CutoffBuilder(w.project, store=store)
        r2 = s2.build()
        assert r2.compiled == ["u002"]
        assert len(r2.loaded) == 5

        s3 = CutoffBuilder(w.project, store=store)
        r3 = s3.build()
        assert r3.compiled == []
        assert len(r3.loaded) == 6
        s3.link()  # executes fine from bins alone

    def test_disk_persistence_between_sessions(self, tmp_path):
        w = generate_workload(diamond(2, 2), helpers_per_unit=2)
        s1 = CutoffBuilder(w.project)
        s1.build()
        s1.store.save_directory(str(tmp_path / "bins"))

        store = BinStore.load_directory(str(tmp_path / "bins"))
        s2 = CutoffBuilder(w.project, store=store)
        report = s2.build()
        assert report.compiled == []
        s2.link()

    def test_stale_bin_detected_in_new_session(self):
        w = generate_workload(chain(3), helpers_per_unit=2)
        store = BinStore()
        CutoffBuilder(w.project, store=store).build()
        # Corrupt the record's pid to simulate a stale/forged bin: the
        # dependents' import check must force recompilation.
        record = store.get("u000")
        record.export_pid = "f" * 32
        s2 = CutoffBuilder(w.project, store=store)
        report = s2.build()
        # u000 loads under the forged pid; u001 sees a pid mismatch and
        # recompiles; u001's recompile restores the true chain.
        assert "u001" in report.compiled

    def test_interleaved_edits_and_sessions(self):
        w = generate_workload(chain(4), helpers_per_unit=2)
        store = BinStore()
        CutoffBuilder(w.project, store=store).build()

        w.edit_interface("u000")
        s2 = CutoffBuilder(w.project, store=store)
        r2 = s2.build()
        assert "u000" in r2.compiled
        assert "u001" in r2.compiled  # interface changed -> dependent

        s3 = CutoffBuilder(w.project, store=store)
        assert s3.build().compiled == []


class TestMixedBuilders:
    def test_cutoff_can_reuse_timestamp_bins(self):
        # Both builders write the same bin format; switching managers
        # mid-project must work (the records carry everything needed).
        from repro.cm import TimestampBuilder

        w = generate_workload(chain(3), helpers_per_unit=2)
        store = BinStore()
        TimestampBuilder(w.project, store=store).build()
        cutoff = CutoffBuilder(w.project, store=store)
        report = cutoff.build()
        assert report.compiled == []
        assert len(report.loaded) == 3
