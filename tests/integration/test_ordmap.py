"""An Okasaki red-black tree map, written in SML as a functor library,
property-tested against Python dicts.

This is the heaviest pattern-matching workload in the suite (the
four-way `balance` match), exercising deep nested constructor patterns,
functor application, and the exhaustiveness checker on real code.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cm import CutoffBuilder, Project
from repro.dynamic.evaluate import apply_value
from repro.dynamic.values import VCon, python_list

SOURCES = {
    "ord": """
        signature ORD_KEY = sig
          type key
          val compare : key * key -> order
        end
        structure IntKey : ORD_KEY = struct
          type key = int
          val compare = Int.compare
        end
        structure StringKey : ORD_KEY = struct
          type key = string
          val compare = String.compare
        end
    """,
    "rbmap": """
        functor RedBlackMap(K : ORD_KEY) = struct
          datatype color = Red | Black
          datatype 'a tree =
            Leaf
          | Node of color * 'a tree * (K.key * 'a) * 'a tree

          val empty = Leaf

          fun lookup (key, Leaf) = NONE
            | lookup (key, Node (_, l, (k, v), r)) =
                (case K.compare (key, k) of
                   LESS => lookup (key, l)
                 | GREATER => lookup (key, r)
                 | EQUAL => SOME v)

          (* Okasaki's balance: rebuild any red-red violation. *)
          fun balance (Black, Node (Red, Node (Red, a, x, b), y, c), z, d) =
                Node (Red, Node (Black, a, x, b), y, Node (Black, c, z, d))
            | balance (Black, Node (Red, a, x, Node (Red, b, y, c)), z, d) =
                Node (Red, Node (Black, a, x, b), y, Node (Black, c, z, d))
            | balance (Black, a, x, Node (Red, Node (Red, b, y, c), z, d)) =
                Node (Red, Node (Black, a, x, b), y, Node (Black, c, z, d))
            | balance (Black, a, x, Node (Red, b, y, Node (Red, c, z, d))) =
                Node (Red, Node (Black, a, x, b), y, Node (Black, c, z, d))
            | balance (color, l, kv, r) = Node (color, l, kv, r)

          fun insert (key, value, tree) =
            let
              fun ins Leaf = Node (Red, Leaf, (key, value), Leaf)
                | ins (Node (color, l, (k, v), r)) =
                    (case K.compare (key, k) of
                       LESS => balance (color, ins l, (k, v), r)
                     | GREATER => balance (color, l, (k, v), ins r)
                     | EQUAL => Node (color, l, (k, value), r))
            in
              case ins tree of
                Node (_, l, kv, r) => Node (Black, l, kv, r)
              | Leaf => Leaf
            end

          fun foldr f base Leaf = base
            | foldr f base (Node (_, l, kv, r)) =
                foldr f (f (kv, foldr f base r)) l

          fun toList tree = foldr (fn (kv, acc) => kv :: acc) nil tree
          fun fromList pairs =
            List.foldl (fn ((k, v), t) => insert (k, v, t)) empty pairs
          fun size tree = length (toList tree)

          (* depth invariant check for the tests *)
          fun blackDepths Leaf = [0]
            | blackDepths (Node (color, l, _, r)) =
                let val inc = case color of Black => 1 | Red => 0
                in map (fn d => d + inc) (blackDepths l @ blackDepths r)
                end
        end
    """,
    "intmap": "structure IntMap = RedBlackMap(IntKey)",
}


@pytest.fixture(scope="module")
def intmap():
    builder = CutoffBuilder(Project.from_sources(SOURCES))
    builder.build()
    exports = builder.link()
    return exports["intmap"].structures["IntMap"]


def _insert(m, key, value, tree):
    return apply_value(m.values["insert"], (key, value, tree))


def _lookup(m, key, tree):
    return apply_value(m.values["lookup"], (key, tree))


def _to_dict(m, tree):
    return dict(python_list(apply_value(m.values["toList"], tree)))


class TestBasics:
    def test_empty_lookup(self, intmap):
        assert _lookup(intmap, 1, intmap.values["empty"]) == VCon("NONE")

    def test_insert_lookup(self, intmap):
        t = _insert(intmap, 5, "five", intmap.values["empty"])
        assert _lookup(intmap, 5, t) == VCon("SOME", "five")

    def test_overwrite(self, intmap):
        t = intmap.values["empty"]
        t = _insert(intmap, 1, "a", t)
        t = _insert(intmap, 1, "b", t)
        assert _lookup(intmap, 1, t) == VCon("SOME", "b")
        assert apply_value(intmap.values["size"], t) == 1

    def test_sorted_iteration(self, intmap):
        t = intmap.values["empty"]
        for k in (5, 1, 9, 3, 7):
            t = _insert(intmap, k, k * 10, t)
        pairs = python_list(apply_value(intmap.values["toList"], t))
        assert pairs == [(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]


class TestProperties:
    @given(st.lists(st.tuples(st.integers(-50, 50),
                              st.integers(0, 1000)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_dict(self, intmap, ops):
        tree = intmap.values["empty"]
        model: dict[int, int] = {}
        for key, value in ops:
            tree = _insert(intmap, key, value, tree)
            model[key] = value
        assert _to_dict(intmap, tree) == model
        for key in list(model) + [999]:
            got = _lookup(intmap, key, tree)
            if key in model:
                assert got == VCon("SOME", model[key])
            else:
                assert got == VCon("NONE")

    @given(st.lists(st.integers(-100, 100), max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_red_black_invariant(self, intmap, keys):
        """Every root-to-leaf path has the same black depth."""
        tree = intmap.values["empty"]
        for key in keys:
            tree = _insert(intmap, key, key, tree)
        depths = python_list(
            apply_value(intmap.values["blackDepths"], tree))
        assert len(set(depths)) == 1

    @given(st.lists(st.integers(-100, 100), max_size=80, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_balanced_depth_bound(self, intmap, keys):
        """Black-depth balance bounds the tree height to O(log n)."""
        import math

        tree = intmap.values["empty"]
        for key in keys:
            tree = _insert(intmap, key, key, tree)
        if not keys:
            return
        depths = python_list(
            apply_value(intmap.values["blackDepths"], tree))
        black = depths[0]
        # Height <= 2 * black depth; black depth <= log2(n+1) + 1.
        assert black <= math.log2(len(keys) + 1) + 1
