"""True cross-process persistence: bin files written by another Python
process must rehydrate here.

This is the strongest form of the paper's separate-compilation claim:
nothing in a bin file may depend on the writing process's memory (object
ids, stamp numbers, dict layout).  The test shells out to a fresh
interpreter to build and save bins, then loads them in this process.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.cm import BinStore, CutoffBuilder, Project

SOURCES = {
    "base": """
        signature STACK = sig
          type 'a t
          val empty : 'a t
          val push : 'a * 'a t -> 'a t
          val sum : int t -> int
        end
        structure Stack : STACK = struct
          datatype 'a t = S of 'a list
          val empty = S nil
          fun push (x, S xs) = S (x :: xs)
          fun sum (S xs) = foldl (fn (a, b) => a + b) 0 xs
        end
    """,
    "app": """
        structure App = struct
          val total = Stack.sum (Stack.push (40, Stack.push (2,
                        Stack.empty)))
        end
    """,
}

BUILD_SCRIPT = textwrap.dedent("""
    import json, sys
    from repro.cm import CutoffBuilder, Project

    bin_dir = sys.argv[1]
    sources = json.loads(sys.argv[2])
    project = Project.from_sources(sources)
    builder = CutoffBuilder(project)
    report = builder.build()
    assert len(report.compiled) == len(sources), report
    builder.store.save_directory(bin_dir)
    print("built", ",".join(sorted(builder.units)))
""")


@pytest.mark.parametrize("edit_between", [False, True])
def test_bins_from_another_process(tmp_path, edit_between):
    import json

    bin_dir = str(tmp_path / "bins")
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, "-c", BUILD_SCRIPT, bin_dir,
         json.dumps(SOURCES)],
        capture_output=True, text=True, env=env, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "built app,base" in result.stdout

    project = Project.from_sources(SOURCES)
    if edit_between:
        # An implementation-only edit made after the other process built.
        project.edit("base", SOURCES["base"].replace(
            "fun sum (S xs) = foldl (fn (a, b) => a + b) 0 xs",
            "fun sum (S xs) = foldl (fn (a, b) => b + a) 0 xs"))
    store = BinStore.load_directory(bin_dir)
    builder = CutoffBuilder(project, store=store)
    report = builder.build()
    if edit_between:
        assert report.compiled == ["base"]
        assert report.loaded == ["app"]
    else:
        assert report.compiled == []
        assert len(report.loaded) == 2
    exports = builder.link()
    assert exports["app"].structures["App"].values["total"] == 42


def test_pids_agree_across_processes(tmp_path):
    import json

    bin_dir = str(tmp_path / "bins")
    result = subprocess.run(
        [sys.executable, "-c", BUILD_SCRIPT, bin_dir,
         json.dumps(SOURCES)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr

    other = BinStore.load_directory(bin_dir)
    mine = CutoffBuilder(Project.from_sources(SOURCES))
    mine.build()
    for name in ("base", "app"):
        assert other.get(name).export_pid == \
            mine.units[name].export_pid, name
