"""The paper's §3 worked example, reproduced literally.

    Source:       val a = x+y
                  val b = x+2*z
    compilation:  statenv {a -> (int, pid_a), b -> (int, pid_b)}
                  code    \\(x, y, z). (x+y, x+2*z)
                  imports [pid_x, pid_y, pid_z]
                  exports [pid_a, pid_b]
    execution:    dc = {x -> 3, y -> 4, z -> 5}
                  -> {pid_a -> 7, pid_b -> 13}

Our import vectors are unit-granular (one entry per imported unit, whose
export record carries the names), but the factoring -- closed code
applied to imported values, producing exported values -- is the same.
"""

import pytest

from repro.semant.format import format_type
from repro.units import Session, compile_unit, execute_unit

PROVIDER = """
val x = 3
val y = 4
val z = 5
"""

CLIENT = """
val a = x + y
val b = x + 2 * z
"""


@pytest.fixture(scope="module")
def session(basis):
    return Session(basis)


class TestSection3:
    def test_compile_produces_the_statenv(self, session):
        provider = compile_unit("p", PROVIDER, [], session)
        client = compile_unit("c", CLIENT, [provider], session)
        # statenv: a and b at type int.
        assert format_type(client.static_env.values["a"].scheme) == "int"
        assert format_type(client.static_env.values["b"].scheme) == "int"

    def test_imports_and_exports_recorded(self, session):
        provider = compile_unit("p", PROVIDER, [], session)
        client = compile_unit("c", CLIENT, [provider], session)
        assert client.imports == [("p", provider.export_pid)]
        assert len(client.export_pid) == 32

    def test_execution_applies_code_to_imports(self, session):
        provider = compile_unit("p", PROVIDER, [], session)
        client = compile_unit("c", CLIENT, [provider], session)
        dyn_p = execute_unit(provider, [], session)
        # dc = {x -> 3, y -> 4, z -> 5}
        assert (dyn_p.values["x"], dyn_p.values["y"],
                dyn_p.values["z"]) == (3, 4, 5)
        dyn_c = execute_unit(client, [dyn_p], session)
        # -> {a -> 7, b -> 13}, the paper's (va, vb).
        assert dyn_c.values["a"] == 7
        assert dyn_c.values["b"] == 13

    def test_code_is_reusable_against_other_imports(self, session):
        """The paper: code is closed, so the same codeUnit executes
        against any dynamic environment with the right pids."""
        provider_a = compile_unit("p", PROVIDER, [], session)
        client = compile_unit("c", CLIENT, [provider_a], session)
        dyn1 = execute_unit(provider_a, [], session)
        out1 = execute_unit(client, [dyn1], session)

        # A different execution of the provider (same interface).
        dyn2 = execute_unit(provider_a, [], session)
        dyn2.values["x"] = 10  # simulate different run-time state
        out2 = execute_unit(client, [dyn2], session)
        assert out1.values["a"] == 7
        assert out2.values["a"] == 14  # 10 + 4

    def test_interface_change_changes_export_pid(self, session):
        provider = compile_unit("p", PROVIDER, [], session)
        changed = compile_unit("p", PROVIDER + "val w = 6\n", [], session)
        assert provider.export_pid != changed.export_pid
        # Implementation-only change: same interface, same pid.
        reordered = compile_unit(
            "p", "val x = 1 + 2\nval y = 2 * 2\nval z = 10 - 5\n", [],
            session)
        assert reordered.export_pid == provider.export_pid
