"""Higher-order functors: functor-valued parameters (§10.2).

The paper lists higher-order functors as ongoing work (MacQueen-Tofte);
SML/NJ shipped them.  Our re-elaboration architecture supports the
functor-parameter form, with the argument checked *semantically*: it is
applied to a formal instance of the spec's parameter signature and the
result matched against the spec's result signature.
"""

import pytest

from repro.cm import CutoffBuilder, Project
from repro.dynamic.values import python_list
from repro.elab.errors import ElabError

PRELUDE_SRC = """
signature ORD = sig type t val le : t * t -> bool end
signature SORTER = sig type t val sort : t list -> t list end
functor InsertionSort(P : ORD) : SORTER where type t = P.t = struct
  type t = P.t
  fun insert (x, nil) = [x]
    | insert (x, h :: rest) =
        if P.le (x, h) then x :: h :: rest else h :: insert (x, rest)
  fun sort l = foldl insert nil l
end
functor ReverseSort(P : ORD) : SORTER where type t = P.t = struct
  type t = P.t
  structure Fwd = InsertionSort(P)
  fun sort l = rev (Fwd.sort l)
end
"""

HIGHER = """
functor Tester(functor Mk(P : ORD) : SORTER where type t = P.t) = struct
  structure IntOrd = struct type t = int fun le (a, b) = a <= b end
  structure S = Mk(IntOrd)
  fun sortInts (l : int list) = S.sort l
end
"""


class TestElaboration:
    def test_declaration(self, elab):
        env = elab(PRELUDE_SRC + HIGHER)
        assert "Tester" in env.functors
        assert env.functors["Tester"].takes_functor()

    def test_application(self, type_of):
        src = (PRELUDE_SRC + HIGHER +
               "structure T = Tester(InsertionSort) "
               "val out = T.sortInts [2, 1]")
        assert type_of(src, "out") == "int list"

    def test_dependent_result_signature(self, type_of):
        # Mk's result type t equals the argument's t: propagated int.
        src = (PRELUDE_SRC + HIGHER +
               "structure T = Tester(InsertionSort) "
               "val out = hd (T.S.sort [5])")
        assert type_of(src, "out") == "int"

    def test_nonconforming_argument_rejected(self, elab):
        src = (PRELUDE_SRC + HIGHER +
               "functor NotASorter(P : ORD) = struct val x = 1 end "
               "structure Bad = Tester(NotASorter)")
        with pytest.raises(ElabError, match="SORTER|not present"):
            elab(src)

    def test_wrong_result_type_rejected(self, elab):
        # A functor producing a SORTER over the WRONG type.
        src = (PRELUDE_SRC + HIGHER +
               "functor ConstSort(P : ORD) = struct "
               "  type t = string fun sort (l : string list) = l end "
               "structure Bad = Tester(ConstSort)")
        with pytest.raises(ElabError):
            elab(src)

    def test_structure_argument_rejected(self, elab):
        src = (PRELUDE_SRC + HIGHER +
               "structure S = struct end "
               "structure Bad = Tester(S)")
        with pytest.raises(ElabError, match="unbound functor"):
            elab(src)

    def test_functor_passed_where_structure_expected(self, elab):
        src = (PRELUDE_SRC +
               "functor Wants(X : ORD) = struct end "
               "structure Bad = Wants(InsertionSort)")
        with pytest.raises(ElabError):
            elab(src)

    def test_definition_time_body_check(self, elab):
        # The body misuses the formal functor's result: caught at
        # definition, before any application exists.
        src = (PRELUDE_SRC +
               "functor Broken(functor Mk(P : ORD) : SORTER) = struct "
               "  structure IntOrd = struct type t = int "
               "    fun le (a, b) = a <= b end "
               "  structure S = Mk(IntOrd) "
               "  val bad = S.sort 5 end")
        with pytest.raises(ElabError):
            elab(src)


class TestDynamics:
    def test_execution(self, value_of):
        src = (PRELUDE_SRC + HIGHER +
               "structure T = Tester(InsertionSort) "
               "val out = T.sortInts [3, 1, 2]")
        assert python_list(value_of(src, "out")) == [1, 2, 3]

    def test_different_arguments_different_behaviour(self, value_of):
        src = (PRELUDE_SRC + HIGHER +
               "structure Up = Tester(InsertionSort) "
               "structure Down = Tester(ReverseSort) "
               "val out = (Up.sortInts [2, 1, 3], Down.sortInts [2, 1, 3])")
        up, down = value_of(src, "out")
        assert python_list(up) == [1, 2, 3]
        assert python_list(down) == [3, 2, 1]


class TestAcrossUnits:
    def test_higher_order_across_bin_files(self):
        sources = {
            "sorting": PRELUDE_SRC,
            "tester": HIGHER,
            "use": ("structure T = Tester(ReverseSort) "
                    "structure Out = struct val r = T.sortInts [1, 3, 2] "
                    "end"),
        }
        b1 = CutoffBuilder(Project.from_sources(sources))
        b1.build()
        exports = b1.link()
        assert python_list(
            exports["use"].structures["Out"].values["r"]) == [3, 2, 1]

        # New session from bins: the higher-order functor rehydrates.
        b2 = CutoffBuilder(Project.from_sources(sources), store=b1.store)
        report = b2.build()
        assert report.compiled == []
        exports2 = b2.link()
        assert python_list(
            exports2["use"].structures["Out"].values["r"]) == [3, 2, 1]

    def test_spec_edit_cascades(self):
        sources = {
            "sorting": PRELUDE_SRC,
            "tester": HIGHER,
        }
        project = Project.from_sources(sources)
        builder = CutoffBuilder(project)
        builder.build()
        # Editing the functor-parameter spec changes tester's interface.
        project.edit("tester", HIGHER.replace(
            "fun sortInts (l : int list) = S.sort l",
            "fun sortInts (l : int list) = S.sort (S.sort l)"))
        report = builder.build()
        assert "tester" in report.compiled
