"""Figure 1 of the paper, end to end.

The figure's point: ``TopSort`` is constrained to ``SORT``, whose ``type
t`` is opaque *in the signature text*, yet transparent signature matching
propagates ``FSort.t = Factors.elem list = int list`` to clients.  "The
(partial) signature SORT does not limit the dependencies"; this is why
SML needs inter-implementation dependency tracking at all.
"""

import pytest

from repro.cm import CutoffBuilder, Project, TimestampBuilder
from repro.dynamic.evaluate import apply_value
from repro.dynamic.values import python_list, sml_list

UNITS = {
    "orders": """
        signature PARTIAL_ORDER = sig
          type elem
          val less : elem * elem -> bool
        end
        signature SORT = sig
          type t
          val sort : t list -> t list
        end
    """,
    "topsort": """
        functor TopSort(P : PARTIAL_ORDER) : SORT = struct
          type t = P.elem
          fun insert (x, nil) = [x]
            | insert (x, h :: rest) =
                if P.less (x, h) then x :: h :: rest
                else h :: insert (x, rest)
          fun sort l = foldl insert nil l
        end
    """,
    "factors": """
        structure Factors : PARTIAL_ORDER = struct
          type elem = int
          fun less (i, j) = (j mod i = 0)
        end
    """,
    "fsort": """
        structure FSort : SORT = TopSort(Factors)
    """,
}


@pytest.fixture
def built():
    project = Project.from_sources(UNITS)
    builder = CutoffBuilder(project)
    builder.build()
    return project, builder


class TestFigure1:
    def test_dependency_graph(self, built):
        _project, builder = built
        graph = builder.last_graph
        assert graph.deps["topsort"] == ["orders"]
        assert graph.deps["factors"] == ["orders"]
        # fsort mentions SORT (from orders) in its ascription too.
        assert sorted(graph.deps["fsort"]) == ["factors", "orders",
                                               "topsort"]

    def test_transparency(self, built):
        # FSort.t must be int (the paper: "FSort.t is the same as int").
        _project, builder = built
        project = _project
        project.add(
            "client",
            "structure Client = struct val xs = FSort.sort [6, 2, 3] "
            "val total = foldl (fn (a, b) => a + b) 0 xs end")
        report = builder.build()
        assert "client" in report.compiled  # and it type-checks: t = int

    def test_execution(self, built):
        _project, builder = built
        exports = builder.link()
        sort = exports["fsort"].structures["FSort"].values["sort"]
        result = apply_value(sort, sml_list([6, 2, 3]))
        # Insertion by divisibility: a stack where each element divides
        # the one below it floats divisors up.
        assert sorted(python_list(result)) == [2, 3, 6]

    def test_functor_body_edit_cascades(self, built):
        # TopSort's body is inlined into FSort through re-elaboration, so
        # editing the *implementation* of the functor must recompile its
        # appliers -- the paper's point about functor inter-implementation
        # dependence.
        project, builder = built
        project.edit("topsort", UNITS["topsort"].replace(
            "fun sort l = foldl insert nil l",
            "fun sort l = foldl insert nil (rev l)"))
        report = builder.build()
        assert "topsort" in report.compiled
        assert "fsort" in report.compiled

    def test_factors_impl_edit_cuts_off(self, built):
        project, builder = built
        project.edit("factors", UNITS["factors"].replace(
            "(j mod i = 0)", "(0 = j mod i)"))
        report = builder.build()
        assert report.compiled == ["factors"]

    def test_elem_change_cascades(self, built):
        # Changing Factors.elem changes FSort.t -- visible interface
        # change, full cascade.
        project, builder = built
        project.edit("factors", UNITS["factors"].replace(
            "type elem = int", "type elem = int * int").replace(
            "fun less (i, j) = (j mod i = 0)",
            "fun less ((a, _), (b, _)) = a < b"))
        report = builder.build()
        assert "factors" in report.compiled
        assert "fsort" in report.compiled

    def test_timestamp_baseline_cascades_everywhere(self):
        project = Project.from_sources(UNITS)
        builder = TimestampBuilder(project)
        builder.build()
        project.touch("orders")
        report = builder.build()
        assert set(report.compiled) == {"orders", "topsort", "factors",
                                        "fsort"}
