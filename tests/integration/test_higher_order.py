"""Functors as structure members -- the slice of higher-order module
style this reproduction supports (the paper's §10 discusses the rest as
open problems in 1994)."""

import pytest

from repro.cm import CutoffBuilder, Project
from repro.dynamic.values import python_list


class TestNestedFunctors:
    def test_functor_inside_structure(self, type_of):
        src = ("structure Lib = struct "
               "  functor Pairify(X : sig type t val v : t end) = struct "
               "    val pair = (X.v, X.v) end "
               "end "
               "structure P = Lib.Pairify(struct type t = int val v = 1 end) "
               "val out = P.pair")
        assert type_of(src, "out") == "int * int"

    def test_deeply_qualified_application(self, type_of):
        src = ("structure A = struct structure B = struct "
               "  functor Id(X : sig val v : int end) = struct "
               "val w = X.v end end end "
               "structure R = A.B.Id(struct val v = 9 end) "
               "val out = R.w")
        assert type_of(src, "out") == "int"

    def test_functor_factory(self, type_of):
        # A functor whose result contains another functor, closed over
        # the outer parameter.
        src = ("functor Outer(X : sig val base : int end) = struct "
               "  functor Inner(Y : sig val extra : int end) = struct "
               "    val total = X.base + Y.extra end "
               "end "
               "structure O = Outer(struct val base = 40 end) "
               "structure I = O.Inner(struct val extra = 2 end) "
               "val out = I.total")
        assert type_of(src, "out") == "int"

    def test_factory_dynamics(self, value_of):
        src = ("functor Outer(X : sig val base : int end) = struct "
               "  functor Inner(Y : sig val extra : int end) = struct "
               "    val total = X.base + Y.extra end "
               "end "
               "structure O1 = Outer(struct val base = 40 end) "
               "structure O2 = Outer(struct val base = 100 end) "
               "structure A = O1.Inner(struct val extra = 2 end) "
               "structure B = O2.Inner(struct val extra = 2 end) "
               "val out = (A.total, B.total)")
        assert value_of(src, "out") == (42, 102)

    def test_generativity_through_factory(self, elab):
        from repro.elab.errors import ElabError

        src = ("functor Outer(X : sig end) = struct "
               "  functor Mk(Y : sig end) = struct datatype t = K end "
               "end "
               "structure O = Outer(struct end) "
               "structure A = O.Mk(struct end) "
               "structure B = O.Mk(struct end) "
               "val bad : A.t = B.K")
        with pytest.raises(ElabError):
            elab(src)

    def test_unbound_qualified_functor(self, elab):
        from repro.elab.errors import ElabError

        with pytest.raises(ElabError, match="unbound functor"):
            elab("structure Lib = struct end "
                 "structure R = Lib.Nope(struct end)")


class TestAcrossUnits:
    SOURCES = {
        "lib": """
            signature ORD = sig type t val le : t * t -> bool end
            structure SortLib = struct
              functor Make(P : ORD) = struct
                fun insert (x, nil) = [x]
                  | insert (x, h :: t) =
                      if P.le (x, h) then x :: h :: t
                      else h :: insert (x, t)
                fun sort l = foldl insert nil l
              end
            end
        """,
        "use": """
            structure IntOrd = struct
              type t = int
              fun le (a, b) = a <= b
            end
            structure IntSort = SortLib.Make(IntOrd)
            structure Out = struct val r = IntSort.sort [3, 1, 2] end
        """,
    }

    def test_cross_unit_application(self):
        builder = CutoffBuilder(Project.from_sources(self.SOURCES))
        builder.build()
        exports = builder.link()
        assert python_list(
            exports["use"].structures["Out"].values["r"]) == [1, 2, 3]

    def test_nested_functor_survives_bin_files(self):
        b1 = CutoffBuilder(Project.from_sources(self.SOURCES))
        b1.build()
        b2 = CutoffBuilder(Project.from_sources(self.SOURCES),
                           store=b1.store)
        report = b2.build()
        assert report.compiled == []
        exports = b2.link()
        assert python_list(
            exports["use"].structures["Out"].values["r"]) == [1, 2, 3]

    def test_nested_functor_body_edit_changes_pid(self):
        project = Project.from_sources(self.SOURCES)
        builder = CutoffBuilder(project)
        builder.build()
        # Editing the nested functor's body is an interface-relevant
        # change (the body is part of the structure's statenv).
        project.edit("lib", self.SOURCES["lib"].replace(
            "fun sort l = foldl insert nil l",
            "fun sort l = foldl insert nil (rev l)"))
        report = builder.build()
        assert set(report.compiled) == {"lib", "use"}

    def test_sibling_member_addition_cascades(self):
        # Adding a member to SortLib changes the structure's interface,
        # so clients recompile -- the usual interface-change rule applies
        # to functor-bearing structures too.
        project = Project.from_sources(self.SOURCES)
        builder = CutoffBuilder(project)
        builder.build()
        project.edit("lib", self.SOURCES["lib"].replace(
            "functor Make(P : ORD)",
            "val version = 1\n              functor Make(P : ORD)"))
        report = builder.build()
        assert set(report.compiled) == {"lib", "use"}
