"""The calculator example as an integration test: a five-unit SML
program (lexer/parser/evaluator with mutual recursion, exceptions,
datatypes) through the full toolchain."""

import importlib.util
import os

import pytest

from repro.cm import BinStore, CutoffBuilder, Project
from repro.dynamic.evaluate import apply_value
from repro.dynamic.values import SMLRaise

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _load_units():
    spec = importlib.util.spec_from_file_location(
        "sml_calculator", os.path.join(_EXAMPLES, "sml_calculator.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.UNITS


@pytest.fixture(scope="module")
def calc():
    units = _load_units()
    builder = CutoffBuilder(Project.from_sources(units))
    builder.build()
    exports = builder.link()
    run = exports["eval"].structures["Eval"].values["run"]
    return units, builder, run


class TestCalculator:
    def test_precedence(self, calc):
        _u, _b, run = calc
        assert apply_value(run, "1 + 2 * 3") == 7
        assert apply_value(run, "(1 + 2) * 3") == 9

    def test_left_associativity(self, calc):
        _u, _b, run = calc
        assert apply_value(run, "10 - 3 - 2") == 5

    def test_let_scoping(self, calc):
        _u, _b, run = calc
        assert apply_value(run, "let x = 2 in let x = x * x in x end end") \
            == 4

    def test_unbound_variable_raises(self, calc):
        _u, _b, run = calc
        with pytest.raises(SMLRaise, match="Unbound"):
            apply_value(run, "mystery + 1")

    def test_parse_error_raises(self, calc):
        _u, _b, run = calc
        with pytest.raises(SMLRaise, match="ParseError"):
            apply_value(run, "1 + ")

    def test_lex_error_raises(self, calc):
        _u, _b, run = calc
        with pytest.raises(SMLRaise, match="LexError"):
            apply_value(run, "1 ? 2")

    def test_nested_parens(self, calc):
        _u, _b, run = calc
        assert apply_value(run, "((((5))))") == 5

    def test_bigger_program(self, calc):
        _u, _b, run = calc
        program = ("let a = 3 in let b = a * a in "
                   "let c = b - a in a * b * c end end end")
        assert apply_value(run, program) == 3 * 9 * 6

    def test_survives_bin_roundtrip(self, calc):
        units, builder, _run = calc
        fresh = CutoffBuilder(Project.from_sources(units),
                              store=builder.store)
        report = fresh.build()
        assert report.compiled == []
        exports = fresh.link()
        run = exports["eval"].structures["Eval"].values["run"]
        assert apply_value(run, "let x = 6 in x * 7 end") == 42
