"""Free-name analysis (functor closures + dependency scanning)."""

from repro.lang.freevars import (
    defined_module_names,
    mentioned_names,
    module_level_mentions,
)
from repro.lang.parser import parse_program


def mentions(src):
    return mentioned_names(parse_program(src))


class TestMentions:
    def test_value_names(self):
        m = mentions("structure S = struct val x = helper 3 end")
        assert "helper" in m.values

    def test_qualified_path_root(self):
        m = mentions("structure S = struct val x = A.B.f 1 end")
        assert "A" in m.structures
        assert "f" not in m.values

    def test_tycon_names(self):
        m = mentions("structure S = struct val x : speed = x end")
        assert "speed" in m.tycons

    def test_qualified_tycon_root(self):
        m = mentions("structure S = struct val x : Units.speed = x end")
        assert "Units" in m.structures

    def test_signature_names(self):
        m = mentions("structure S : SORTER = struct end")
        assert "SORTER" in m.signatures

    def test_functor_names(self):
        m = mentions("structure S = Make(struct end)")
        assert "Make" in m.functors

    def test_open(self):
        m = mentions("local open Lib.Sub in structure S = struct end end")
        assert "Lib" in m.structures

    def test_constructor_patterns(self):
        m = mentions(
            "structure S = struct fun f (Leaf x) = x | f Empty = 0 end")
        assert "Leaf" in m.values
        assert "Empty" in m.values

    def test_exception_alias(self):
        m = mentions(
            "structure S = struct exception E = Errors.Bad end")
        assert "Errors" in m.structures

    def test_where_type(self):
        m = mentions("structure S : SIG where type t = int = Impl")
        assert "SIG" in m.signatures
        assert "Impl" in m.structures

    def test_datatype_replication(self):
        m = mentions(
            "structure S = struct datatype t = datatype Other.u end")
        assert "Other" in m.structures


class TestModuleLevel:
    def test_self_definitions_subtracted(self):
        src = ("structure A = struct val v = 1 end "
               "structure B = struct val w = A.v end")
        m = module_level_mentions(parse_program(src))
        assert "A" not in m.structures

    def test_external_kept(self):
        src = "structure B = struct val w = External.v end"
        m = module_level_mentions(parse_program(src))
        assert m.structures == {"External"}

    def test_no_value_tracking_at_module_level(self):
        src = "structure B = struct val w = someval end"
        m = module_level_mentions(parse_program(src))
        assert m.values == set()


class TestDefinedNames:
    def test_all_namespaces(self):
        src = ("structure S = struct end "
               "signature G = sig end "
               "functor F(X : sig end) = struct end")
        d = defined_module_names(parse_program(src))
        assert d["structures"] == {"S"}
        assert d["signatures"] == {"G"}
        assert d["functors"] == {"F"}

    def test_local_public_part_counts(self):
        src = ("local structure H = struct end in "
               "structure P = struct end end")
        d = defined_module_names(parse_program(src))
        assert "P" in d["structures"]

    def test_and_bindings(self):
        src = "structure A = struct end and B = struct end"
        d = defined_module_names(parse_program(src))
        assert d["structures"] == {"A", "B"}
