"""Unit tests for the SML parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression, parse_program


def parse1(text):
    decs = parse_program(text)
    assert len(decs) == 1
    return decs[0]


class TestExpressions:
    def test_int(self):
        assert parse_expression("42") == ast.IntExp(42, 1)

    def test_application_left_assoc(self):
        e = parse_expression("f x y")
        assert isinstance(e, ast.AppExp)
        assert isinstance(e.fn, ast.AppExp)

    def test_infix_precedence(self):
        e = parse_expression("1 + 2 * 3")
        # Must be 1 + (2 * 3).
        assert isinstance(e, ast.AppExp)
        assert e.fn.path == ("+",)
        rhs = e.arg.parts[1]
        assert rhs.fn.path == ("*",)

    def test_infix_left_assoc(self):
        e = parse_expression("1 - 2 - 3")
        # (1 - 2) - 3
        lhs = e.arg.parts[0]
        assert isinstance(lhs, ast.AppExp)
        assert lhs.fn.path == ("-",)

    def test_cons_right_assoc(self):
        e = parse_expression("1 :: 2 :: nil")
        rhs = e.arg.parts[1]
        assert isinstance(rhs, ast.AppExp)
        assert rhs.fn.path == ("::",)

    def test_equality_operator(self):
        e = parse_expression("x = y")
        assert e.fn.path == ("=",)

    def test_comparison_below_arith(self):
        e = parse_expression("a + 1 < b * 2")
        assert e.fn.path == ("<",)

    def test_tuple(self):
        e = parse_expression("(1, 2, 3)")
        assert isinstance(e, ast.TupleExp)
        assert len(e.parts) == 3

    def test_unit(self):
        e = parse_expression("()")
        assert isinstance(e, ast.TupleExp)
        assert e.parts == []

    def test_sequence(self):
        e = parse_expression("(a; b; c)")
        assert isinstance(e, ast.SeqExp)
        assert len(e.parts) == 3

    def test_record(self):
        e = parse_expression("{x = 1, y = 2}")
        assert isinstance(e, ast.RecordExp)
        assert [f[0] for f in e.fields] == ["x", "y"]

    def test_selector(self):
        e = parse_expression("#name r")
        assert isinstance(e, ast.AppExp)
        assert isinstance(e.fn, ast.SelectorExp)
        assert e.fn.label == "name"

    def test_list(self):
        e = parse_expression("[1, 2]")
        assert isinstance(e, ast.ListExp)

    def test_if(self):
        e = parse_expression("if a then b else c")
        assert isinstance(e, ast.IfExp)

    def test_fn(self):
        e = parse_expression("fn x => x")
        assert isinstance(e, ast.FnExp)
        assert len(e.rules) == 1

    def test_fn_multiple_rules(self):
        e = parse_expression("fn 0 => 1 | n => n")
        assert len(e.rules) == 2

    def test_case(self):
        e = parse_expression("case xs of nil => 0 | x :: _ => x")
        assert isinstance(e, ast.CaseExp)
        assert len(e.rules) == 2
        pat = e.rules[1][0]
        assert isinstance(pat, ast.ConPat)
        assert pat.path == ("::",)

    def test_let(self):
        e = parse_expression("let val x = 1 in x + 1 end")
        assert isinstance(e, ast.LetExp)
        assert len(e.decs) == 1

    def test_let_with_seq_body(self):
        e = parse_expression("let val x = 1 in f x; g x end")
        assert isinstance(e.body, ast.SeqExp)

    def test_andalso_orelse(self):
        e = parse_expression("a andalso b orelse c")
        assert isinstance(e, ast.OrelseExp)
        assert isinstance(e.left, ast.AndalsoExp)

    def test_handle(self):
        e = parse_expression("f x handle Overflow => 0")
        assert isinstance(e, ast.HandleExp)

    def test_raise(self):
        e = parse_expression("raise Fail \"no\"")
        assert isinstance(e, ast.RaiseExp)

    def test_typed(self):
        e = parse_expression("x : int")
        assert isinstance(e, ast.TypedExp)

    def test_qualified_name(self):
        e = parse_expression("List.map f xs")
        fn = e.fn.fn
        assert fn.path == ("List", "map")

    def test_op_prefix(self):
        e = parse_expression("op + (1, 2)")
        assert isinstance(e, ast.AppExp)
        assert e.fn.path == ("+",)

    def test_while(self):
        e = parse_expression("while !r > 0 do r := !r - 1")
        assert isinstance(e, ast.WhileExp)

    def test_assignment(self):
        e = parse_expression("r := 1 + 2")
        assert e.fn.path == (":=",)

    def test_string_concat(self):
        e = parse_expression('"a" ^ "b"')
        assert e.fn.path == ("^",)

    def test_parse_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("val")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 2 end")


class TestPatterns:
    def test_fun_with_constructor_pattern(self):
        d = parse1("fun len nil = 0 | len (_ :: t) = 1 + len t")
        clauses = d.functions[0]
        assert len(clauses) == 2
        assert isinstance(clauses[1].pats[0], ast.ConPat)

    def test_as_pattern(self):
        d = parse1("val all as (x, y) = p")
        pat = d.bindings[0][0]
        assert isinstance(pat, ast.AsPat)
        assert pat.name == "all"

    def test_record_pattern_flexible(self):
        d = parse1("val {x, ...} = r")
        pat = d.bindings[0][0]
        assert isinstance(pat, ast.RecordPat)
        assert pat.flexible

    def test_list_pattern(self):
        d = parse1("val [a, b] = xs")
        assert isinstance(d.bindings[0][0], ast.ListPat)

    def test_typed_pattern(self):
        d = parse1("val x : int = 5")
        assert isinstance(d.bindings[0][0], ast.TypedPat)

    def test_wildcard(self):
        d = parse1("val _ = print")
        assert isinstance(d.bindings[0][0], ast.WildPat)

    def test_constant_pattern(self):
        d = parse1('fun f "yes" = 1 | f _ = 0')
        assert isinstance(d.functions[0][0].pats[0], ast.ConstPat)


class TestDeclarations:
    def test_val(self):
        d = parse1("val x = 5")
        assert isinstance(d, ast.ValDec)

    def test_val_and(self):
        d = parse1("val x = 1 and y = 2")
        assert len(d.bindings) == 2

    def test_val_rec(self):
        d = parse1("val rec f = fn x => f x")
        assert isinstance(d, ast.ValRecDec)

    def test_val_rec_requires_fn(self):
        with pytest.raises(ParseError):
            parse_program("val rec f = 3")

    def test_fun_clauses(self):
        d = parse1("fun fact 0 = 1 | fact n = n * fact (n - 1)")
        assert isinstance(d, ast.FunDec)
        assert len(d.functions[0]) == 2

    def test_fun_curried(self):
        d = parse1("fun add x y = x + y")
        assert len(d.functions[0][0].pats) == 2

    def test_fun_and(self):
        d = parse1("fun even 0 = true | even n = odd (n - 1) "
                   "and odd 0 = false | odd n = even (n - 1)")
        assert len(d.functions) == 2

    def test_fun_infix_definition(self):
        decs = parse_program("infix 6 +++ fun x +++ y = x + y")
        assert isinstance(decs[0], ast.FixityDec)
        fun = decs[1]
        assert fun.functions[0][0].name == "+++"

    def test_fun_result_type(self):
        d = parse1("fun f x : int = x")
        assert d.functions[0][0].result_ty is not None

    def test_type_abbreviation(self):
        d = parse1("type point = int * int")
        assert isinstance(d, ast.TypeDec)

    def test_type_with_params(self):
        d = parse1("type ('a, 'b) pair = 'a * 'b")
        assert d.bindings[0][0] == ["'a", "'b"]

    def test_datatype(self):
        d = parse1("datatype color = Red | Green | Blue")
        assert isinstance(d, ast.DatatypeDec)
        assert len(d.bindings[0][2]) == 3

    def test_datatype_with_args(self):
        d = parse1("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree")
        cons = d.bindings[0][2]
        assert cons[0].arg_ty is None
        assert cons[1].arg_ty is not None

    def test_datatype_withtype(self):
        d = parse1("datatype t = T of s withtype s = int")
        assert len(d.withtypes) == 1

    def test_datatype_replication(self):
        d = parse1("datatype t = datatype A.u")
        assert isinstance(d, ast.DatatypeReplDec)

    def test_exception(self):
        d = parse1("exception BadInput of string")
        assert isinstance(d, ast.ExceptionDec)

    def test_exception_alias(self):
        d = parse1("exception E = A.Error")
        assert d.bindings[0][2] == ("A", "Error")

    def test_local(self):
        d = parse1("local val x = 1 in val y = x end")
        assert isinstance(d, ast.LocalDec)

    def test_open(self):
        d = parse1("open A B.C")
        assert d.paths == [("A",), ("B", "C")]

    def test_semicolons_are_optional(self):
        decs = parse_program("val x = 1; val y = 2;; val z = 3")
        assert len(decs) == 3


class TestTypes:
    def test_arrow_right_assoc(self):
        d = parse1("val f : int -> int -> int = g")
        ty = d.bindings[0][0].ty
        assert isinstance(ty, ast.ArrowTy)
        assert isinstance(ty.rng, ast.ArrowTy)

    def test_tuple_type(self):
        d = parse1("val p : int * string = q")
        ty = d.bindings[0][0].ty
        assert isinstance(ty, ast.TupleTy)

    def test_postfix_constructor(self):
        d = parse1("val xs : int list list = ys")
        ty = d.bindings[0][0].ty
        assert ty.path == ("list",)
        assert ty.args[0].path == ("list",)

    def test_multi_arg_constructor(self):
        d = parse1("val m : (string, int) map = n")
        ty = d.bindings[0][0].ty
        assert ty.path == ("map",)
        assert len(ty.args) == 2

    def test_record_type(self):
        d = parse1("val r : {name: string, age: int} = s")
        ty = d.bindings[0][0].ty
        assert isinstance(ty, ast.RecordTy)

    def test_qualified_tycon(self):
        d = parse1("val s : StringMap.t = m")
        assert d.bindings[0][0].ty.path == ("StringMap", "t")


class TestModules:
    def test_structure(self):
        d = parse1("structure S = struct val x = 1 end")
        assert isinstance(d, ast.StructureDec)
        assert isinstance(d.bindings[0].body, ast.StructStrExp)

    def test_structure_path(self):
        d = parse1("structure T = A.B")
        assert isinstance(d.bindings[0].body, ast.VarStrExp)

    def test_structure_transparent_constraint(self):
        d = parse1("structure S : SIG = Impl")
        b = d.bindings[0]
        assert b.sig is not None
        assert not b.opaque

    def test_structure_opaque_constraint(self):
        d = parse1("structure S :> SIG = Impl")
        assert d.bindings[0].opaque

    def test_functor_application(self):
        d = parse1("structure FSort = TopSort(Factors)")
        body = d.bindings[0].body
        assert isinstance(body, ast.AppStrExp)
        assert body.functor_path == ("TopSort",)

    def test_qualified_functor_application(self):
        d = parse1("structure S = Lib.Make(Arg)")
        body = d.bindings[0].body
        assert body.functor_path == ("Lib", "Make")

    def test_functor_application_derived_form(self):
        d = parse1("structure S = F(val x = 3)")
        body = d.bindings[0].body
        assert isinstance(body.arg, ast.StructStrExp)

    def test_signature(self):
        d = parse1("signature ORDER = sig type t val less : t * t -> bool end")
        assert isinstance(d, ast.SignatureDec)
        sig = d.bindings[0][1]
        assert isinstance(sig, ast.SigSigExp)
        assert len(sig.specs) == 2

    def test_functor(self):
        d = parse1(
            "functor TopSort(P : ORDER) : SORT = struct type t = int end"
        )
        assert isinstance(d, ast.FunctorDec)
        b = d.bindings[0]
        assert b.param_name == "P"
        assert b.result_sig is not None

    def test_where_type(self):
        d = parse1("structure S : SIG where type t = int = Impl")
        assert isinstance(d.bindings[0].sig, ast.WhereTypeSigExp)

    def test_datatype_spec(self):
        d = parse1("signature S = sig datatype t = A | B end")
        spec = d.bindings[0][1].specs[0]
        assert isinstance(spec, ast.DatatypeSpec)

    def test_sharing_spec(self):
        d = parse1(
            "signature S = sig structure A : T structure B : T "
            "sharing type A.t = B.t end"
        )
        spec = d.bindings[0][1].specs[-1]
        assert isinstance(spec, ast.SharingSpec)

    def test_include_spec(self):
        d = parse1("signature S = sig include BASE val extra : int end")
        assert isinstance(d.bindings[0][1].specs[0], ast.IncludeSpec)

    def test_eqtype_spec(self):
        d = parse1("signature S = sig eqtype t end")
        assert d.bindings[0][1].specs[0].equality

    def test_type_spec_with_definition(self):
        d = parse1("signature S = sig type t = int end")
        spec = d.bindings[0][1].specs[0]
        assert spec.bindings[0][2] is not None

    def test_nested_structure(self):
        d = parse1(
            "structure A = struct structure B = struct val x = 1 end end"
        )
        inner = d.bindings[0].body.decs[0]
        assert isinstance(inner, ast.StructureDec)


class TestFigure1:
    """The paper's Figure 1 must parse."""

    SOURCE = """
    signature PARTIAL_ORDER = sig
      type elem
      val less : elem * elem -> bool
    end
    signature SORT = sig
      type t
      val sort : t list -> t list
    end
    functor TopSort(P : PARTIAL_ORDER) : SORT = struct
      type t = P.elem
      fun sort l = l
    end
    structure Factors : PARTIAL_ORDER = struct
      type elem = int
      fun less (i, j) = (j mod i = 0)
    end
    structure FSort : SORT = TopSort(Factors)
    """

    def test_parses(self):
        decs = parse_program(self.SOURCE)
        assert len(decs) == 5
        assert isinstance(decs[2], ast.FunctorDec)
        assert isinstance(decs[4], ast.StructureDec)
