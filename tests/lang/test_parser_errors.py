"""Negative parser battery: malformed programs must fail cleanly (with a
ParseError carrying a position), never crash or mis-parse."""

import pytest

from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression, parse_program

BAD_PROGRAMS = [
    "val",                                  # binding missing
    "val x",                                # no '='
    "val x =",                              # no RHS
    "val = 3",                              # no pattern
    "fun",                                  # nothing
    "fun f",                                # no args
    "fun f = 3",                            # zero-arg fun
    "fun f x",                              # no body
    "fun f x = 1 | g y = 2",                # clause name mismatch
    "structure",                            # nothing
    "structure S",                          # no '='
    "structure S = ",                       # no strexp
    "structure S = struct",                 # unterminated
    "signature S = sig val x : end",        # missing type
    "functor F = struct end",               # no parameter
    "functor F(X) = struct end",            # parameter without signature
    "datatype t",                           # no '='
    "datatype t = ",                        # no constructors
    "datatype = A",                         # no name
    "type t",                               # no definition
    "exception",                            # no name
    "local val x = 1 in",                   # unterminated
    "open",                                 # no path
    "infix",                                # no operators
    "val x = (1, 2",                        # unclosed paren
    "val x = [1, 2",                        # unclosed bracket
    "val x = {a = 1",                       # unclosed brace
    "val x = let val y = 1 in y",           # missing end
    "val x = case 1 of",                    # no rules
    "val x = if 1 then 2",                  # missing else
    "val x = fn",                           # no match
    "val x = 1 + ",                         # dangling operator
    "val {1x = 2} = r",                     # bad label
    "val x : = 1",                          # missing type after colon
    "end",                                  # stray terminator
    "val x = raise",                        # raise without exn
]


@pytest.mark.parametrize("source", BAD_PROGRAMS)
def test_bad_program_raises_parse_error(source):
    with pytest.raises(ParseError) as err:
        parse_program(source)
    assert err.value.line >= 1


BAD_EXPRESSIONS = [
    "",
    "(",
    ")",
    "1 2 3 )",
    "case of x => 1",
    "#",                                   # selector without label
    "op",                                  # op without ident
]


@pytest.mark.parametrize("source", BAD_EXPRESSIONS)
def test_bad_expression_raises(source):
    with pytest.raises(ParseError):
        parse_expression(source)


class TestPositions:
    def test_error_position_points_at_problem(self):
        with pytest.raises(ParseError) as err:
            parse_program("val x = 1\nval = 2")
        assert err.value.line == 2

    def test_multiline_struct_error(self):
        src = "structure S = struct\n  val a = 1\n  val = 2\nend"
        with pytest.raises(ParseError) as err:
            parse_program(src)
        assert err.value.line == 3


class TestNearMisses:
    """Things that LOOK like errors but are legal SML."""

    def test_semicolon_spam(self):
        assert parse_program(";;;val x = 1;;;") is not None

    def test_nested_comments_with_code_chars(self):
        parse_program('val x = 1 (* val y = " *) val z = 2')

    def test_operator_named_function(self):
        parse_program("fun f x = x val g = f")

    def test_equals_in_expression(self):
        parse_program("val b = 1 = 2")

    def test_star_as_identifier(self):
        parse_program("val prod = op* (3, 4)")

    def test_keyword_prefix_identifiers(self):
        # 'valx', 'fund', 'ende' are plain identifiers.
        parse_program("val valx = 1 val fund = 2 val ende = 3")
