"""Unit tests for the SML lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestIntegers:
    def test_decimal(self):
        assert values("42") == [42]

    def test_negative_tilde(self):
        assert values("~7") == [-7]

    def test_hex(self):
        assert values("0x1F") == [31]

    def test_negative_hex(self):
        assert values("~0x10") == [-16]

    def test_word_literal(self):
        toks = tokenize("0w255")
        assert toks[0].kind is TokKind.WORD
        assert toks[0].value == 255

    def test_hex_word(self):
        toks = tokenize("0wxff")
        assert toks[0].value == 255

    def test_zero(self):
        assert values("0") == [0]


class TestReals:
    def test_simple(self):
        assert values("3.14") == [pytest.approx(3.14)]

    def test_exponent(self):
        assert values("1e10") == [pytest.approx(1e10)]

    def test_negative_exponent(self):
        assert values("2.5e~3") == [pytest.approx(2.5e-3)]

    def test_negative_real(self):
        assert values("~2.5") == [pytest.approx(-2.5)]

    def test_int_dot_requires_digits(self):
        # "3." is an int followed by a dot, not a real.
        assert kinds("3.") == [TokKind.INT, TokKind.DOT]


class TestStrings:
    def test_plain(self):
        assert values('"hello"') == ["hello"]

    def test_escapes(self):
        assert values(r'"a\nb\tc"') == ["a\nb\tc"]

    def test_decimal_escape(self):
        assert values(r'"\065"') == ["A"]

    def test_gap_escape(self):
        assert values('"ab\\\n   \\cd"') == ["abcd"]

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_char(self):
        toks = tokenize('#"x"')
        assert toks[0].kind is TokKind.CHAR
        assert toks[0].value == "x"

    def test_char_must_be_single(self):
        with pytest.raises(LexError):
            tokenize('#"xy"')


class TestIdentifiers:
    def test_alpha(self):
        assert kinds("foo bar'  baz_2") == [TokKind.ID] * 3

    def test_keywords(self):
        toks = tokenize("val fun end")
        assert all(t.kind is TokKind.KEYWORD for t in toks[:-1])

    def test_symbolic(self):
        assert kinds("+ <= >=") == [TokKind.SYMID] * 3

    def test_reserved_symbolic(self):
        for sym in ["=", "=>", "->", "|", ":", ":>", "#", "*"]:
            toks = tokenize(sym)
            assert toks[0].kind is TokKind.KEYWORD, sym

    def test_tyvars(self):
        toks = tokenize("'a ''eq 'b1")
        assert [t.kind for t in toks[:-1]] == [TokKind.TYVAR] * 3
        assert toks[1].text == "''eq"

    def test_long_symbolic_splits_on_reserved(self):
        # ":=" is an ordinary symbolic identifier.
        assert kinds(":=") == [TokKind.SYMID]

    def test_dots(self):
        assert kinds("A.b") == [TokKind.ID, TokKind.DOT, TokKind.ID]
        assert kinds("...") == [TokKind.DOTDOTDOT]


class TestComments:
    def test_simple(self):
        assert texts("a (* comment *) b") == ["a", "b"]

    def test_nested(self):
        assert texts("a (* x (* y *) z *) b") == ["a", "b"]

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize("a (* oops")

    def test_multiline(self):
        toks = tokenize("a (* one\ntwo *)\nb")
        assert toks[1].line == 3


class TestPositions:
    def test_line_col(self):
        toks = tokenize("val x =\n  5")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[3].line, toks[3].col) == (2, 3)

    def test_eof_token(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF
