"""User fixity declarations: precedence, associativity, scoping."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program


def exp_of(src):
    decs = parse_program(src)
    return decs[-1].bindings[0][1]


class TestUserInfix:
    def test_custom_operator(self):
        e = exp_of("infix 6 <+> val x = a <+> b")
        assert isinstance(e, ast.AppExp)
        assert e.fn.path == ("<+>",)

    def test_precedence_respected(self):
        # <+> at 3 binds looser than * at 7.
        e = exp_of("infix 3 <+> val x = a <+> b * c")
        assert e.fn.path == ("<+>",)
        rhs = e.arg.parts[1]
        assert rhs.fn.path == ("*",)

    def test_infixr(self):
        e = exp_of("infixr 5 ^^ val x = a ^^ b ^^ c")
        # Right-assoc: a ^^ (b ^^ c).
        rhs = e.arg.parts[1]
        assert rhs.fn.path == ("^^",)

    def test_default_precedence_zero(self):
        e = exp_of("infix <&> val x = a <&> b + c")
        assert e.fn.path == ("<&>",)

    def test_nonfix_removes(self):
        # After nonfix, + is an ordinary identifier: `+ (1, 2)` applies it.
        decs = parse_program("nonfix + val x = + (1, 2)")
        e = decs[-1].bindings[0][1]
        assert isinstance(e, ast.AppExp)
        assert e.fn.path == ("+",)

    def test_alpha_operator(self):
        e = exp_of("infix 4 divides val x = a divides b")
        assert e.fn.path == ("divides",)

    def test_infix_in_pattern(self):
        decs = parse_program(
            "infix 5 +++ fun f (a +++ b) = a val r = 1")
        clause = decs[1].functions[0][0]
        assert isinstance(clause.pats[0], ast.ConPat)
        assert clause.pats[0].path == ("+++",)


class TestScoping:
    def test_let_scope_restores(self):
        src = ("val a = let infix 9 <*> val t = x <*> y in t end "
               "val b = <*>")
        # After the let, <*> has no fixity; used bare it's an identifier
        # ... which parses as a variable reference.
        decs = parse_program(src)
        assert isinstance(decs[1].bindings[0][1], ast.VarExp)

    def test_struct_scope_restores(self):
        src = ("structure S = struct infix 9 ?? val v = a ?? b end "
               "val c = ??")
        decs = parse_program(src)
        assert isinstance(decs[1].bindings[0][1], ast.VarExp)

    def test_end_to_end_custom_operator(self, value_of):
        src = ("infix 6 <+> "
               "fun (a <+> b) = a * 10 + b "
               "val x = 1 <+> 2 <+> 3")
        assert value_of(src, "x") == 123

    def test_infixr_semantics(self, value_of):
        src = ("infixr 5 ^^^ "
               "fun (a ^^^ b) = a - b "
               "val x = 10 ^^^ 4 ^^^ 1")   # 10 - (4 - 1)
        assert value_of(src, "x") == 7

    def test_mixed_precedence_evaluation(self, value_of):
        src = ("infix 2 imp "
               "fun (a imp b) = not a orelse b "
               "val x = true imp false")
        assert value_of(src, "x") is False
