"""The synthetic-workload generator."""

import pytest

from repro.cm import CutoffBuilder, analyze
from repro.units.pipeline import source_digest
from repro.workload import (
    chain,
    diamond,
    generate_workload,
    layered,
    random_dag,
    tree,
)


class TestShapes:
    def test_chain(self):
        assert chain(4) == [[], [0], [1], [2]]

    def test_tree_counts(self):
        deps = tree(3, fanout=2)
        assert len(deps) == 1 + 2 + 4
        assert deps[0] == []
        assert deps[1] == [0] and deps[2] == [0]

    def test_diamond(self):
        deps = diamond(width=2, depth=2)
        # 1 base + 2 layers of 2 + 1 top.
        assert len(deps) == 6
        assert deps[-1] == [3, 4]

    def test_layered_topological(self):
        deps = layered([2, 3, 2], fan_in=2, seed=7)
        for k, ds in enumerate(deps):
            assert all(d < k for d in ds)

    def test_random_dag_topological_and_deterministic(self):
        a = random_dag(20, 3, seed=5)
        b = random_dag(20, 3, seed=5)
        assert a == b
        for k, ds in enumerate(a):
            assert all(d < k for d in ds)

    def test_random_dag_seeds_differ(self):
        assert random_dag(20, 3, seed=1) != random_dag(20, 3, seed=2)


class TestGeneratedUnits:
    def test_units_compile_and_run(self):
        w = generate_workload(chain(5), helpers_per_unit=2)
        builder = CutoffBuilder(w.project)
        report = builder.build()
        assert len(report.compiled) == 5
        exports = builder.link()
        # Semantic check: depsum chains add up.
        m4 = exports["u004"].structures["M004"]
        from repro.dynamic.evaluate import apply_value

        made = apply_value(m4.values["make"], 1)
        # Chain semantics: u0.make(1) holds 2, and each link adds 1.
        assert apply_value(m4.values["value"], made) == 6

    def test_dependency_graph_matches_shape(self):
        deps = diamond(2, 2)
        w = generate_workload(deps)
        graph = analyze(w.project)
        for k, ds in enumerate(deps):
            expect = sorted(f"u{d:03d}" for d in ds)
            assert graph.deps[f"u{k:03d}"] == expect

    def test_helpers_control_size(self):
        small = generate_workload(chain(3), helpers_per_unit=1)
        large = generate_workload(chain(3), helpers_per_unit=20)
        assert large.total_lines() > 2 * small.total_lines()


class TestEdits:
    def test_comment_edit_changes_text_only(self):
        w = generate_workload(chain(2))
        before = w.project.source("u001")
        w.edit_comment("u001")
        after = w.project.source("u001")
        assert before != after
        assert "revision comment" in after

    def test_comment_edit_preserves_digest_inequality(self):
        w = generate_workload(chain(2))
        before = source_digest(w.project.source("u001"))
        w.edit_comment("u001")
        assert source_digest(w.project.source("u001")) != before

    def test_impl_edit_classification(self, basis):
        # Verified against the real pid machinery: impl edit keeps pid.
        from repro.units import Session, compile_unit

        w = generate_workload(chain(1))
        session = Session(basis)
        pid1 = compile_unit("u000", w.project.source("u000"), [],
                            session).export_pid
        w.edit_implementation("u000")
        pid2 = compile_unit("u000", w.project.source("u000"), [],
                            session).export_pid
        assert pid1 == pid2

    def test_iface_edit_classification(self, basis):
        from repro.units import Session, compile_unit

        w = generate_workload(chain(1))
        session = Session(basis)
        pid1 = compile_unit("u000", w.project.source("u000"), [],
                            session).export_pid
        w.edit_interface("u000")
        pid2 = compile_unit("u000", w.project.source("u000"), [],
                            session).export_pid
        assert pid1 != pid2

    def test_leak_types_interface_references_dep(self):
        w = generate_workload(chain(2), leak_types=True)
        assert "M000.t" in w.project.source("u001")

    def test_edits_are_cumulative(self):
        w = generate_workload(chain(1))
        w.edit_interface("u000")
        w.edit_interface("u000")
        src = w.project.source("u000")
        assert "extra_0" in src and "extra_1" in src
