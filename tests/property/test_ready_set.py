"""Property tests for ready-set dispatch.

Three claims, over arbitrary DAGs:

1. The :class:`ReadySet` state machine itself is sound: every unit is
   offered exactly once, never before all its in-graph imports
   completed, and imports outside the graph never gate.
2. A ready-set build's recorded ``dispatch_order`` is a linear
   extension of the dependency graph -- no unit is decided before its
   imports -- and covers every unit exactly once.
3. On random DAGs, a ready-set build produces the same final store
   bytes and export pids as wavefront scheduling (and hence, by PR 3's
   matrix, as a serial build).
"""

import os
import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.cm import (
    BinStore,
    CutoffBuilder,
    DepGraph,
    ReadySet,
    parallel_build,
)
from repro.cm.depend import _topo_order
from repro.workload import generate_workload, random_dag


def graph_from_deps(deps_by_index):
    """A synthetic DepGraph from shape-style deps (no sources needed)."""
    names = [f"u{k:03d}" for k in range(len(deps_by_index))]
    deps = {names[k]: sorted(names[d] for d in deps_by_index[k])
            for k in range(len(names))}
    dependents = {n: [] for n in names}
    for name, imported in deps.items():
        for dep in imported:
            dependents[dep].append(name)
    return DepGraph(deps=deps,
                    dependents={n: sorted(d)
                                for n, d in dependents.items()},
                    order=_topo_order(names, deps))


dags = st.builds(
    random_dag,
    n=st.integers(min_value=1, max_value=24),
    max_deps=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)


@given(dags)
@settings(max_examples=120, deadline=None)
def test_ready_set_offers_each_unit_once_after_its_imports(
        deps_by_index):
    graph = graph_from_deps(deps_by_index)
    ready = ReadySet(graph)
    completed: set = set()
    offered: list = []
    while not ready.all_done():
        batch = ready.take()
        assert batch == sorted(batch)
        assert batch, "ready set stalled with units outstanding"
        for name in batch:
            # Never offered before every in-graph import completed.
            for dep in graph.deps[name]:
                assert dep in completed
        offered.extend(batch)
        for name in batch:
            ready.complete(name)
            completed.add(name)
    # Exactly once each, nothing left behind.
    assert sorted(offered) == sorted(graph.order)
    assert len(offered) == len(set(offered))
    assert ready.outstanding() == 0


@given(dags)
@settings(max_examples=60, deadline=None)
def test_ready_set_skips_imports_outside_the_graph(deps_by_index):
    """Stable-library imports (not in the graph) must not gate: drop
    the first unit and every survivor still gets offered."""
    graph = graph_from_deps(deps_by_index)
    if len(graph.order) < 2:
        return
    dropped = graph.order[0]
    kept = [n for n in graph.order if n != dropped]
    trimmed = DepGraph(
        deps={n: graph.deps[n] for n in kept},  # still names `dropped`
        dependents={n: [d for d in graph.dependents[n] if d != dropped]
                    for n in kept},
        order=kept)
    ready = ReadySet(trimmed)
    offered = []
    while not ready.all_done():
        batch = ready.take()
        assert batch
        offered.extend(batch)
        for name in batch:
            ready.complete(name)
    assert sorted(offered) == sorted(kept)


@given(dags)
@settings(max_examples=60, deadline=None)
def test_completing_a_unit_releases_exactly_its_last_gated_dependents(
        deps_by_index):
    """complete() returns precisely the dependents this completion was
    the final gate for -- the invariant the dispatch loops rely on to
    never poll."""
    graph = graph_from_deps(deps_by_index)
    ready = ReadySet(graph)
    completed: set = set()
    ready.take()
    for name in graph.order:  # topological, so always completable
        released = ready.complete(name)
        completed.add(name)
        for dependent in released:
            assert all(dep in completed
                       for dep in graph.deps[dependent])
            assert name in graph.deps[dependent]
        # Idempotent: completing again releases nothing twice.
        assert ready.complete(name) == []


@given(dags)
@settings(max_examples=10, deadline=None)
def test_ready_build_dispatch_order_is_a_linear_extension(
        deps_by_index):
    workload = generate_workload(deps_by_index, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    report = parallel_build(builder, jobs=4, pool="inline",
                            schedule="ready")
    graph = builder.last_graph
    order = report.dispatch_order
    assert sorted(order) == sorted(graph.order)
    position = {name: k for k, name in enumerate(order)}
    for name in graph.order:
        for dep in graph.deps[name]:
            assert position[dep] < position[name], (
                f"{name} dispatched before its import {dep}")


@given(dags)
@settings(max_examples=8, deadline=None)
def test_ready_build_matches_wavefront_store_bytes(deps_by_index):
    def flow(schedule, store_dir):
        workload = generate_workload(deps_by_index, helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        parallel_build(builder, jobs=4, pool="thread",
                       schedule=schedule)
        builder.store.save_directory(store_dir)
        # Incremental pass too: edit the root, rebuild warm-store.
        workload.edit_interface("u000")
        builder = CutoffBuilder(workload.project,
                                store=BinStore.load_directory(store_dir))
        parallel_build(builder, jobs=4, pool="thread",
                       schedule=schedule)
        builder.store.save_directory(store_dir)
        pids = {n: u.export_pid for n, u in builder.units.items()}
        files = {}
        for entry in sorted(os.listdir(store_dir)):
            if entry.endswith(".rlock") or entry == "store.lock":
                continue
            with open(os.path.join(store_dir, entry), "rb") as fh:
                files[entry] = fh.read()
        return pids, files

    base = tempfile.mkdtemp(prefix="readyprop-")
    try:
        wave = flow("wavefront", os.path.join(base, "wave"))
        ready = flow("ready", os.path.join(base, "ready"))
        assert ready == wave
    finally:
        shutil.rmtree(base, ignore_errors=True)
