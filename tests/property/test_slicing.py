"""Properties of interface slicing (per-binding pids + sliced cutoff).

Three families:

- **Alpha-conversion locality**: each binding pid is computed by its own
  pickler run, so a binding's pid depends only on its own slice --
  permuting the declaration order of independent top-level bindings
  changes no binding pid (and hence no interface digest).
- **Digest algebra**: :func:`repro.pids.intrinsic.interface_digest` is a
  pure fold over sorted (key, pid) pairs -- deterministic, insertion-
  order-free, and sensitive to every entry.
- **Soundness**: over arbitrary DAGs and arbitrary single-unit edits,
  the sliced smart builder recompiles a *subset* of what whole-pid
  cutoff recompiles, and both converge to identical export pids --
  slicing can only skip work cutoff would have wasted, never work that
  mattered.
"""

from hypothesis import given, settings, strategies as st

from repro.cm import CutoffBuilder, Project, SmartBuilder
from repro.pids.intrinsic import interface_digest
from repro.workload import generate_workload, random_dag, sliced_workload

# -- alpha-conversion locality -------------------------------------------


def render_bindings(order) -> str:
    """Independent top-level structures, declared in ``order``."""
    decs = []
    for i in order:
        decs.append(
            f"structure B{i} = struct\n"
            f"  datatype t = T of int\n"
            f"  fun make x = T (x + {i})\n"
            f"  val tag = {i}\n"
            f"end")
    return "\n".join(decs) + "\n"


def compiled_record(source: str):
    builder = SmartBuilder(Project.from_sources({"u": source}))
    builder.build()
    return builder.store.get("u")


@st.composite
def orderings(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    perm = draw(st.permutations(list(range(n))))
    return n, list(perm)


@given(orderings())
@settings(max_examples=15, deadline=None)
def test_binding_pids_ignore_declaration_order(case):
    n, perm = case
    base = compiled_record(render_bindings(range(n)))
    permuted = compiled_record(render_bindings(perm))
    assert base.binding_pids == permuted.binding_pids
    assert (interface_digest(base.binding_pids)
            == interface_digest(permuted.binding_pids))


@given(st.integers(min_value=0, max_value=3))
@settings(max_examples=8, deadline=None)
def test_binding_pids_are_slice_local(victim):
    """Editing one binding's interface moves exactly that pid."""
    base = compiled_record(render_bindings(range(4)))
    edited_src = render_bindings(range(4)).replace(
        f"  val tag = {victim}\n",
        f"  val tag = {victim}\n  val widened = {victim}\n")
    edited = compiled_record(edited_src)
    for key in base.binding_pids:
        same = base.binding_pids[key] == edited.binding_pids[key]
        assert same == (key != f"structures:B{victim}"), key


# -- digest algebra -------------------------------------------------------

keys = st.text(alphabet="abcdefgh:", min_size=1, max_size=10)
pids = st.text(alphabet="0123456789abcdef", min_size=32, max_size=32)
tables = st.dictionaries(keys, pids, max_size=6)


@given(tables)
@settings(max_examples=50, deadline=None)
def test_digest_is_deterministic_and_order_free(table):
    digest = interface_digest(table)
    assert len(digest) == 32
    assert interface_digest(dict(reversed(list(table.items())))) == digest
    assert interface_digest(dict(table)) == digest


@given(tables, keys, pids)
@settings(max_examples=50, deadline=None)
def test_digest_is_sensitive_to_every_entry(table, key, pid):
    changed = dict(table)
    changed[key] = pid
    if changed != table:
        assert interface_digest(changed) != interface_digest(table)
    removed = dict(table)
    if removed:
        removed.popitem()
        assert interface_digest(removed) != interface_digest(table)


# -- soundness ------------------------------------------------------------

EDIT_METHODS = ("edit_comment", "edit_interface", "edit_implementation")

dag_cases = st.builds(
    lambda n, seed, victim, edit: (random_dag(n, max_deps=3, seed=seed),
                                   victim % n, edit),
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2_000),
    victim=st.integers(min_value=0, max_value=7),
    edit=st.sampled_from(EDIT_METHODS),
)


def rebuild_after(builder_class, deps, victim, edit):
    """Build, edit, rebuild; return (recompiled set, final export pids)."""
    workload = generate_workload(deps, helpers_per_unit=1)
    builder = builder_class(workload.project)
    builder.build()
    getattr(workload, edit)(victim)
    report = builder.build()
    return (set(report.compiled),
            {n: u.export_pid for n, u in builder.units.items()})


@given(dag_cases)
@settings(max_examples=20, deadline=None)
def test_sliced_recompiles_a_subset_of_cutoff(case):
    deps, victim_index, edit = case
    victim = f"u{victim_index:03d}"
    smart_set, smart_pids = rebuild_after(SmartBuilder, deps, victim, edit)
    cutoff_set, cutoff_pids = rebuild_after(CutoffBuilder, deps, victim,
                                            edit)
    # Never more work than cutoff; never a divergent result.
    assert smart_set <= cutoff_set
    assert smart_pids == cutoff_pids
    assert victim in smart_set  # the edited unit itself always rebuilds


@given(n_bindings=st.integers(min_value=2, max_value=6),
       victim=st.integers(min_value=0, max_value=5))
@settings(max_examples=15, deadline=None)
def test_hot_interface_edit_recompiles_exactly_the_users(n_bindings,
                                                         victim):
    victim %= n_bindings
    w = sliced_workload(n_bindings, clients_per_binding=1)
    builder = SmartBuilder(w.project)
    builder.build()
    w.edit_binding_interface(victim)
    report = builder.build()
    assert report.compiled == sorted(["iface"] + w.users_of(victim))
    # And the reused clients still link to correct values.
    exports = builder.link()
    for k in range(n_bindings):
        struct = exports[w.client_name(k, 0)].structures[f"U{k:02d}x0"]
        assert struct.values["v"] == k
