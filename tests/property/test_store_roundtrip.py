"""Property tests for the bin store's on-disk form.

Whatever names, payloads and extras a builder produces, a save/load
round trip must reproduce them exactly, stay inside the store directory,
and report a healthy store.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.cm import BinRecord, BinStore
from repro.cm.store import escape_name, unescape_name

# Unit names: printable unicode including path-hostile characters.
names = st.text(
    st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=24)
hostile = st.sampled_from(
    ["../x", "..", ".", "", "a/b", "a\\b", ".hidden", "%2E", "%",
     "store.lock", "MANIFEST.json", "x.bin", "c:\\evil"])
any_name = st.one_of(names, hostile)

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=12))
extras = st.dictionaries(st.text(max_size=8), json_scalars, max_size=4)

records = st.builds(
    BinRecord,
    name=any_name,
    source_digest=st.text("0123456789abcdef", min_size=4, max_size=32),
    export_pid=st.text("0123456789abcdef", min_size=4, max_size=32),
    imports=st.lists(
        st.tuples(st.text(max_size=8), st.text("0123456789abcdef",
                                               min_size=4, max_size=8)),
        max_size=3),
    payload=st.binary(max_size=256),
    built_at=st.integers(min_value=0, max_value=2**31),
    extra=extras,
)


@given(st.lists(records, max_size=6,
                unique_by=lambda r: r.name))
@settings(max_examples=60, deadline=None)
def test_save_load_roundtrip(record_list):
    base = tempfile.mkdtemp(prefix="binstore-prop-")
    try:
        store_dir = os.path.join(base, "store")
        store = BinStore()
        for record in record_list:
            store.put(record)
        stats = store.save_directory(store_dir)
        assert stats.records_written == len(record_list)

        # Nothing escaped the store directory.
        assert set(os.listdir(base)) == {"store"}

        loaded = BinStore.load_directory(store_dir)
        assert loaded.health.ok, loaded.health.render_text()
        assert loaded.names() == store.names()
        for record in record_list:
            got = loaded.get(record.name)
            assert got is not None
            assert got.name == record.name
            assert got.source_digest == record.source_digest
            assert got.export_pid == record.export_pid
            assert got.imports == [tuple(p) for p in record.imports]
            assert got.payload == record.payload
            assert got.built_at == record.built_at
            assert got.extra == record.extra

        # A second, untouched save writes nothing (incremental).
        again = loaded.save_directory(store_dir)
        assert again.records_written == 0
        assert again.bytes_written == 0
    finally:
        shutil.rmtree(base, ignore_errors=True)


@given(any_name)
@settings(max_examples=200, deadline=None)
def test_escape_name_is_safe_and_invertible(name):
    stem = escape_name(name)
    assert stem  # never empty
    assert "/" not in stem and "\\" not in stem
    assert not stem.startswith(".")
    assert os.path.basename(stem) == stem
    assert unescape_name(stem) == name


@given(st.lists(any_name, max_size=20, unique=True))
@settings(max_examples=60, deadline=None)
def test_escape_name_is_injective(name_list):
    stems = [escape_name(n) for n in name_list]
    assert len(set(stems)) == len(stems)
