"""Property-based tests over the core invariants.

- The pickler is a faithful injection: decode(encode(x)) == x for any
  value built from the supported plain types.
- Intrinsic pids are invariant under comment insertion, anywhere.
- Incremental builds are *equivalent* to from-scratch builds: after any
  sequence of edits, the cutoff builder's link result matches a clean
  rebuild, and it never recompiles more than timestamp-make does.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cm import CutoffBuilder, Project, TimestampBuilder
from repro.pickle import dehydrate, rehydrate
from repro.units import Session, compile_unit
from repro.workload import chain, generate_workload

# -- pickler roundtrip -----------------------------------------------------

plain_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 70), max_value=2 ** 70)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestPicklerRoundtrip:
    @given(plain_values)
    @settings(max_examples=150)
    def test_roundtrip_identity(self, value):
        data, _ = dehydrate(value)
        out, _ = rehydrate(data)
        assert out == value

    @given(plain_values)
    @settings(max_examples=60)
    def test_encoding_deterministic(self, value):
        assert dehydrate(value)[0] == dehydrate(value)[0]


# -- pid invariance under comments ------------------------------------------

BASE_LINES = [
    "signature Q = sig type t val get : t -> int end",
    "structure S : Q = struct",
    "  datatype t = T of int",
    "  fun get (T n) = n",
    "end",
    "functor F(X : Q) = struct val probe = X.get end",
]


class TestPidCommentInvariance:
    @given(
        st.lists(
            st.tuples(st.integers(0, len(BASE_LINES)),
                      st.text(
                          alphabet=st.characters(
                              categories=("Lu", "Ll", "Nd"),
                              include_characters=" "),
                          max_size=30)),
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_comments_never_change_pid(self, basis, insertions):
        session = Session(basis)
        reference = compile_unit(
            "m", "\n".join(BASE_LINES), [], session).export_pid
        lines = list(BASE_LINES)
        for position, text in insertions:
            lines.insert(position, f"(* {text} *)")
        pid = compile_unit("m", "\n".join(lines), [], session).export_pid
        assert pid == reference


# -- incremental == from-scratch ------------------------------------------

edit_ops = st.lists(
    st.tuples(st.sampled_from(["comment", "impl", "iface"]),
              st.integers(0, 4)),
    min_size=1, max_size=5,
)


class TestIncrementalEquivalence:
    @given(edit_ops)
    @settings(max_examples=20, deadline=None)
    def test_cutoff_matches_clean_rebuild(self, edits):
        w = generate_workload(chain(5), helpers_per_unit=1)
        incremental = CutoffBuilder(w.project)
        incremental.build()
        for kind, index in edits:
            name = f"u{index:03d}"
            getattr(w, {"comment": "edit_comment", "impl":
                        "edit_implementation",
                        "iface": "edit_interface"}[kind])(name)
        incremental.build()
        inc_exports = incremental.link()

        clean = CutoffBuilder(w.project)
        clean.build()
        clean_exports = clean.link()

        for unit in w.names():
            inc = inc_exports[unit].structures[f"M{unit[1:]}"]
            cln = clean_exports[unit].structures[f"M{unit[1:]}"]
            from repro.dynamic.evaluate import apply_value

            made_inc = apply_value(inc.values["make"], 3)
            made_cln = apply_value(cln.values["make"], 3)
            assert (apply_value(inc.values["value"], made_inc)
                    == apply_value(cln.values["value"], made_cln))

    @given(edit_ops)
    @settings(max_examples=15, deadline=None)
    def test_recompilation_spectrum_ordering(self, edits):
        """smart <= cutoff <= make on every edit sequence."""
        from repro.cm import SmartBuilder

        workloads = {
            name: generate_workload(chain(5), helpers_per_unit=1)
            for name in ("make", "cutoff", "smart")
        }
        builders = {
            "make": TimestampBuilder(workloads["make"].project),
            "cutoff": CutoffBuilder(workloads["cutoff"].project),
            "smart": SmartBuilder(workloads["smart"].project),
        }
        for builder in builders.values():
            builder.build()
        for kind, index in edits:
            name = f"u{index:03d}"
            op = {"comment": "edit_comment", "impl": "edit_implementation",
                  "iface": "edit_interface"}[kind]
            for w in workloads.values():
                getattr(w, op)(name)
        counts = {
            name: set(builder.build().compiled)
            for name, builder in builders.items()
        }
        assert counts["cutoff"] <= counts["make"]
        assert len(counts["smart"]) <= len(counts["cutoff"])


# -- front-end totality -------------------------------------------------


class TestFrontEndTotality:
    """The lexer/parser never crash: any input either parses or raises a
    positioned SourceError."""

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_lexer_total(self, text):
        from repro.lang.errors import LexError
        from repro.lang.lexer import tokenize

        try:
            toks = tokenize(text)
            assert toks[-1].kind.name == "EOF"
        except LexError as err:
            assert err.line >= 1

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_parser_total(self, text):
        from repro.lang.errors import SourceError
        from repro.lang.parser import parse_program

        try:
            decs = parse_program(text)
            assert isinstance(decs, list)
        except SourceError as err:
            assert err.line >= 1
        except RecursionError:
            pass  # pathological nesting depth: acceptable rejection
