"""Property tests for the store-backend protocol.

Three laws every backend must obey, whatever records a builder throws
at it:

- **identity**: a save/load round trip through any backend -- flat,
  sharded, or remote-with-cache -- reproduces every record field
  byte-for-byte;
- **placement-transparency**: the flat and sharded layouts of the same
  records carry byte-identical manifests and byte-identical record
  files (sharding only relocates, never rewrites);
- **pinning**: the remote cache's LRU eviction never evicts a record
  the in-flight save just wrote, however small the cap.
"""

import itertools
import os
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cm import BinRecord, BinStore, StoreServer
from repro.cm.backend import (
    DirectoryBackend,
    MANIFEST_NAME,
    ShardedBackend,
    escape_name,
)
from repro.cm.remote import LoopbackTransport, RemoteBackend

# The same adversarial name/record space the flat round-trip suite uses.
names = st.text(
    st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=24)
hostile = st.sampled_from(
    ["../x", "..", ".", "", "a/b", "a\\b", ".hidden", "%2E", "%",
     "store.lock", "MANIFEST.json", "x.bin", "c:\\evil"])
any_name = st.one_of(names, hostile)

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=12))
extras = st.dictionaries(st.text(max_size=8), json_scalars, max_size=4)

records = st.builds(
    BinRecord,
    name=any_name,
    source_digest=st.text("0123456789abcdef", min_size=4, max_size=32),
    export_pid=st.text("0123456789abcdef", min_size=4, max_size=32),
    imports=st.lists(
        st.tuples(st.text(max_size=8), st.text("0123456789abcdef",
                                               min_size=4, max_size=8)),
        max_size=3),
    payload=st.binary(max_size=256),
    built_at=st.integers(min_value=0, max_value=2**31),
    extra=extras,
)

record_lists = st.lists(records, max_size=6, unique_by=lambda r: r.name)

_SEQ = itertools.count()


def make_backend(kind, base, fresh_cache=False):
    """A client backend of ``kind`` over storage rooted in ``base``.

    Remote servers live directly in-process (no loopback registry, so
    concurrent hypothesis examples can't collide on names).
    """
    if kind == "flat":
        return DirectoryBackend(os.path.join(base, "store"))
    if kind == "sharded":
        return ShardedBackend(os.path.join(base, "store"))
    server_root = os.path.join(base, "server")
    if not hasattr(make_backend, "_servers"):
        make_backend._servers = {}
    server = make_backend._servers.get(server_root)
    if server is None:
        server = make_backend._servers[server_root] = StoreServer(server_root)
    cache = os.path.join(base, f"cache{next(_SEQ) if fresh_cache else 0}")
    return RemoteBackend("rbs://prop.test", cache, LoopbackTransport(server))


def assert_identical(loaded, record_list):
    for record in record_list:
        got = loaded.get(record.name)
        assert got is not None, record.name
        assert got.name == record.name
        assert got.source_digest == record.source_digest
        assert got.export_pid == record.export_pid
        assert got.imports == [tuple(p) for p in record.imports]
        assert got.payload == record.payload
        assert got.built_at == record.built_at
        assert got.extra == record.extra


@given(record_lists)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_save_load_identity_any_backend(backend_kind, record_list):
    base = tempfile.mkdtemp(prefix=f"backend-prop-{backend_kind}-")
    try:
        backend = make_backend(backend_kind, base)
        store = BinStore(backend=backend)
        for record in record_list:
            store.put(record)
        stats = store.save_directory(backend.root)
        assert stats.records_written == len(record_list)

        # A *different* client (fresh cache, for remote: everything
        # must come over the wire) sees the identical records.
        reader = make_backend(backend_kind, base, fresh_cache=True)
        loaded = BinStore.load_directory(reader.root, backend=reader)
        assert loaded.health.ok, loaded.health.render_text()
        assert loaded.names() == store.names()
        assert_identical(loaded, record_list)

        # Incremental: an untouched second save writes nothing.
        again = loaded.save_directory(reader.root)
        assert again.records_written == 0
    finally:
        shutil.rmtree(base, ignore_errors=True)


@given(record_lists)
@settings(max_examples=25, deadline=None)
def test_sharded_and_flat_layouts_are_byte_identical(record_list):
    base = tempfile.mkdtemp(prefix="backend-prop-diff-")
    try:
        flat_dir = os.path.join(base, "flat")
        shard_dir = os.path.join(base, "shard")
        for backend in (DirectoryBackend(flat_dir),
                        ShardedBackend(shard_dir)):
            store = BinStore(backend=backend)
            for record in record_list:
                store.put(record)
            store.save_directory(backend.root)

        # Identical manifest bytes at the root of both layouts.
        with open(os.path.join(flat_dir, MANIFEST_NAME), "rb") as f:
            flat_manifest = f.read()
        with open(os.path.join(shard_dir, MANIFEST_NAME), "rb") as f:
            shard_manifest = f.read()
        assert flat_manifest == shard_manifest

        # Identical record files -- sharding relocates, never rewrites.
        sharded = ShardedBackend(shard_dir)
        for record in record_list:
            stem = escape_name(record.name)
            for suffix in (".bin", ".bin.json"):
                with open(os.path.join(flat_dir, stem + suffix),
                          "rb") as f:
                    flat_bytes = f.read()
                with open(os.path.join(sharded.dir_of(stem),
                                       stem + suffix), "rb") as f:
                    shard_bytes = f.read()
                assert flat_bytes == shard_bytes, record.name

        # And both load to identical export pids.
        flat_loaded = BinStore.load_directory(flat_dir)
        shard_loaded = BinStore.load_directory(shard_dir)
        assert flat_loaded.names() == shard_loaded.names()
        for name in flat_loaded.names():
            assert (flat_loaded.get(name).export_pid
                    == shard_loaded.get(name).export_pid)
    finally:
        shutil.rmtree(base, ignore_errors=True)


@given(record_lists)
@settings(max_examples=25, deadline=None)
def test_eviction_never_evicts_a_record_dirty_in_current_save(record_list):
    base = tempfile.mkdtemp(prefix="backend-prop-evict-")
    try:
        # A cap of one byte wants to evict *everything* -- but records
        # written by the in-flight save are pinned, so they must all
        # survive in the cache until the save completes and land on the
        # server in full.
        backend = make_backend("remote", base)
        backend.cache_cap_bytes = 1
        store = BinStore(backend=backend)
        for record in record_list:
            store.put(record)
        stats = store.save_directory(backend.root)
        assert stats.records_written == len(record_list)

        for record in record_list:
            stem = escape_name(record.name)
            assert backend.cache.has_payload(stem), record.name

        reader = make_backend("remote", base, fresh_cache=True)
        loaded = BinStore.load_directory(reader.root, backend=reader)
        assert loaded.health.ok, loaded.health.render_text()
        assert_identical(loaded, record_list)
    finally:
        shutil.rmtree(base, ignore_errors=True)
