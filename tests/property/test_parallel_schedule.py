"""Property tests for the wavefront scheduler.

Two claims, over arbitrary DAGs:

1. ``wavefronts`` is a *valid, tight* topological partition: the waves
   partition the graph, every unit's in-graph imports land in strictly
   earlier waves, and no unit could have run a wave earlier.
2. A worker crash mid-wave degrades, never corrupts: the parallel build
   raises, what was already applied is a valid store prefix (PR-2
   crash-safety), and a fresh serial session over the saved partial
   store converges to exactly the clean-build pids.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.cm import (
    BinStore,
    CutoffBuilder,
    DepGraph,
    ParallelBuildError,
    WorkerFaults,
    parallel_build,
    wavefronts,
)
from repro.cm.depend import _topo_order
from repro.workload import generate_workload, random_dag


def graph_from_deps(deps_by_index):
    """A synthetic DepGraph from shape-style deps (no sources needed)."""
    names = [f"u{k:03d}" for k in range(len(deps_by_index))]
    deps = {names[k]: sorted(names[d] for d in deps_by_index[k])
            for k in range(len(names))}
    dependents = {n: [] for n in names}
    for name, imported in deps.items():
        for dep in imported:
            dependents[dep].append(name)
    return DepGraph(deps=deps,
                    dependents={n: sorted(d)
                                for n, d in dependents.items()},
                    order=_topo_order(names, deps))


dags = st.builds(
    random_dag,
    n=st.integers(min_value=1, max_value=24),
    max_deps=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)


@given(dags)
@settings(max_examples=120, deadline=None)
def test_wavefronts_is_a_tight_topological_partition(deps_by_index):
    graph = graph_from_deps(deps_by_index)
    waves = wavefronts(graph)

    # Partition: every unit exactly once, waves sorted, none empty.
    flat = [name for wave in waves for name in wave]
    assert sorted(flat) == sorted(graph.order)
    assert len(flat) == len(set(flat))
    assert all(wave == sorted(wave) and wave for wave in waves)

    # Topological: every import lands in a strictly earlier wave, so
    # all units inside one wave are pairwise independent.
    wave_of = {name: k for k, wave in enumerate(waves)
               for name in wave}
    for name in graph.order:
        for dep in graph.deps[name]:
            assert wave_of[dep] < wave_of[name]

    # Tight: a unit in wave k > 0 has an import in wave k - 1 -- it
    # could not have been scheduled any earlier.
    for name, k in wave_of.items():
        if k > 0:
            assert any(wave_of[dep] == k - 1
                       for dep in graph.deps[name])


@given(dags)
@settings(max_examples=60, deadline=None)
def test_wavefronts_skip_imports_outside_the_graph(deps_by_index):
    """Stable-library imports (not in the graph) must not gate a wave:
    drop the first unit from the graph and every survivor that imported
    it still schedules, one wave earlier or same."""
    graph = graph_from_deps(deps_by_index)
    if len(graph.order) < 2:
        return
    dropped = graph.order[0]
    kept = [n for n in graph.order if n != dropped]
    trimmed = DepGraph(
        deps={n: graph.deps[n] for n in kept},  # still names `dropped`
        dependents={n: [d for d in graph.dependents[n] if d != dropped]
                    for n in kept},
        order=kept)
    waves = wavefronts(trimmed)
    assert sorted(n for w in waves for n in w) == sorted(kept)


crash_cases = st.builds(
    lambda n, seed, victim: (random_dag(n, max_deps=2, seed=seed),
                             victim % n),
    n=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=500),
    victim=st.integers(min_value=0, max_value=6),
)


@given(crash_cases)
@settings(max_examples=8, deadline=None)
def test_worker_crash_mid_wave_degrades_to_crash_safety(case):
    deps_by_index, victim_index = case
    victim = f"u{victim_index:03d}"

    # Clean reference pids for this DAG.
    reference = CutoffBuilder(
        generate_workload(deps_by_index, helpers_per_unit=1).project)
    reference.build()
    want = {n: u.export_pid for n, u in reference.units.items()}

    workload = generate_workload(deps_by_index, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    with pytest.raises(ParallelBuildError) as excinfo:
        parallel_build(builder, jobs=4, pool="inline",
                       faults=WorkerFaults(crash_units={victim}))
    assert excinfo.value.name == victim

    base = tempfile.mkdtemp(prefix="crashwave-")
    try:
        store_dir = os.path.join(base, "store")
        # Whatever the scheduler applied before the crash is a valid
        # prefix: it saves cleanly and loads healthy.
        builder.store.save_directory(store_dir)
        loaded = BinStore.load_directory(store_dir)
        assert loaded.health.ok
        assert victim not in loaded.names()

        # A fresh serial session over the partial store converges to
        # the clean pids: the crash cost work, never correctness.
        resumed = CutoffBuilder(workload.project, store=loaded)
        resumed.build()
        assert ({n: u.export_pid for n, u in resumed.units.items()}
                == want)
    finally:
        shutil.rmtree(base, ignore_errors=True)
