"""Property tests for the supervision layer.

Over arbitrary DAGs and arbitrary single-worker faults:

1. A supervised build whose victim crashes (once or twice, within the
   retry budget) finishes every unit and saves a store *byte-identical*
   to a clean serial build's -- faults cost retries, never bytes.
2. A poisoned victim fails, exactly its transitive dependents are
   skipped, and every other unit still lands on the clean serial pids.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.cm import (
    CutoffBuilder,
    SupervisePolicy,
    WorkerFaults,
    supervised_build,
)
from repro.cm.store import JOURNAL_NAME, LOCK_NAME, RECORD_LOCK_SUFFIX
from repro.workload import generate_workload, random_dag

FAST = SupervisePolicy(retries=2, backoff_base=0.001, backoff_cap=0.01)


def store_files(path):
    """{filename: bytes} for every store-owned file in ``path``."""
    out = {}
    for entry in sorted(os.listdir(path)):
        full = os.path.join(path, entry)
        if not os.path.isfile(full):
            continue
        if entry in (LOCK_NAME, JOURNAL_NAME) or \
                entry.endswith(RECORD_LOCK_SUFFIX):
            continue
        with open(full, "rb") as f:
            out[entry] = f.read()
    return out


def descendants(deps_by_index, root):
    """Transitive dependents of unit index ``root``."""
    dependents = {k: set() for k in range(len(deps_by_index))}
    for k, deps in enumerate(deps_by_index):
        for d in deps:
            dependents[d].add(k)
    out, frontier = set(), {root}
    while frontier:
        nxt = set()
        for k in frontier:
            for dep in dependents[k] - out:
                out.add(dep)
                nxt.add(dep)
        frontier = nxt
    return {f"u{k:03d}" for k in out}


fault_cases = st.builds(
    lambda n, seed, victim, attempts: (
        random_dag(n, max_deps=3, seed=seed), victim % n, attempts),
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2_000),
    victim=st.integers(min_value=0, max_value=9),
    attempts=st.integers(min_value=1, max_value=2),
)


@given(fault_cases)
@settings(max_examples=10, deadline=None)
def test_crash_faults_cost_retries_never_bytes(case):
    deps_by_index, victim_index, attempts = case
    victim = f"u{victim_index:03d}"

    base = tempfile.mkdtemp(prefix="supprop-")
    try:
        serial_dir = os.path.join(base, "serial")
        reference = CutoffBuilder(
            generate_workload(deps_by_index, helpers_per_unit=1).project)
        reference.build()
        reference.store.save_directory(serial_dir)

        workload = generate_workload(deps_by_index, helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        report = supervised_build(
            builder, jobs=2, pool="thread",
            faults=WorkerFaults(crash_units={victim},
                                crash_attempts=attempts),
            policy=FAST)

        assert not report.failed and not report.skipped
        assert sorted(report.compiled) == sorted(builder.units)
        assert report.retries == attempts
        supervised_dir = os.path.join(base, "supervised")
        builder.store.save_directory(supervised_dir)
        assert store_files(supervised_dir) == store_files(serial_dir)
    finally:
        shutil.rmtree(base, ignore_errors=True)


@given(fault_cases)
@settings(max_examples=8, deadline=None)
def test_poison_skips_exactly_the_dependent_cone(case):
    deps_by_index, victim_index, _attempts = case
    victim = f"u{victim_index:03d}"
    cone = descendants(deps_by_index, victim_index)

    reference = CutoffBuilder(
        generate_workload(deps_by_index, helpers_per_unit=1).project)
    reference.build()
    want = {n: u.export_pid for n, u in reference.units.items()}

    workload = generate_workload(deps_by_index, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    report = supervised_build(
        builder, jobs=2, pool="inline",
        faults=WorkerFaults(poison_units=frozenset({victim})),
        policy=FAST)

    assert report.failed == [victim]
    assert sorted(report.skipped) == sorted(cone)
    healthy = set(builder.units) - cone - {victim}
    assert sorted(report.compiled) == sorted(healthy)
    for name in healthy:
        assert builder.units[name].export_pid == want[name], name
