"""Property tests for trace-driven (longest-first) priority dispatch.

Priority is *scheduling only*: record bytes are intrinsic per unit, so
reordering the ready set's offers must never change what gets built or
what lands in the store.  Over random DAGs and random prior-profile
timings:

1. A keyed :class:`ReadySet` still offers every unit exactly once,
   after its imports, with each batch ordered by the key -- longest
   prior compile time first, names breaking ties.
2. A ready-set build driven by ``offer_key`` records a dispatch order
   that is a linear extension of the dependency graph.
3. The final store bytes and export pids are identical to the
   name-ordered build -- the byte-identity gate that makes priority
   safe to turn on from history.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.cm import BinStore, CutoffBuilder, ReadySet, parallel_build
from repro.obs.history import longest_first_key
from repro.workload import generate_workload, random_dag

from tests.property.test_ready_set import graph_from_deps

dags = st.builds(
    random_dag,
    n=st.integers(min_value=1, max_value=24),
    max_deps=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)


@st.composite
def dag_with_history(draw):
    """A random DAG plus random prior-profile compile seconds; some
    units are missing from history (they rank at the median)."""
    deps = draw(dags)
    names = [f"u{k:03d}" for k in range(len(deps))]
    seconds = {}
    for name in names:
        if draw(st.booleans()):
            seconds[name] = draw(st.integers(0, 50)) / 10.0
    return deps, seconds


@given(dag_with_history())
@settings(max_examples=120, deadline=None)
def test_keyed_ready_set_is_sound_and_batches_by_priority(case):
    deps_by_index, seconds = case
    graph = graph_from_deps(deps_by_index)
    key = longest_first_key(seconds)
    ready = ReadySet(graph, key=key)
    completed: set = set()
    offered: list = []
    while not ready.all_done():
        batch = ready.take()
        assert batch, "keyed ready set stalled with units outstanding"
        if key is not None:
            assert batch == sorted(batch, key=key)
        else:
            assert batch == sorted(batch)
        for name in batch:
            for dep in graph.deps[name]:
                assert dep in completed
        offered.extend(batch)
        for name in batch:
            released = ready.complete(name)
            if key is not None:
                assert released == sorted(released, key=key)
            completed.add(name)
    assert sorted(offered) == sorted(graph.order)
    assert len(offered) == len(set(offered))


@given(dag_with_history())
@settings(max_examples=10, deadline=None)
def test_longest_first_dispatch_is_a_linear_extension(case):
    deps_by_index, seconds = case
    workload = generate_workload(deps_by_index, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    report = parallel_build(builder, jobs=4, pool="inline",
                            schedule="ready",
                            offer_key=longest_first_key(seconds))
    graph = builder.last_graph
    order = report.dispatch_order
    assert sorted(order) == sorted(graph.order)
    position = {name: k for k, name in enumerate(order)}
    for name in graph.order:
        for dep in graph.deps[name]:
            assert position[dep] < position[name], (
                f"{name} dispatched before its import {dep}")


@given(dag_with_history())
@settings(max_examples=6, deadline=None)
def test_longest_first_matches_name_order_store_bytes(case):
    deps_by_index, seconds = case

    def flow(offer_key, store_dir):
        workload = generate_workload(deps_by_index, helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        parallel_build(builder, jobs=4, pool="thread",
                       schedule="ready", offer_key=offer_key)
        builder.store.save_directory(store_dir)
        # Incremental pass too: edit the root, rebuild warm-store.
        workload.edit_interface("u000")
        builder = CutoffBuilder(workload.project,
                                store=BinStore.load_directory(store_dir))
        parallel_build(builder, jobs=4, pool="thread",
                       schedule="ready", offer_key=offer_key)
        builder.store.save_directory(store_dir)
        pids = {n: u.export_pid for n, u in builder.units.items()}
        files = {}
        for entry in sorted(os.listdir(store_dir)):
            if entry.endswith(".rlock") or entry == "store.lock":
                continue
            with open(os.path.join(store_dir, entry), "rb") as fh:
                files[entry] = fh.read()
        return pids, files

    base = tempfile.mkdtemp(prefix="priorityprop-")
    try:
        named = flow(None, os.path.join(base, "name"))
        keyed = flow(longest_first_key(seconds),
                     os.path.join(base, "longest"))
        assert keyed == named
    finally:
        shutil.rmtree(base, ignore_errors=True)
