"""Property tests: the free-name analysis is *conservative*.

Programs are generated with reference positions planted by construction
(qualified uses, opens, structure aliases, functor applications,
signature ascriptions, type projections).  The invariants:

- every planted reference shows up in ``mentioned_names``' namespace
  sets -- an identifier token in reference position is never missed
  (under-approximation would make dependency analysis unsound);
- the precise scope-aware scanner never reports an escaping reference
  the conservative analysis missed (precise ⊆ conservative -- the
  relation the SC001 false-edge rule relies on);
- ``module_level_mentions`` subtracts only locally *defined* names, so
  external mentions always survive to the dependency analyzer.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.scopes import scan_module_refs
from repro.lang.freevars import (MODULE_NAMESPACES, mentioned_names,
                                 module_level_mentions)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.tokens import TokKind

EXTERNAL_STRUCTS = ("Alpha", "Beta", "Gamma")
EXTERNAL_SIGS = ("SIG_A", "SIG_B")
EXTERNAL_FCTS = ("MkThing", "MkOther")
PLANTED = set(EXTERNAL_STRUCTS + EXTERNAL_SIGS + EXTERNAL_FCTS)


@st.composite
def fragment(draw, index):
    """One top-level declaration plus the (ns, name) reference it
    plants."""
    kind = draw(st.sampled_from(
        ("qualified", "open", "alias", "app", "sig", "type", "nested")))
    if kind in ("qualified", "open", "alias", "type", "nested"):
        name = draw(st.sampled_from(EXTERNAL_STRUCTS))
        ref = ("structures", name)
        body = {
            "qualified": f"struct val x = {name}.item end",
            "open": f"struct open {name} end",
            "alias": name,
            "type": f"struct type t = {name}.t end",
            "nested": f"struct structure Inner = {name} end",
        }[kind]
        return f"structure U{index} = {body}", ref
    if kind == "app":
        name = draw(st.sampled_from(EXTERNAL_FCTS))
        return (f"structure U{index} = {name}(struct val v = {index} end)",
                ("functors", name))
    name = draw(st.sampled_from(EXTERNAL_SIGS))
    return f"structure U{index} : {name} = struct end", ("signatures", name)


@st.composite
def program(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    lines, planted = [], []
    for i in range(count):
        line, ref = draw(fragment(i))
        lines.append(line)
        planted.append(ref)
    return "\n".join(lines), planted


@given(program())
@settings(max_examples=60)
def test_every_planted_reference_is_mentioned(prog):
    source, planted = prog
    mentions = mentioned_names(parse_program(source))
    for ns, name in planted:
        assert name in getattr(mentions, ns)


@given(program())
@settings(max_examples=60)
def test_reference_position_tokens_land_in_some_namespace(prog):
    source, _planted = prog
    mentions = mentioned_names(parse_program(source))
    everything = set()
    for ns in ("values", "tycons", *MODULE_NAMESPACES):
        everything |= getattr(mentions, ns)
    for token in tokenize(source):
        if token.kind is TokKind.ID and token.text in PLANTED:
            assert token.text in everything


@given(program())
@settings(max_examples=60)
def test_precise_scan_is_subset_of_conservative(prog):
    source, _planted = prog
    decs = parse_program(source)
    mentions = mentioned_names(decs)
    for ns, name in scan_module_refs(decs).escaping():
        assert name in getattr(mentions, ns)


@given(program())
@settings(max_examples=60)
def test_external_mentions_survive_to_dependency_analysis(prog):
    source, planted = prog
    module_mentions = module_level_mentions(parse_program(source))
    for ns, name in planted:
        assert name in getattr(module_mentions, ns)
