"""Property: the cutoff-explanation ledger is *sound*.

Over arbitrary DAGs and arbitrary single-unit edits, every decision the
cutoff builder records must be backed by the structural facts it
claims:

- every unit of the build gets exactly one decision, with a cause from
  the published vocabulary;
- ``reused (all-import-pids-stable)`` really has every live import pid
  equal to the prior bin record's;
- ``import-pid-changed`` names at least one import whose pid genuinely
  differs, and the named new pids are the live ones;
- the cutoff builder never reports ``policy`` (it has no rule that
  rebuilds on stable facts -- that cause belongs to make's cascade).
"""

from hypothesis import given, settings, strategies as st

from repro.cm import BinStore, CutoffBuilder
from repro.obs.ledger import RECOMPILE_CAUSES, REUSE_CAUSES
from repro.workload import generate_workload, random_dag

EDIT_METHODS = ("edit_comment", "edit_interface", "edit_implementation")

cases = st.builds(
    lambda n, seed, victim, edit: (random_dag(n, max_deps=3, seed=seed),
                                   victim % n, edit),
    n=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2_000),
    victim=st.integers(min_value=0, max_value=9),
    edit=st.sampled_from(EDIT_METHODS),
)


@given(cases)
@settings(max_examples=25, deadline=None)
def test_ledger_is_sound(tmp_path_factory, case):
    deps_by_index, victim_index, edit = case
    victim = f"u{victim_index:03d}"
    store_dir = str(tmp_path_factory.mktemp("ledger") / "store")

    workload = generate_workload(deps_by_index, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    builder.build()
    builder.store.save_directory(store_dir)
    assert all(d.cause == "store-miss" for d in builder.ledger)

    getattr(workload, edit)(victim)
    builder = CutoffBuilder(workload.project,
                            store=BinStore.load_directory(store_dir))
    report = builder.build()
    ledger = builder.ledger

    assert sorted(d.unit for d in ledger) == sorted(
        u.name for u in builder.units.values())
    live_pids = {n: u.export_pid for n, u in builder.units.items()}

    for decision in ledger:
        assert decision.cause in RECOMPILE_CAUSES + REUSE_CAUSES
        assert decision.cause != "policy"  # cutoff never over-rebuilds
        # The recorded live pids are the build's actual pids.
        for name, pid in decision.live_imports:
            assert live_pids[name] == pid

        if decision.cause == "all-import-pids-stable":
            assert dict(decision.prior_imports) == dict(
                decision.live_imports)
            assert not decision.changes
        if decision.cause == "import-pid-changed":
            assert decision.changes
            for change in decision.changes:
                if change.kind == "changed":
                    assert change.old_pid != change.new_pid
                    assert live_pids[change.unit] == change.new_pid
        if decision.cause == "source-changed":
            assert decision.unit == victim  # only one unit was edited

    # The ledger and the report agree on what was recompiled.
    assert sorted(d.unit for d in ledger.recompiled()) == sorted(
        report.compiled)
