"""Compilation units: compile / execute / load / sessions."""

import pytest

from repro.elab.errors import ElabError
from repro.units import Session, compile_unit, execute_unit
from repro.units.pipeline import load_unit, source_digest


@pytest.fixture
def session(basis):
    return Session(basis)


A_SRC = """
structure Counter = struct
  datatype t = C of int
  val zero = C 0
  fun inc (C n) = C (n + 1)
  fun get (C n) = n
end
"""

B_SRC = """
structure Use = struct
  val two = Counter.get (Counter.inc (Counter.inc Counter.zero))
end
"""


class TestCompile:
    def test_basic(self, session):
        unit = compile_unit("a", A_SRC, [], session)
        assert unit.name == "a"
        assert len(unit.export_pid) == 32
        assert unit.imports == []
        assert "Counter" in unit.static_env.structures

    def test_import_records(self, session):
        a = compile_unit("a", A_SRC, [], session)
        b = compile_unit("b", B_SRC, [a], session)
        assert b.imports == [("a", a.export_pid)]

    def test_elab_error_propagates(self, session):
        with pytest.raises(ElabError):
            compile_unit("bad", "structure S = struct val x = 1 + true end",
                         [], session)

    def test_missing_import_fails(self, session):
        with pytest.raises(ElabError, match="unbound"):
            compile_unit("b", B_SRC, [], session)

    def test_source_digest_recorded(self, session):
        unit = compile_unit("a", A_SRC, [], session)
        assert unit.source_digest == source_digest(A_SRC)

    def test_phase_times_populated(self, session):
        unit = compile_unit("a", A_SRC, [], session)
        assert unit.times.parse > 0
        assert unit.times.elaborate > 0
        assert unit.times.hash > 0
        assert unit.times.dehydrate > 0

    def test_payload_nonempty(self, session):
        unit = compile_unit("a", A_SRC, [], session)
        assert len(unit.payload) > 50


class TestExecute:
    def test_chain(self, session):
        a = compile_unit("a", A_SRC, [], session)
        b = compile_unit("b", B_SRC, [a], session)
        dyn_a = execute_unit(a, [], session)
        dyn_b = execute_unit(b, [dyn_a], session)
        assert dyn_b.structures["Use"].values["two"] == 2

    def test_execute_records_time(self, session):
        a = compile_unit("a", A_SRC, [], session)
        execute_unit(a, [], session)
        assert a.times.execute > 0

    def test_export_isolation(self, session):
        # Two executions of the same unit yield independent exports.
        a = compile_unit(
            "a", "structure R = struct val cell = ref 0 end", [], session)
        d1 = execute_unit(a, [], session)
        d2 = execute_unit(a, [], session)
        d1.structures["R"].values["cell"].value = 99
        assert d2.structures["R"].values["cell"].value == 0


class TestLoad:
    def test_load_roundtrip(self, session, basis):
        a = compile_unit("a", A_SRC, [], session)
        fresh = Session(basis)
        a2 = load_unit("a", a.export_pid, [], a.payload, fresh)
        assert "Counter" in a2.static_env.structures
        assert a2.export_pid == a.export_pid

    def test_compile_against_loaded(self, session, basis):
        a = compile_unit("a", A_SRC, [], session)
        fresh = Session(basis)
        a2 = load_unit("a", a.export_pid, [], a.payload, fresh)
        b = compile_unit("b", B_SRC, [a2], fresh)
        dyn_a = execute_unit(a2, [], fresh)
        dyn_b = execute_unit(b, [dyn_a], fresh)
        assert dyn_b.structures["Use"].values["two"] == 2

    def test_loaded_unit_same_pid_when_recompiled(self, session, basis):
        # compile in session 1, load in session 2, recompile the same
        # source in session 2: pids agree.
        a = compile_unit("a", A_SRC, [], session)
        fresh = Session(basis)
        load_unit("a", a.export_pid, [], a.payload, fresh)
        a_re = compile_unit("a", A_SRC, [], fresh)
        assert a_re.export_pid == a.export_pid

    def test_dependent_pid_stable_across_load_vs_compile(self, session,
                                                         basis):
        # b compiled against freshly-compiled a, vs b compiled against
        # *rehydrated* a: identical pid (stub indices must line up).
        a = compile_unit("a", A_SRC, [], session)
        b = compile_unit("b", B_SRC, [a], session)

        fresh = Session(basis)
        a2 = load_unit("a", a.export_pid, [], a.payload, fresh)
        b2 = compile_unit("b", B_SRC, [a2], fresh)
        assert b2.export_pid == b.export_pid

    def test_rehydrate_time_recorded(self, session, basis):
        a = compile_unit("a", A_SRC, [], session)
        fresh = Session(basis)
        a2 = load_unit("a", a.export_pid, [], a.payload, fresh)
        assert a2.times.rehydrate > 0


class TestSession:
    def test_basis_registered(self, session):
        from repro.basis import BASIS_PID

        assert session.knows_pid(BASIS_PID)

    def test_extern_for_unit_exports(self, session):
        a = compile_unit("a", A_SRC, [], session)
        tycon = a.static_env.structures["Counter"].env.tycons["t"]
        pid, index = session.extern(tycon.stamp.id)
        assert pid == a.export_pid
        assert session.resolve(pid, index) is tycon

    def test_unknown_stamp_raises(self, session):
        with pytest.raises(KeyError):
            session.extern(999_999_999)
