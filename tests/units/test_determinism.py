"""Reproducible builds: bin payloads and pids are byte-identical across
sessions and processes (the foundation under cross-session stub
resolution)."""

import pytest

from repro.units import Session, compile_unit

SRC_A = """
signature S = sig type t val mk : int -> t end
structure Impl :> S = struct
  datatype t = T of int
  fun mk n = T n
end
functor Wrap(X : S) = struct val make = X.mk end
"""

SRC_B = "structure Client = struct structure W = Wrap(Impl) end"


class TestDeterminism:
    def test_payload_bytes_identical_across_sessions(self, basis):
        s1, s2 = Session(basis), Session(basis)
        a1 = compile_unit("a", SRC_A, [], s1)
        a2 = compile_unit("a", SRC_A, [], s2)
        assert a1.payload == a2.payload

    def test_payload_identical_with_stamp_skew(self, basis):
        s1, s2 = Session(basis), Session(basis)
        # Skew s2's stamp counter first.
        compile_unit("junk", "structure J = struct datatype t = K end",
                     [], s2)
        a1 = compile_unit("a", SRC_A, [], s1)
        a2 = compile_unit("a", SRC_A, [], s2)
        assert a1.payload == a2.payload
        assert a1.export_pid == a2.export_pid

    def test_dependent_payload_identical(self, basis):
        s1, s2 = Session(basis), Session(basis)
        a1 = compile_unit("a", SRC_A, [], s1)
        b1 = compile_unit("b", SRC_B, [a1], s1)
        a2 = compile_unit("a", SRC_A, [], s2)
        b2 = compile_unit("b", SRC_B, [a2], s2)
        assert b1.payload == b2.payload
        assert b1.export_pid == b2.export_pid

    def test_different_sources_different_payloads(self, basis):
        session = Session(basis)
        a = compile_unit("a", SRC_A, [], session)
        changed = compile_unit(
            "a", SRC_A.replace("fun mk n = T n", "fun mk n = T (n + 0)"),
            [], session)
        assert a.payload != changed.payload  # code AST differs
        assert a.export_pid == changed.export_pid  # interface does not

    def test_export_index_order_stable(self, basis):
        s1, s2 = Session(basis), Session(basis)
        a1 = compile_unit("a", SRC_A, [], s1)
        a2 = compile_unit("a", SRC_A, [], s2)
        kinds1 = [type(o).__name__ for o in a1.export_index]
        kinds2 = [type(o).__name__ for o in a2.export_index]
        assert kinds1 == kinds2
