"""DynExport and PhaseTimes record semantics."""

import pytest

from repro.dynamic.values import DynEnv, VStruct
from repro.units.unit import DynExport, PhaseTimes


class TestDynExport:
    def _frame(self):
        frame = DynEnv()
        frame.values["x"] = 1
        frame.structures["S"] = VStruct("S", {"v": 2})
        return frame

    def test_snapshot_is_decoupled(self):
        frame = self._frame()
        export = DynExport("u", frame)
        frame.values["x"] = 99
        frame.values["later"] = 3
        assert export.values["x"] == 1
        assert "later" not in export.values

    def test_splice_into(self):
        export = DynExport("u", self._frame())
        target = DynEnv()
        export.splice_into(target)
        assert target.values["x"] == 1
        assert target.structures["S"].values["v"] == 2

    def test_splice_overwrites(self):
        export = DynExport("u", self._frame())
        target = DynEnv()
        target.values["x"] = 0
        export.splice_into(target)
        assert target.values["x"] == 1

    def test_repr_counts(self):
        export = DynExport("u", self._frame())
        text = repr(export)
        assert "1 values" in text and "1 structures" in text


class TestPhaseTimes:
    def test_totals(self):
        times = PhaseTimes(parse=1.0, elaborate=2.0, hash=0.25,
                           dehydrate=0.5, rehydrate=0.125)
        assert times.compile_total() == 3.0
        assert times.overhead_total() == 0.875

    def test_defaults_zero(self):
        times = PhaseTimes()
        assert times.compile_total() == 0.0
        assert times.overhead_total() == 0.0
