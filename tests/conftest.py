"""Shared fixtures and helpers for the test suite."""

import os

import pytest

from repro.basis import make_basis

# -- store-backend matrix ------------------------------------------------
#
# Tests that request the ``backend_kind`` fixture run against a store
# backend implementation (see repro.cm.backend).  By default tier 1
# exercises only the flat directory backend -- the layout every other
# suite already covers implicitly.  The full differential matrix runs
# either on demand (``pytest --backend sharded``) or wholesale
# (``REPRO_ALL_BACKENDS=1 pytest``), which parameterizes every such
# test across flat, sharded, and remote.

BACKEND_KINDS = ("flat", "sharded", "remote")


def pytest_addoption(parser):
    parser.addoption(
        "--backend", action="store", default=None, choices=BACKEND_KINDS,
        help="run backend-marked tests against this store backend only")


def pytest_generate_tests(metafunc):
    if "backend_kind" in metafunc.fixturenames:
        chosen = metafunc.config.getoption("--backend")
        if chosen:
            kinds = [chosen]
        elif os.environ.get("REPRO_ALL_BACKENDS"):
            kinds = list(BACKEND_KINDS)
        else:
            kinds = ["flat"]
        metafunc.parametrize("backend_kind", kinds)


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "backend_kind" in getattr(item, "fixturenames", ()):
            item.add_marker(pytest.mark.backend)


_HARNESS_SEQ = [0]


class BackendHarness:
    """One persistent store reachable through a chosen backend kind.

    Hides the kind-specific plumbing so differential tests are written
    once: :meth:`backend` hands out client backends over the same
    underlying storage (for ``remote``, a loopback server plus one
    write-through cache per client), and :attr:`at_rest_dir` names the
    directory holding the *authoritative* record pairs -- the place
    at-rest damage must be injected to reach every client.
    """

    def __init__(self, kind: str, base_dir):
        self.kind = kind
        self.base = str(base_dir)
        self.server = None
        self.url = None
        self._clients = 0
        if kind == "remote":
            from repro.cm import StoreServer, register_loopback

            self.server_root = os.path.join(self.base, "server")
            _HARNESS_SEQ[0] += 1
            self._loopback = f"conformance-{_HARNESS_SEQ[0]}"
            self.server = StoreServer(self.server_root)
            register_loopback(self._loopback, self.server)
            self.url = f"loopback://{self._loopback}"

    def backend(self, fs=None, fresh_cache=False,
                cache_cap_bytes=None, compress=True):
        """A client backend over this harness's store.

        ``fs`` routes the *client-side* writes (cache writes for
        remote) through a fault-injection filesystem.  For remote,
        ``fresh_cache=True`` simulates a brand-new machine: an empty
        local cache that must fetch everything from the server.
        """
        from repro.cm import DirectoryBackend, ShardedBackend
        from repro.cm.remote import remote_backend_from_url

        # Store/cache dirs are named ".bin" so the CLI's fsck mode can
        # target them directly (it treats any other name as a srcdir).
        if self.kind == "flat":
            return DirectoryBackend(os.path.join(self.base, ".bin"), fs=fs)
        if self.kind == "sharded":
            return ShardedBackend(os.path.join(self.base, ".bin"), fs=fs)
        if fresh_cache:
            self._clients += 1
        cache_dir = os.path.join(self.base, f"cache{self._clients}", ".bin")
        return remote_backend_from_url(self.url, cache_dir, fs=fs,
                                       cache_cap_bytes=cache_cap_bytes,
                                       compress=compress)

    @property
    def at_rest_dir(self) -> str:
        """Where the authoritative record pair files live on disk."""
        if self.kind == "remote":
            return self.server_root
        return os.path.join(self.base, ".bin")

    def close(self):
        if self.kind == "remote":
            from repro.cm import unregister_loopback

            unregister_loopback(self._loopback)


@pytest.fixture
def store_harness(backend_kind, tmp_path):
    """A :class:`BackendHarness` for the parameterized backend kind."""
    harness = BackendHarness(backend_kind, tmp_path)
    yield harness
    harness.close()
from repro.dynamic.evaluate import eval_decs
from repro.elab.topdec import elaborate_decs
from repro.lang.parser import parse_program
from repro.semant.format import format_type


@pytest.fixture(scope="session")
def basis():
    """The shared pervasive basis (expensive; build once)."""
    return make_basis()


@pytest.fixture
def elab(basis):
    """elab(src) -> exported static env."""

    def run(src):
        env, _el = elaborate_decs(parse_program(src), basis.static_env)
        return env

    return run


@pytest.fixture
def elab_full(basis):
    """elab_full(src) -> (exported static env, elaborator)."""

    def run(src):
        return elaborate_decs(parse_program(src), basis.static_env)

    return run


@pytest.fixture
def run_sml(basis):
    """run_sml(src) -> (static export env, dynamic frame).

    Elaborates and evaluates the program against the basis.
    """

    def run(src):
        decs = parse_program(src)
        env, _el = elaborate_decs(decs, basis.static_env)
        frame = basis.dyn_env.child()
        eval_decs(decs, frame)
        return env, frame

    return run


@pytest.fixture
def value_of(run_sml):
    """value_of(src, name) -> the dynamic value of a top-level binding."""

    def run(src, name):
        _env, frame = run_sml(src)
        return frame.lookup_value(name)

    return run


@pytest.fixture
def type_of(elab):
    """type_of(src, name) -> the rendered type of a top-level binding."""

    def run(src, name):
        env = elab(src)
        return format_type(env.values[name].scheme)

    return run
