"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.basis import make_basis
from repro.dynamic.evaluate import eval_decs
from repro.elab.topdec import elaborate_decs
from repro.lang.parser import parse_program
from repro.semant.format import format_type


@pytest.fixture(scope="session")
def basis():
    """The shared pervasive basis (expensive; build once)."""
    return make_basis()


@pytest.fixture
def elab(basis):
    """elab(src) -> exported static env."""

    def run(src):
        env, _el = elaborate_decs(parse_program(src), basis.static_env)
        return env

    return run


@pytest.fixture
def elab_full(basis):
    """elab_full(src) -> (exported static env, elaborator)."""

    def run(src):
        return elaborate_decs(parse_program(src), basis.static_env)

    return run


@pytest.fixture
def run_sml(basis):
    """run_sml(src) -> (static export env, dynamic frame).

    Elaborates and evaluates the program against the basis.
    """

    def run(src):
        decs = parse_program(src)
        env, _el = elaborate_decs(decs, basis.static_env)
        frame = basis.dyn_env.child()
        eval_decs(decs, frame)
        return env, frame

    return run


@pytest.fixture
def value_of(run_sml):
    """value_of(src, name) -> the dynamic value of a top-level binding."""

    def run(src, name):
        _env, frame = run_sml(src)
        return frame.lookup_value(name)

    return run


@pytest.fixture
def type_of(elab):
    """type_of(src, name) -> the rendered type of a top-level binding."""

    def run(src, name):
        env = elab(src)
        return format_type(env.values[name].scheme)

    return run
