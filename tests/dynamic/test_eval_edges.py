"""Evaluator edge cases: scoping corners, laziness boundaries, value
semantics details."""

import pytest

from repro.dynamic.values import SMLRaise, python_list


class TestScopingCorners:
    def test_closure_over_import_not_shadowed_by_later_local(self, value_of):
        # A closure referencing a basis binding must not pick up a later
        # local rebinding of the same name.
        src = ("fun early l = rev l "
               "fun rev l = l "
               "val x = early [1, 2]")
        assert python_list(value_of(src, "x")) == [2, 1]

    def test_let_rebinding_invisible_outside(self, value_of):
        src = ("val n = 1 "
               "val a = let val n = 100 in n end "
               "val x = (a, n)")
        assert value_of(src, "x") == (100, 1)

    def test_structure_capture_at_definition(self, value_of):
        src = ("val base = 10 "
               "structure S = struct fun get () = base end "
               "val base = 99 "
               "val x = S.get ()")
        assert value_of(src, "x") == 10

    def test_functor_application_uses_current_arg(self, value_of):
        src = ("functor F(X : sig val v : int end) = struct "
               "  val doubled = X.v * 2 end "
               "structure A = F(struct val v = 3 end) "
               "structure B = F(struct val v = 5 end) "
               "val x = (A.doubled, B.doubled)")
        assert value_of(src, "x") == (6, 10)

    def test_open_then_shadow(self, value_of):
        src = ("structure S = struct val v = 1 end "
               "open S "
               "val v = v + 10 "
               "val x = v")
        assert value_of(src, "x") == 11


class TestEvaluationOrder:
    def test_tuple_left_to_right(self, value_of):
        src = ("val log = ref nil "
               "fun note n = (log := n :: !log; n) "
               "val t = (note 1, note 2, note 3) "
               "val x = rev (!log)")
        assert python_list(value_of(src, "x")) == [1, 2, 3]

    def test_application_argument_before_call(self, value_of):
        src = ("val log = ref nil "
               "fun note n = (log := n :: !log; n) "
               "fun f a = note 9 "
               "val _ = f (note 1) "
               "val x = rev (!log)")
        # Our AppExp evaluates fn then... the argument first, then body.
        assert python_list(value_of(src, "x")) == [1, 9]

    def test_val_bindings_sequential(self, value_of):
        src = "val a = 1 val b = a + 1 val c = b + 1 val x = (a, b, c)"
        assert value_of(src, "x") == (1, 2, 3)

    def test_handle_does_not_catch_in_handler_body(self, run_sml):
        src = ("exception A "
               "val x = (raise A) handle A => raise A")
        with pytest.raises(SMLRaise):
            run_sml(src)

    def test_before_evaluates_both(self, value_of):
        src = ("val r = ref 0 "
               "val x = (1 before (r := 5)) + !r")
        assert value_of(src, "x") == 6


class TestValueSemantics:
    def test_string_immutability_by_construction(self, value_of):
        src = ('val s = "base" val t = s ^ "!" val x = (s, t)')
        assert value_of(src, "x") == ("base", "base!")

    def test_large_int_arithmetic(self, value_of):
        # SML's IntInf-ish behaviour: Python ints never overflow.
        src = "fun pow (b, 0) = 1 | pow (b, n) = b * pow (b, n - 1) " \
              "val x = pow (2, 100)"
        assert value_of(src, "x") == 2 ** 100

    def test_deep_list_construction(self, value_of):
        src = ("val x = length (List.tabulate (500, fn i => i))")
        assert value_of(src, "x") == 500

    def test_polymorphic_function_reuse(self, value_of):
        src = ("fun pair x = (x, x) "
               "val x = (pair 1, pair \"s\", pair true)")
        assert value_of(src, "x") == ((1, 1), ("s", "s"), (True, True))

    def test_curried_closure_freshness(self, value_of):
        src = ("fun counter start = "
               "  let val cell = ref start "
               "  in fn () => (cell := !cell + 1; !cell) end "
               "val c1 = counter 0 "
               "val c2 = counter 100 "
               "val x = (c1 (), c1 (), c2 ())")
        assert value_of(src, "x") == (1, 2, 101)

    def test_exceptions_are_values(self, value_of):
        src = ("exception E of int "
               "val packet = E 42 "
               "fun fire () = raise packet "
               "val x = fire () handle E n => n")
        assert value_of(src, "x") == 42

    def test_exception_packet_shared(self, value_of):
        src = ("val packets = map Fail [\"a\", \"b\"] "
               "val x = (raise List.nth (packets, 1)) handle Fail m => m")
        assert value_of(src, "x") == "b"
