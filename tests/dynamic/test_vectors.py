"""Vector and Array basis structures."""

import pytest

from repro.dynamic.values import Array, Vector
from repro.elab.errors import ElabError


class TestVector:
    def test_from_to_list(self, value_of):
        src = ("val v = Vector.fromList [1, 2] "
               "val back = Vector.toList v")
        from repro.dynamic.values import python_list

        assert python_list(value_of(src, "back")) == [1, 2]

    def test_tabulate_and_length(self, value_of):
        src = "val x = Vector.length (Vector.tabulate (4, fn i => i))"
        assert value_of(src, "x") == 4

    def test_sub(self, value_of):
        src = "val x = Vector.sub (Vector.fromList [5, 6, 7], 2)"
        assert value_of(src, "x") == 7

    def test_sub_out_of_range(self, value_of):
        src = ("val x = Vector.sub (Vector.fromList [1], 5) "
               "handle Subscript => ~1")
        assert value_of(src, "x") == -1

    def test_map(self, value_of):
        src = ("val v = Vector.map (fn s => s ^ \"!\") "
               "(Vector.fromList [\"a\", \"b\"])")
        assert value_of(src, "v") == Vector(("a!", "b!"))

    def test_map_changes_type(self, type_of):
        src = ("val v = Vector.map Int.toString "
               "(Vector.fromList [1])")
        assert type_of(src, "v") == "string vector"

    def test_foldl(self, value_of):
        src = ("val x = Vector.foldl (fn (a, b) => a + b) 10 "
               "(Vector.fromList [1, 2, 3])")
        assert value_of(src, "x") == 16

    def test_concat(self, value_of):
        src = ("val v = Vector.concat "
               "[Vector.fromList [1], Vector.fromList [2, 3]]")
        assert value_of(src, "v") == Vector((1, 2, 3))

    def test_structural_equality(self, value_of):
        src = ("val x = Vector.fromList [1, 2] = Vector.fromList [1, 2]")
        assert value_of(src, "x") is True

    def test_vector_admits_equality_type(self, type_of):
        assert type_of(
            "fun eq (a : int vector, b) = a = b", "eq") == \
            "int vector * int vector -> bool"


class TestArray:
    def test_array_fill(self, value_of):
        src = "val x = Array.sub (Array.array (3, \"z\"), 2)"
        assert value_of(src, "x") == "z"

    def test_update_mutates(self, value_of):
        src = ("val a = Array.fromList [1, 2, 3] "
               "val _ = Array.update (a, 0, 99) "
               "val x = Array.sub (a, 0)")
        assert value_of(src, "x") == 99

    def test_identity_equality(self, value_of):
        src = ("val a = Array.fromList [1] "
               "val b = Array.fromList [1] "
               "val x = (a = a, a = b)")
        assert value_of(src, "x") == (True, False)

    def test_negative_size_raises(self, value_of):
        src = "val x = (Array.array (~1, 0); 1) handle Size => ~1"
        assert value_of(src, "x") == -1

    def test_update_out_of_range(self, value_of):
        src = ("val a = Array.fromList [1] "
               "val x = (Array.update (a, 7, 0); 1) "
               "handle Subscript => ~1")
        assert value_of(src, "x") == -1

    def test_vector_snapshot_immutable(self, value_of):
        src = ("val a = Array.fromList [1, 2] "
               "val snap = Array.vector a "
               "val _ = Array.update (a, 0, 99) "
               "val x = Vector.sub (snap, 0)")
        assert value_of(src, "x") == 1

    def test_array_always_eqtype(self, elab):
        # 'a array admits equality even when 'a does not (like ref).
        elab("val a = Array.fromList [fn x => x] val ok = a = a")

    def test_shared_mutation_visible(self, value_of):
        src = ("val a = Array.array (2, 0) "
               "val b = a "
               "val _ = Array.update (a, 0, 7) "
               "val x = Array.sub (b, 0)")
        assert value_of(src, "x") == 7
