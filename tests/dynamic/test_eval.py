"""Dynamic semantics: evaluation of the core and module languages."""

import pytest

from repro.dynamic.values import (
    Char,
    SMLRaise,
    VCon,
    Word,
    format_value,
    python_list,
    sml_list,
)


class TestArithmetic:
    def test_add(self, value_of):
        assert value_of("val x = 1 + 2", "x") == 3

    def test_precedence(self, value_of):
        assert value_of("val x = 2 + 3 * 4", "x") == 14

    def test_div_mod(self, value_of):
        assert value_of("val x = (17 div 5, 17 mod 5)", "x") == (3, 2)

    def test_negative_div_floors(self, value_of):
        # SML div rounds toward negative infinity.
        assert value_of("val x = ~7 div 2", "x") == -4

    def test_negation(self, value_of):
        assert value_of("val x = ~(3 + 4)", "x") == -7

    def test_abs(self, value_of):
        assert value_of("val x = abs (~5)", "x") == 5

    def test_comparisons(self, value_of):
        assert value_of("val x = (1 < 2, 2 <= 2, 3 > 4, 5 >= 5)", "x") == \
            (True, True, False, True)

    def test_real_ops(self, value_of):
        assert value_of("val x = Real.+ (1.5, 2.25)", "x") == 3.75

    def test_real_from_int(self, value_of):
        assert value_of("val x = Real.fromInt 3", "x") == 3.0

    def test_word_ops(self, value_of):
        assert value_of("val x = Word.toInt (Word.andb (0w12, 0w10))",
                        "x") == 8


class TestEquality:
    def test_int_equality(self, value_of):
        assert value_of("val x = (1 = 1, 1 = 2, 1 <> 2)", "x") == \
            (True, False, True)

    def test_structural_equality(self, value_of):
        assert value_of("val x = [1, 2] = [1, 2]", "x") is True

    def test_datatype_equality(self, value_of):
        src = ("datatype t = A | B of int "
               "val x = (A = A, B 1 = B 1, B 1 = B 2)")
        assert value_of(src, "x") == (True, True, False)

    def test_record_equality(self, value_of):
        assert value_of("val x = {a = 1, b = 2} = {b = 2, a = 1}",
                        "x") is True

    def test_ref_identity_equality(self, value_of):
        src = ("val r = ref 0 val s = ref 0 "
               "val x = (r = r, r = s)")
        assert value_of(src, "x") == (True, False)


class TestStringsAndChars:
    def test_concat(self, value_of):
        assert value_of('val x = "ab" ^ "cd"', "x") == "abcd"

    def test_size(self, value_of):
        assert value_of('val x = size "hello"', "x") == 5

    def test_substring(self, value_of):
        assert value_of('val x = substring ("hello", 1, 3)', "x") == "ell"

    def test_chr_ord(self, value_of):
        assert value_of("val x = str (chr (ord #\"a\" + 1))", "x") == "b"

    def test_explode_implode(self, value_of):
        assert value_of('val x = implode (rev (explode "abc"))',
                        "x") == "cba"

    def test_int_to_string(self, value_of):
        assert value_of("val x = Int.toString (~42)", "x") == "~42"

    def test_int_from_string(self, value_of):
        v = value_of('val x = Int.fromString "17"', "x")
        assert isinstance(v, VCon) and v.name == "SOME" and v.arg == 17

    def test_string_compare(self, value_of):
        v = value_of('val x = String.compare ("a", "b")', "x")
        assert v.name == "LESS"


class TestControl:
    def test_if(self, value_of):
        assert value_of("val x = if 1 < 2 then \"y\" else \"n\"", "x") == "y"

    def test_andalso_short_circuit(self, value_of):
        src = ("val r = ref 0 "
               "val x = false andalso (r := 1; true) "
               "val seen = !r")
        assert value_of(src, "seen") == 0

    def test_orelse_short_circuit(self, value_of):
        src = ("val r = ref 0 "
               "val x = true orelse (r := 1; false) "
               "val seen = !r")
        assert value_of(src, "seen") == 0

    def test_while(self, value_of):
        src = ("val i = ref 0 val acc = ref 0 "
               "val _ = while !i < 5 do (acc := !acc + !i; i := !i + 1) "
               "val x = !acc")
        assert value_of(src, "x") == 10

    def test_sequence_returns_last(self, value_of):
        assert value_of("val x = (1; 2; 3)", "x") == 3

    def test_case(self, value_of):
        src = ("fun classify n = case n of 0 => \"zero\" "
               "| 1 => \"one\" | _ => \"many\" "
               "val x = (classify 0, classify 1, classify 9)")
        assert value_of(src, "x") == ("zero", "one", "many")

    def test_let_scoping(self, value_of):
        src = "val x = 1 val y = let val x = 10 in x + 1 end + x"
        assert value_of(src, "y") == 12


class TestFunctionsAndClosures:
    def test_closure_captures(self, value_of):
        src = ("fun adder n = fn m => n + m "
               "val add3 = adder 3 "
               "val x = add3 4")
        assert value_of(src, "x") == 7

    def test_partial_application(self, value_of):
        src = "fun f a b c = a + b * c val g = f 1 2 val x = g 3"
        assert value_of(src, "x") == 7

    def test_recursion_deep(self, value_of):
        src = ("fun sum (0, acc) = acc | sum (n, acc) = sum (n - 1, acc + n) "
               "val x = sum (100, 0)")
        assert value_of(src, "x") == 5050

    def test_mutual_recursion(self, value_of):
        src = ("fun even 0 = true | even n = odd (n - 1) "
               "and odd 0 = false | odd n = even (n - 1) "
               "val x = (even 10, odd 10)")
        assert value_of(src, "x") == (True, False)

    def test_val_rec(self, value_of):
        src = ("val rec loop = fn 0 => \"done\" | n => loop (n - 1) "
               "val x = loop 3")
        assert value_of(src, "x") == "done"

    def test_composition_operator(self, value_of):
        src = "val f = (fn x => x + 1) o (fn x => x * 2) val x = f 5"
        assert value_of(src, "x") == 11

    def test_clause_order(self, value_of):
        src = "fun f 0 = \"zero\" | f _ = \"other\" val x = f 0"
        assert value_of(src, "x") == "zero"

    def test_shadowed_function_static_scope(self, value_of):
        src = ("fun f x = x + 1 "
               "fun g y = f y "
               "fun f x = x * 100 "
               "val x = g 1")
        assert value_of(src, "x") == 2  # g still sees the first f


class TestDataAndPatterns:
    def test_list_sugar(self, value_of):
        v = value_of("val x = [1, 2, 3]", "x")
        assert python_list(v) == [1, 2, 3]

    def test_cons(self, value_of):
        v = value_of("val x = 1 :: 2 :: nil", "x")
        assert python_list(v) == [1, 2]

    def test_append(self, value_of):
        v = value_of("val x = [1] @ [2, 3]", "x")
        assert python_list(v) == [1, 2, 3]

    def test_list_pattern(self, value_of):
        assert value_of("val [a, b] = [10, 20] val x = a + b", "x") == 30

    def test_as_pattern(self, value_of):
        src = ("fun dup (all as (x :: _)) = x :: all | dup nil = nil "
               "val x = dup [1, 2]")
        assert python_list(value_of(src, "x")) == [1, 1, 2]

    def test_record_pattern(self, value_of):
        src = "val {a, b = c} = {a = 1, b = 2} val x = a + c"
        assert value_of(src, "x") == 3

    def test_flexible_record_pattern(self, value_of):
        src = ("fun name ({name, ...} : {name: string, age: int}) = name "
               "val x = name {name = \"sml\", age = 31}")
        assert value_of(src, "x") == "sml"

    def test_constructor_patterns(self, value_of):
        src = ("datatype shape = Circle of int | Rect of int * int "
               "fun area (Circle r) = 3 * r * r "
               "  | area (Rect (w, h)) = w * h "
               "val x = (area (Circle 2), area (Rect (3, 4)))")
        assert value_of(src, "x") == (12, 12)

    def test_nested_patterns(self, value_of):
        src = ("val x = case [(1, \"a\"), (2, \"b\")] of "
               "  (_, s) :: _ => s | nil => \"none\"")
        assert value_of(src, "x") == "a"

    def test_wildcard(self, value_of):
        assert value_of("fun k _ = 42 val x = k \"whatever\"", "x") == 42

    def test_char_pattern(self, value_of):
        src = ("fun isA #\"a\" = true | isA _ = false "
               "val x = (isA #\"a\", isA #\"b\")")
        assert value_of(src, "x") == (True, False)

    def test_string_pattern(self, value_of):
        src = ('fun f "yes" = 1 | f _ = 0 val x = f "yes"')
        assert value_of(src, "x") == 1

    def test_option(self, value_of):
        src = ("fun get (SOME x) = x | get NONE = 0 "
               "val x = (get (SOME 5), get NONE)")
        assert value_of(src, "x") == (5, 0)


class TestModulesDynamic:
    def test_structure_values(self, value_of):
        src = ("structure S = struct val a = 1 fun f x = x + a end "
               "val x = S.f S.a")
        assert value_of(src, "x") == 2

    def test_functor_application(self, value_of):
        src = ("functor Add(X : sig val n : int end) = struct "
               "  fun add m = m + X.n end "
               "structure A5 = Add(struct val n = 5 end) "
               "structure A9 = Add(struct val n = 9 end) "
               "val x = (A5.add 1, A9.add 1)")
        assert value_of(src, "x") == (6, 10)

    def test_nested_structure_access(self, value_of):
        src = ("structure A = struct structure B = struct val v = 7 end end "
               "val x = A.B.v")
        assert value_of(src, "x") == 7

    def test_open_dynamic(self, value_of):
        src = "structure S = struct val v = 3 end open S val x = v + 1"
        assert value_of(src, "x") == 4

    def test_local_dynamic(self, value_of):
        src = ("local val a = 10 in val b = a * 2 end val x = b")
        assert value_of(src, "x") == 20

    def test_constraint_no_dynamic_effect(self, value_of):
        src = ("signature S = sig val v : int end "
               "structure X :> S = struct val v = 5 end "
               "val x = X.v")
        assert value_of(src, "x") == 5

    def test_functor_body_uses_definition_env(self, value_of):
        src = ("val base = 100 "
               "structure H = struct fun bump x = x + 1 end "
               "functor F(X : sig val v : int end) = struct "
               "  val out = H.bump X.v end "
               "structure R = F(struct val v = 1 end) "
               "val x = R.out")
        assert value_of(src, "x") == 2


class TestValueFormatting:
    def test_format_list(self):
        assert format_value(sml_list([1, 2])) == "[1, 2]"

    def test_format_negative(self):
        assert format_value(-3) == "~3"

    def test_format_string_escapes(self):
        assert format_value('a"b') == '"a\\"b"'

    def test_format_char(self):
        assert format_value(Char("x")) == '#"x"'

    def test_format_word(self):
        assert format_value(Word(255)) == "0wxff"

    def test_format_bool(self):
        assert format_value(True) == "true"

    def test_format_record(self):
        assert format_value({"a": 1, "b": 2}) == "{a=1, b=2}"

    def test_format_constructor(self):
        assert format_value(VCon("SOME", 3)) == "SOME 3"
