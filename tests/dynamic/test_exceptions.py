"""Dynamic semantics of exceptions: raising, handling, generativity."""

import pytest

from repro.dynamic.values import SMLRaise


class TestRaiseHandle:
    def test_raise_and_handle(self, value_of):
        src = ("exception E "
               "val x = (raise E) handle E => 42")
        assert value_of(src, "x") == 42

    def test_handle_with_argument(self, value_of):
        src = ("exception Msg of string "
               "val x = (raise Msg \"hi\") handle Msg s => s")
        assert value_of(src, "x") == "hi"

    def test_unhandled_propagates(self, run_sml):
        with pytest.raises(SMLRaise):
            run_sml("exception E val x = raise E")

    def test_handler_ordering(self, value_of):
        src = ("exception A exception B "
               "val x = (raise B) handle A => 1 | B => 2")
        assert value_of(src, "x") == 2

    def test_non_matching_handler_reraises(self, value_of):
        src = ("exception A exception B "
               "val x = ((raise A) handle B => 1) handle A => 2")
        assert value_of(src, "x") == 2

    def test_handle_passes_through_value(self, value_of):
        src = "exception E val x = 5 handle E => 9"
        assert value_of(src, "x") == 5

    def test_raise_inside_handler(self, value_of):
        src = ("exception A exception B "
               "val x = ((raise A) handle A => raise B) handle B => 3")
        assert value_of(src, "x") == 3

    def test_wildcard_handler(self, value_of):
        src = "exception E of int val x = (raise E 1) handle _ => 0"
        assert value_of(src, "x") == 0

    def test_exn_variable_handler(self, value_of):
        src = ("val x = (raise Fail \"boom\") handle e => exnName e")
        assert value_of(src, "x") == "Fail"


class TestBuiltinExceptions:
    def test_div_by_zero(self, value_of):
        src = "val x = (1 div 0) handle Div => ~1"
        assert value_of(src, "x") == -1

    def test_mod_by_zero(self, value_of):
        src = "val x = (1 mod 0) handle Div => ~1"
        assert value_of(src, "x") == -1

    def test_hd_empty(self, value_of):
        src = "val x = hd nil handle Empty => ~1"
        assert value_of(src, "x") == -1

    def test_nth_subscript(self, value_of):
        src = "val x = List.nth ([1], 5) handle Subscript => ~1"
        assert value_of(src, "x") == -1

    def test_valOf_none(self, value_of):
        src = "val x = valOf NONE handle Option => ~1"
        assert value_of(src, "x") == -1

    def test_substring_subscript(self, value_of):
        src = 'val x = substring ("ab", 1, 5) handle Subscript => "!"'
        assert value_of(src, "x") == "!"

    def test_chr_out_of_range(self, value_of):
        src = 'val x = str (chr 999) handle Chr => "!"'
        assert value_of(src, "x") == "!"

    def test_fail_carries_message(self, value_of):
        src = 'val x = (raise Fail "boom") handle Fail m => m'
        assert value_of(src, "x") == "boom"

    def test_match_exception(self, value_of):
        src = ("fun f 0 = 1 "
               "val x = f 5 handle Match => ~1")
        assert value_of(src, "x") == -1

    def test_bind_exception(self, value_of):
        src = ("val x = (let val 1 = 2 in 0 end) handle Bind => ~1")
        assert value_of(src, "x") == -1


class TestGenerativity:
    def test_exception_generativity(self, value_of):
        # Two evaluations of the same exception declaration create
        # distinct exceptions; the inner handler must not catch the
        # outer exception of the same name.
        src = ("fun mk () = let exception E in fn () => raise E end "
               "val raise1 = mk () "
               "val x = (let exception E in raise1 () handle E => 1 end) "
               "        handle _ => 2")
        assert value_of(src, "x") == 2

    def test_exception_alias_same_identity(self, value_of):
        src = ("exception Original of int "
               "exception Alias = Original "
               "val x = (raise Alias 7) handle Original n => n")
        assert value_of(src, "x") == 7

    def test_functor_exception_generative(self, value_of):
        # Each functor application makes fresh exceptions.
        src = ("functor F(X : sig end) = struct exception E "
               "  fun throw () = raise E "
               "  fun catch f = (f (); 0) handle E => 1 end "
               "structure A = F(struct end) "
               "structure B = F(struct end) "
               "val x = (A.catch A.throw, A.catch B.throw handle _ => 99)")
        assert value_of(src, "x") == (1, 99)

    def test_exception_escapes_scope(self, value_of):
        # An exception raised after its declaring scope ends retains its
        # identity (caught only via a surviving alias).
        src = ("val (throw, catch) = "
               "  let exception Hidden "
               "  in (fn () => raise Hidden, "
               "      fn f => (f (); 0) handle Hidden => 1) end "
               "val x = catch throw")
        assert value_of(src, "x") == 1
