"""The initial basis: the SML-written prelude, bootstrapped through the
compiler itself."""

import pytest

from repro.dynamic.values import VCon, python_list


class TestListBasis:
    def test_map_filter(self, value_of):
        v = value_of(
            "val x = List.filter (fn n => n > 2) (map (fn n => n * 2) "
            "[1, 2, 3])", "x")
        assert python_list(v) == [4, 6]

    def test_foldl_foldr_order(self, value_of):
        src = ('val l = foldl (fn (c, acc) => acc ^ str c) "" '
               '(explode "abc") '
               'val r = foldr (fn (c, acc) => acc ^ str c) "" '
               '(explode "abc")')
        assert value_of(src, "l") == "abc"
        assert value_of(src, "r") == "cba"

    def test_nth_take_drop(self, value_of):
        src = ("val x = (List.nth ([10, 20, 30], 1), "
               "List.take ([1, 2, 3], 2), List.drop ([1, 2, 3], 2))")
        n, take, drop = value_of(src, "x")
        assert n == 20
        assert python_list(take) == [1, 2]
        assert python_list(drop) == [3]

    def test_concat_tabulate(self, value_of):
        src = ("val x = List.concat (List.tabulate (3, fn i => [i, i]))")
        assert python_list(value_of(src, "x")) == [0, 0, 1, 1, 2, 2]

    def test_partition(self, value_of):
        src = ("val (yes, no) = List.partition (fn n => n mod 2 = 0) "
               "[1, 2, 3, 4]")
        _env, frame = value_of.__closure__[0].cell_contents(src), None
        # simpler: use run_sml through value_of twice
        assert python_list(value_of(src + " val a = yes", "a")) == [2, 4]
        assert python_list(value_of(src + " val b = no", "b")) == [1, 3]

    def test_find(self, value_of):
        v = value_of("val x = List.find (fn n => n > 1) [1, 2, 3]", "x")
        assert isinstance(v, VCon) and v.name == "SOME" and v.arg == 2

    def test_mapPartial(self, value_of):
        src = ("val x = List.mapPartial "
               "(fn n => if n > 1 then SOME (n * n) else NONE) [1, 2, 3]")
        assert python_list(value_of(src, "x")) == [4, 9]

    def test_last(self, value_of):
        assert value_of("val x = List.last [1, 2, 3]", "x") == 3

    def test_zip(self, value_of):
        src = 'val x = List.zip ([1, 2, 3], ["a", "b"])'
        assert python_list(value_of(src, "x")) == [(1, "a"), (2, "b")]


class TestCharBasis:
    def test_predicates(self, value_of):
        src = ('val x = (Char.isDigit #"7", Char.isDigit #"x", '
               'Char.isAlpha #"g", Char.isSpace #" ", '
               'Char.isUpper #"G", Char.isLower #"g")')
        assert value_of(src, "x") == (True, False, True, True, True, True)

    def test_case_mapping(self, value_of):
        src = ('val x = (Char.toUpper #"a", Char.toLower #"Z", '
               'Char.toUpper #"!")')
        up, low, bang = value_of(src, "x")
        assert up.ch == "A" and low.ch == "z" and bang.ch == "!"

    def test_contains(self, value_of):
        src = ('val x = (Char.contains "abc" #"b", '
               'Char.contains "abc" #"z")')
        assert value_of(src, "x") == (True, False)


class TestStringBasis:
    def test_concat_with(self, value_of):
        src = ('val x = String.concatWith ", " ["a", "b", "c"]')
        assert value_of(src, "x") == "a, b, c"

    def test_concat_with_singleton(self, value_of):
        assert value_of('val x = String.concatWith "-" ["solo"]',
                        "x") == "solo"

    def test_map(self, value_of):
        src = 'val x = String.map Char.toUpper "mixed Case"'
        assert value_of(src, "x") == "MIXED CASE"

    def test_translate(self, value_of):
        src = ('val x = String.translate '
               '(fn c => if c = #" " then "_" else str c) "a b c"')
        assert value_of(src, "x") == "a_b_c"

    def test_prefix_suffix(self, value_of):
        src = ('val x = (String.isPrefix "ab" "abc", '
               'String.isPrefix "bc" "abc", '
               'String.isSuffix "bc" "abc")')
        assert value_of(src, "x") == (True, False, True)

    def test_fields_and_tokens(self, value_of):
        src = ('val f = String.fields (fn c => c = #",") "a,,b" '
               'val t = String.tokens (fn c => c = #",") "a,,b"')
        assert python_list(value_of(src, "f")) == ["a", "", "b"]
        assert python_list(value_of(src, "t")) == ["a", "b"]


class TestListPairBasis:
    def test_unzip(self, value_of):
        src = 'val (xs, ys) = ListPair.unzip [(1, "a"), (2, "b")]'
        assert python_list(value_of(src + " val out = xs", "out")) == [1, 2]
        assert python_list(value_of(src + " val out = ys",
                                    "out")) == ["a", "b"]

    def test_map(self, value_of):
        src = "val x = ListPair.map (fn (a, b) => a + b) ([1, 2], [10, 20])"
        assert python_list(value_of(src, "x")) == [11, 22]

    def test_all_exists(self, value_of):
        src = ("val x = (ListPair.all (fn (a, b) => a < b) "
               "([1, 2], [3, 4]), "
               "ListPair.exists (fn (a, b) => a = b) ([1, 2], [9, 2]))")
        assert value_of(src, "x") == (True, True)

    def test_foldl(self, value_of):
        src = ("val x = ListPair.foldl (fn (a, b, acc) => a * b + acc) 0 "
               "([1, 2, 3], [4, 5, 6])")
        assert value_of(src, "x") == 32


class TestOptionBasis:
    def test_option_map_join(self, value_of):
        src = ("val x = (Option.map (fn n => n + 1) (SOME 1), "
               "Option.join (SOME (SOME 2)), Option.join NONE)")
        a, b, c = value_of(src, "x")
        assert a == VCon("SOME", 2)
        assert b == VCon("SOME", 2)
        assert c == VCon("NONE")

    def test_get_opt(self, value_of):
        assert value_of("val x = getOpt (NONE, 9)", "x") == 9
        assert value_of("val x = getOpt (SOME 1, 9)", "x") == 1

    def test_filter(self, value_of):
        src = "val x = Option.filter (fn n => n > 0) 5"
        assert value_of(src, "x") == VCon("SOME", 5)
