"""The 128-bit CRC."""

from hypothesis import given, strategies as st

from repro.pids.crc128 import CRC128, collision_probability, crc128_hex


class TestBasics:
    def test_deterministic(self):
        assert crc128_hex(b"hello") == crc128_hex(b"hello")

    def test_distinct_inputs_distinct_digests(self):
        assert crc128_hex(b"hello") != crc128_hex(b"hellp")

    def test_digest_length(self):
        assert len(crc128_hex(b"x")) == 32
        assert len(CRC128().update(b"x").digest()) == 16

    def test_empty_input(self):
        assert len(crc128_hex(b"")) == 32

    def test_length_folded_in(self):
        # A stream and its zero-extended version must differ.
        assert crc128_hex(b"ab") != crc128_hex(b"ab\x00")
        assert crc128_hex(b"") != crc128_hex(b"\x00")

    def test_order_sensitivity(self):
        assert crc128_hex(b"ab") != crc128_hex(b"ba")

    def test_incremental_equals_oneshot(self):
        once = crc128_hex(b"hello world")
        inc = CRC128()
        inc.update(b"hello ")
        inc.update(b"world")
        assert inc.hexdigest() == once

    def test_collision_probability_paper_figure(self):
        # §5 claims: 2^13 pids -> "about 2^26 pairs" -> "about 2^-102".
        # The exact birthday bound is C(2^13, 2)/2^128 ~ 2^-103; the
        # paper's arithmetic is a factor-of-two loose, which we record in
        # EXPERIMENTS.md.  Either way: astronomically safe.
        import math

        p = collision_probability(2 ** 13)
        assert -104 < math.log2(p) < -101


class TestStatistical:
    def test_bit_balance(self):
        # Over many digests, each of the 128 bits should be ~50% set.
        ones = [0] * 128
        n = 400
        for i in range(n):
            digest = CRC128().update(f"unit-{i}".encode()).digest_int()
            for bit in range(128):
                if digest >> bit & 1:
                    ones[bit] += 1
        for bit, count in enumerate(ones):
            assert 0.3 * n < count < 0.7 * n, f"bit {bit} biased: {count}/{n}"

    def test_no_collisions_at_paper_scale_sample(self):
        # The paper's figure is 2^13 pids; hash 2^13 distinct inputs.
        seen = set()
        for i in range(2 ** 13):
            seen.add(crc128_hex(f"interface-{i}".encode()))
        assert len(seen) == 2 ** 13


class TestProperties:
    @given(st.binary(max_size=256))
    def test_stable(self, data):
        assert crc128_hex(data) == crc128_hex(data)

    @given(st.binary(max_size=128), st.binary(max_size=128))
    def test_split_invariance(self, a, b):
        inc = CRC128()
        inc.update(a)
        inc.update(b)
        assert inc.hexdigest() == crc128_hex(a + b)

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 7))
    def test_single_bit_flip_changes_digest(self, data, bit):
        flipped = bytearray(data)
        flipped[0] ^= 1 << bit
        assert crc128_hex(bytes(flipped)) != crc128_hex(data)
