"""Intrinsic pids: the properties §5 claims.

The pid must be (a) independent of stamp numbering and session, (b)
insensitive to comments and implementation details, (c) sensitive to any
interface change, (d) dependent on imported interfaces exactly where
they leak into the export.
"""

import pytest

from repro.units import Session, compile_unit


@pytest.fixture(scope="module")
def session(basis):
    return Session(basis)


def pid_of(source, session, imports=(), name="unit"):
    return compile_unit(name, source, list(imports), session).export_pid


BASE = """
signature SHOW = sig type t val show : t -> string end
structure IntShow : SHOW = struct
  type t = int
  val show = Int.toString
end
fun describe x = IntShow.show x ^ "!"
"""


class TestInsensitivity:
    def test_deterministic(self, session):
        assert pid_of(BASE, session) == pid_of(BASE, session)

    def test_comments_ignored(self, session):
        commented = "(* A new leading comment *)\n" + BASE.replace(
            "type t = int", "type t = int (* the key decision *)")
        assert pid_of(commented, session) == pid_of(BASE, session)

    def test_whitespace_ignored(self, session):
        spaced = BASE.replace("\n", "\n\n").replace("  ", "      ")
        assert pid_of(spaced, session) == pid_of(BASE, session)

    def test_implementation_change_ignored(self, session):
        # A different body with the same type.
        changed = BASE.replace('IntShow.show x ^ "!"',
                               '"[" ^ IntShow.show x ^ "]"')
        assert pid_of(changed, session) == pid_of(BASE, session)

    def test_fresh_session_same_pid(self, basis, session):
        other = Session(basis)
        # Different sessions mint different stamp numbers; alpha
        # conversion must hide that.
        assert pid_of(BASE, other) == pid_of(BASE, session)

    def test_unrelated_prior_compilation_no_effect(self, basis):
        # Stamp-counter offset: compile junk first in one session.
        s1 = Session(basis)
        s2 = Session(basis)
        pid_of("structure Junk = struct datatype j = J of j list end", s1,
               name="junk")
        assert pid_of(BASE, s1) == pid_of(BASE, s2)


class TestSensitivity:
    def test_new_exported_value(self, session):
        extended = BASE + "\nval another = 17\n"
        assert pid_of(extended, session) != pid_of(BASE, session)

    def test_changed_value_type(self, session):
        changed = BASE.replace('IntShow.show x ^ "!"',
                               'size (IntShow.show x)')
        assert pid_of(changed, session) != pid_of(BASE, session)

    def test_renamed_structure(self, session):
        renamed = BASE.replace("IntShow", "IntegerShow")
        assert pid_of(renamed, session) != pid_of(BASE, session)

    def test_signature_member_added(self, session):
        extended = BASE.replace(
            "val show : t -> string end",
            "val show : t -> string val arity : int end").replace(
            "val show = Int.toString",
            "val show = Int.toString val arity = 0")
        assert pid_of(extended, session) != pid_of(BASE, session)

    def test_datatype_constructor_added(self, session):
        v1 = "structure D = struct datatype t = A | B end"
        v2 = "structure D = struct datatype t = A | B | C end"
        assert pid_of(v1, session) != pid_of(v2, session)

    def test_opaque_vs_transparent_differ(self, session):
        sig = "signature S = sig type t val mk : int -> t end\n"
        body = "struct type t = int fun mk n = n end"
        transparent = sig + f"structure X : S = {body}"
        opaque = sig + f"structure X :> S = {body}"
        assert pid_of(transparent, session) != pid_of(opaque, session)

    def test_unit_name_is_mixed_in(self, session):
        src = "structure D = struct datatype t = A end"
        assert pid_of(src, session, name="one") != \
            pid_of(src, session, name="two")


class TestImportTracking:
    BASE_A = ("signature ORD = sig type t val le : t * t -> bool end\n"
              "structure IntOrd : ORD = struct type t = int "
              "fun le (a, b) = a <= b end")
    CLIENT = ("functor UseOrd(X : ORD) = struct\n"
              "  fun sorted2 (a, b) = if X.le (a, b) then (a, b) else (b, a)\n"
              "end")

    def test_functor_closure_tracks_import_interface(self, basis):
        s1 = Session(basis)
        a1 = compile_unit("a", self.BASE_A, [], s1)
        c1 = compile_unit("c", self.CLIENT, [a1], s1)

        s2 = Session(basis)
        changed = self.BASE_A + "\nval extra = 1"
        a2 = compile_unit("a", changed, [], s2)
        c2 = compile_unit("c", self.CLIENT, [a2], s2)
        # The client's functor closes over ORD (changed unit a), so its
        # own pid must change.
        assert c1.export_pid != c2.export_pid

    def test_non_leaking_client_pid_stable(self, basis):
        client = ("structure Probe = struct\n"
                  "  val zero = if IntOrd.le (0, 1) then 0 else 1\n"
                  "end")
        s1 = Session(basis)
        a1 = compile_unit("a", self.BASE_A, [], s1)
        c1 = compile_unit("c", client, [a1], s1)

        s2 = Session(basis)
        a2 = compile_unit("a", self.BASE_A + "\nval extra = 1", [], s2)
        c2 = compile_unit("c", client, [a2], s2)
        # The client's *interface* (val zero : int) does not mention
        # anything of a; its pid is stable although a's changed.
        assert a1.export_pid != a2.export_pid
        assert c1.export_pid == c2.export_pid

    def test_transparent_alias_does_not_leak_identity(self, basis):
        # `type u = IntOrd.t` where IntOrd.t is *transparently* int does
        # not tie the client to unit a at all: the alias expands to int.
        client = ("structure Wrap = struct\n"
                  "  type u = IntOrd.t\n"
                  "  val le = IntOrd.le\n"
                  "end")
        s1 = Session(basis)
        a1 = compile_unit("a", self.BASE_A, [], s1)
        c1 = compile_unit("c", client, [a1], s1)

        s2 = Session(basis)
        a2 = compile_unit("a", self.BASE_A + "\nval extra = 1", [], s2)
        c2 = compile_unit("c", client, [a2], s2)
        assert c1.export_pid == c2.export_pid

    DATA_A = ("structure Key = struct\n"
              "  datatype t = K of int\n"
              "  fun le (K a, K b) = a <= b\n"
              "end")

    def test_generative_type_leak_tracks_import(self, basis):
        # Re-exporting a *generative* type of unit a ties the client's
        # interface to a's pid through the (pid, index) stub.
        client = "structure Wrap = struct val mk = Key.K end"
        s1 = Session(basis)
        a1 = compile_unit("a", self.DATA_A, [], s1)
        c1 = compile_unit("c", client, [a1], s1)

        s2 = Session(basis)
        a2 = compile_unit("a", self.DATA_A + "\nval extra = 1", [], s2)
        c2 = compile_unit("c", client, [a2], s2)
        assert a1.export_pid != a2.export_pid
        assert c1.export_pid != c2.export_pid
