"""Type-safe linkage (§7): pid consistency checking."""

import pytest

from repro.linker import LinkError, Linker, check_consistency
from repro.units import Session, compile_unit


@pytest.fixture
def session(basis):
    return Session(basis)


PROVIDER_V1 = "structure P = struct fun get () = 1 end"
PROVIDER_V2 = "structure P = struct fun get () = (1, 1) end"  # new interface
CLIENT = "structure C = struct val v = P.get () end"


class TestConsistency:
    def test_consistent_set_links(self, session):
        p = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p], session)
        check_consistency([p, c])  # no error

    def test_stale_import_rejected(self, session):
        p1 = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p1], session)
        p2 = compile_unit("p", PROVIDER_V2, [], session)
        # Linking the NEW provider with the OLD client: the paper's
        # "makefile bug", caught at link time by pid mismatch.
        with pytest.raises(LinkError, match="stale"):
            check_consistency([p2, c])

    def test_interface_preserving_recompile_links(self, session):
        p1 = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p1], session)
        # Recompile the provider with a different body, same interface.
        p1b = compile_unit(
            "p", "structure P = struct fun get () = 2 - 1 end", [], session)
        assert p1b.export_pid == p1.export_pid
        check_consistency([p1b, c])  # pids match: safe to link

    def test_missing_import_rejected(self, session):
        p = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p], session)
        with pytest.raises(LinkError, match="not being linked"):
            check_consistency([c])

    def test_duplicate_unit_rejected(self, session):
        p = compile_unit("p", PROVIDER_V1, [], session)
        with pytest.raises(LinkError, match="duplicate"):
            check_consistency([p, p])


class TestLinkerExecution:
    def test_link_and_execute(self, session):
        p = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p], session)
        linker = Linker(session)
        exports = linker.link([p, c])
        assert exports["c"].structures["C"].values["v"] == 1

    def test_out_of_order_execution_rejected(self, session):
        p = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p], session)
        linker = Linker(session)
        with pytest.raises(LinkError, match="before its import"):
            linker.execute(c)

    def test_verify_can_be_disabled(self, session):
        # (For experiments that demonstrate what unsafe linking allows.)
        p1 = compile_unit("p", PROVIDER_V1, [], session)
        c = compile_unit("c", CLIENT, [p1], session)
        p2 = compile_unit("p", PROVIDER_V2, [], session)
        linker = Linker(session)
        exports = linker.link([p2, c], verify=False)
        # The stale client now computes a *wrongly-typed* value: v claims
        # to be int but holds a tuple.  This is exactly the miscomputation
        # the pid check prevents.
        assert exports["c"].structures["C"].values["v"] == (1, 1)

    def test_diamond_links_once(self, session):
        base = compile_unit(
            "base", "structure B = struct val v = ref 0 "
            "val _ = v := !v + 1 end", [], session)
        left = compile_unit(
            "left", "structure L = struct val x = !B.v end", [base],
            session)
        right = compile_unit(
            "right", "structure R = struct val y = !B.v end", [base],
            session)
        top = compile_unit(
            "top", "structure T = struct val s = L.x + R.y end",
            [left, right], session)
        linker = Linker(session)
        exports = linker.link([base, left, right, top])
        # base executed once: both sides saw the same cell value 1.
        assert exports["top"].structures["T"].values["s"] == 2
