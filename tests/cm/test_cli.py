"""The command-line build driver (python -m repro.cm)."""

import os

import pytest

from repro.cm.__main__ import main


@pytest.fixture
def srcdir(tmp_path):
    d = tmp_path / "proj"
    d.mkdir()
    (d / "base.sml").write_text(
        "structure Base = struct fun triple x = 3 * x end\n")
    (d / "main.sml").write_text(
        "structure Main = struct val answer = Base.triple 14 end\n")
    return str(d)


class TestCli:
    def test_build_and_print(self, srcdir, capsys):
        assert main([srcdir, "--print", "Main.answer"]) == 0
        out = capsys.readouterr().out
        assert "2 compiled" in out
        assert "Main.answer = 42" in out

    def test_bins_reused_on_second_run(self, srcdir, capsys):
        assert main([srcdir, "--no-link"]) == 0
        capsys.readouterr()
        assert main([srcdir, "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "0 compiled, 2 loaded" in out
        assert os.path.isdir(os.path.join(srcdir, ".bin"))

    def test_manager_choice(self, srcdir, capsys):
        assert main([srcdir, "--manager", "make", "--no-link"]) == 0
        assert "2 compiled" in capsys.readouterr().out

    def test_stats_flag(self, srcdir, capsys):
        assert main([srcdir, "--stats", "--no-link"]) == 0
        assert "total build time" in capsys.readouterr().out

    def test_type_error_reported(self, srcdir, capsys):
        with open(os.path.join(srcdir, "bad.sml"), "w") as f:
            f.write('structure Bad = struct val x = 1 + "s" end\n')
        assert main([srcdir, "--no-link"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_binding_reported(self, srcdir, capsys):
        assert main([srcdir, "--print", "Main.missing"]) == 1
        assert "not found" in capsys.readouterr().err

    def test_bad_directory(self, capsys):
        assert main(["/nonexistent/dir"]) == 2

    def test_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 2

    def test_incremental_after_edit(self, srcdir, capsys):
        assert main([srcdir, "--no-link"]) == 0
        capsys.readouterr()
        with open(os.path.join(srcdir, "main.sml"), "w") as f:
            f.write("structure Main = struct val answer = "
                    "Base.triple 10 end\n")
        assert main([srcdir, "--print", "Main.answer"]) == 0
        out = capsys.readouterr().out
        assert "1 compiled, 1 loaded" in out
        assert "Main.answer = 30" in out


class TestCmFiles:
    def test_cm_file_build(self, tmp_path, capsys):
        lib = tmp_path / "lib"
        lib.mkdir()
        (lib / "s.sml").write_text(
            "structure S = struct val v = 7 end")
        (lib / "lib.cm").write_text("group lib\nmembers\n  s.sml\n")
        app = tmp_path / "app"
        app.mkdir()
        (app / "m.sml").write_text(
            "structure M = struct val out = S.v * 6 end")
        (app / "app.cm").write_text(
            "group app\nmembers\n  m.sml\nimports\n  ../lib/lib.cm\n")
        assert main([str(app / "app.cm"), "--print", "M.out"]) == 0
        out = capsys.readouterr().out
        assert "group lib" in out and "group app" in out
        assert "M.out = 42" in out

    def test_bad_cm_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.cm"
        bad.write_text("members\n x.sml\n")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_stale_format_bins_ignored(self, srcdir, capsys):
        import json

        assert main([srcdir, "--no-link"]) == 0
        capsys.readouterr()
        # Corrupt a payload and rewrite another header with an old
        # format tag: both must be treated as cache misses.
        bin_dir = os.path.join(srcdir, ".bin")
        with open(os.path.join(bin_dir, "base.bin"), "wb") as f:
            f.write(b"garbage")
        header_path = os.path.join(bin_dir, "main.bin.json")
        with open(header_path) as f:
            header = json.load(f)
        header["format"] = 1
        with open(header_path, "w") as f:
            json.dump(header, f)
        assert main([srcdir, "--print", "Main.answer"]) == 0
        out = capsys.readouterr().out
        assert "Main.answer = 42" in out


class TestSupervisedCli:
    def test_retries_flag_builds_supervised(self, srcdir, capsys):
        assert main([srcdir, "--retries", "1", "--jobs", "2",
                     "--pool", "thread", "--print", "Main.answer"]) == 0
        out = capsys.readouterr().out
        assert "Main.answer = 42" in out
        assert "2 jobs" in out

    def test_resume_flag_reuses_the_store(self, srcdir, capsys):
        assert main([srcdir, "--no-link"]) == 0
        capsys.readouterr()
        assert main([srcdir, "--resume", "--pool", "thread",
                     "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "0 compiled, 2 loaded" in out

    def test_failed_unit_reports_incomplete(self, srcdir, capsys):
        # An elaboration error is deterministic: never retried, the
        # unit is poisoned and the exit code + ledger say so.
        with open(os.path.join(srcdir, "bad.sml"), "w") as f:
            f.write("structure Bad = struct val x = no_such_thing end\n")
        assert main([srcdir, "--retries", "2", "--pool", "thread",
                     "--no-link", "--explain"]) == 1
        captured = capsys.readouterr()
        assert "build incomplete: 1 unit(s) failed" in captured.err
        assert "see --explain" in captured.err
        assert "failed-after-retries" in captured.out
        # The healthy units were still built and saved.
        assert os.path.isdir(os.path.join(srcdir, ".bin"))


class TestGroupPrintArgument:
    @staticmethod
    def make_group(tmp_path):
        (tmp_path / "s.sml").write_text(
            "structure S = struct val v = 7 end")
        desc = tmp_path / "g.cm"
        desc.write_text("group g\nmembers\n  s.sml\n")
        return str(desc)

    def test_malformed_print_is_a_usage_error_not_a_crash(self, tmp_path,
                                                          capsys):
        # Used to die with an unhandled ValueError: the directory path
        # validated STRUCTURE.NAME, the group path did not.
        desc = self.make_group(tmp_path)
        assert main([desc, "--print", "NoDotHere"]) == 2
        assert "STRUCTURE.NAME" in capsys.readouterr().err

    def test_wellformed_print_still_works(self, tmp_path, capsys):
        desc = self.make_group(tmp_path)
        assert main([desc, "--print", "S.v"]) == 0
        assert "S.v = 7" in capsys.readouterr().out


class TestScheduleAndServe:
    def test_ready_schedule_builds(self, srcdir, capsys):
        assert main([srcdir, "--schedule", "ready", "--jobs", "2",
                     "--no-link"]) == 0
        assert "2 compiled" in capsys.readouterr().out

    def test_ready_schedule_incremental(self, srcdir, capsys):
        assert main([srcdir, "--schedule", "ready", "--no-link"]) == 0
        capsys.readouterr()
        assert main([srcdir, "--schedule", "ready", "--no-link"]) == 0
        assert "0 compiled, 2 loaded" in capsys.readouterr().out

    def test_serve_speaks_the_wire_protocol(self, srcdir, capsys,
                                            monkeypatch):
        import io
        import json
        import sys as _sys

        requests = "\n".join([
            json.dumps({"op": "ping"}),
            json.dumps({"op": "build"}),
            json.dumps({"op": "shutdown"}),
        ]) + "\n"
        monkeypatch.setattr(_sys, "stdin", io.StringIO(requests))
        assert main(["--serve", srcdir]) == 0
        lines = capsys.readouterr().out.splitlines()
        ping, build, bye = [json.loads(l) for l in lines]
        assert ping["result"]["schedule"] == "ready"
        assert build["ok"] is True
        assert build["result"]["stats"]["compiled"] == 2
        assert bye["result"] == {"bye": True}

    def test_serve_without_srcdir_requires_group_per_request(
            self, capsys, monkeypatch):
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin", io.StringIO(json.dumps({"op": "build"}) + "\n"))
        assert main(["--serve"]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is False
        assert "group" in response["error"]["message"]

    def test_no_srcdir_without_serve_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])
