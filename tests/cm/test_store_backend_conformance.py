"""The differential store-backend conformance suite.

Every :class:`~repro.cm.backend.StoreBackend` implementation -- flat
directory, sharded directory, remote-with-local-cache -- must honor the
same contracts the flat store earned in PRs 2/3/6:

- **Round trip** (PR 1): a save/load cycle reproduces every record
  byte-identically, and the export pids match the flat baseline --
  placement (shards, wire frames, cache dirs) must never leak into
  meaning.
- **Crash sweep** (PR 2): a client killed before *every single*
  client-side filesystem mutation of a save, torn or clean, leaves a
  store a fresh session loads without raising and converges from.
- **Damage at rest** (PR 2): every taxonomy fault injected where the
  authoritative pairs live (the server directory, for remote) becomes a
  typed quarantined miss in the next client, never an exception.
- **Disk full** (PR 6): ENOSPC at every client-side write either aborts
  the save cleanly (``StoreFullError``) or leaves quarantinable damage;
  recovery always converges.
- **Racing writers** (PR 3): interleaved merge-saves from two clients
  converge to the healthy union.
- **fsck/quarantine** (PR 6): ``--fsck`` sees the damage and
  ``--fsck --quarantine`` moves it aside, whichever backend fronts the
  store.

Tier 1 runs this file against the flat backend only; the full matrix
runs under ``REPRO_ALL_BACKENDS=1`` or ``pytest --backend <kind>``.
"""

import io
import contextlib
import os

import pytest

from repro.cm import BinStore, CutoffBuilder, Project, StoreFullError
from repro.cm.__main__ import main as cm_main
from repro.cm.faults import (
    FaultPlan,
    FaultyFS,
    InjectedCrash,
    TwoWriterInterleaver,
    bit_flip,
    delete_file,
    garbage_header,
    header_path,
    payload_path,
    truncate_file,
)
from repro.cm.store import QUARANTINE_DIR

SOURCES = {
    "base": "structure Base = struct fun triple x = 3 * x end",
    "mid": "structure Mid = struct fun six x = Base.triple (2 * x) end",
    "app": "structure App = struct val answer = Mid.six 7 end",
}

ANSWER = 42


@pytest.fixture(scope="module")
def clean_build():
    """A pristine in-memory build: the differential baseline every
    backend must reproduce byte-for-byte."""
    builder = CutoffBuilder(Project.from_sources(SOURCES))
    builder.build()
    pids = {name: unit.export_pid for name, unit in builder.units.items()}
    payloads = {name: builder.store.get(name).payload
                for name in builder.store.names()}
    return builder, pids, payloads


def save_through(harness, source_builder, fs=None, merge=False,
                 lock_timeout=5.0):
    """One client session writing ``source_builder``'s records through
    a fresh backend of the harness's kind."""
    backend = harness.backend(fs=fs)
    store = BinStore(fs=fs, backend=backend)
    for name in source_builder.store.names():
        store.put(source_builder.store.get(name))
    stats = store.save_directory(backend.root, merge=merge,
                                 lock_timeout=lock_timeout)
    return backend, stats


def fresh_session(harness, clean_pids, fresh_cache=True, edit=None):
    """A brand-new client over whatever is on disk/server: must not
    raise, must converge to the clean build's pids and answer."""
    backend = harness.backend(fresh_cache=fresh_cache)
    project = Project.from_sources(SOURCES)
    if edit:
        project.edit(*edit)
    store = BinStore.load_directory(backend.root, backend=backend)
    builder = CutoffBuilder(project, store=store)
    builder.build()
    exports = builder.link()
    assert exports["app"].structures["App"].values["answer"] == ANSWER
    for name, pid in clean_pids.items():
        assert builder.units[name].export_pid == pid, name
    return builder


class TestRoundTrip:
    def test_loads_what_was_saved_byte_identical(self, store_harness,
                                                 clean_build):
        builder, pids, payloads = clean_build
        save_through(store_harness, builder)
        fresh = store_harness.backend(fresh_cache=True)
        loaded = BinStore.load_directory(fresh.root, backend=fresh)
        assert loaded.health.ok, loaded.health.render_text()
        assert loaded.names() == sorted(SOURCES)
        for name in SOURCES:
            record = loaded.get(name)
            assert record.payload == payloads[name], name
            assert record.export_pid == pids[name], name

    def test_no_recompile_on_warm_load(self, store_harness, clean_build):
        builder, pids, _payloads = clean_build
        save_through(store_harness, builder)
        fresh = store_harness.backend(fresh_cache=True)
        store = BinStore.load_directory(fresh.root, backend=fresh)
        session = CutoffBuilder(Project.from_sources(SOURCES), store=store)
        report = session.build()
        assert report.compiled == []
        assert sorted(report.loaded) == sorted(SOURCES)

    def test_fsck_healthy_after_save(self, store_harness, clean_build):
        builder, _pids, _payloads = clean_build
        backend, _stats = save_through(store_harness, builder)
        report = BinStore.fsck(backend.root, backend=backend)
        assert report.ok, report.render_text()
        assert report.loaded == sorted(SOURCES)


class TestCrashSweep:
    """Kill the saving client before its N-th client-side filesystem
    mutation, for every N a save performs, torn and clean.  For the
    remote backend the mutations counted are the *cache* writes; the
    server keeps whatever the client managed to push, and the fresh
    session must cope with that partial server state too."""

    @pytest.mark.parametrize("torn", [False, True],
                             ids=["clean-cut", "torn-write"])
    def test_crash_at_every_point_of_save(self, store_harness, torn,
                                          clean_build, tmp_path):
        builder, pids, _payloads = clean_build

        counter_harness = type(store_harness)(store_harness.kind,
                                              tmp_path / "dry")
        try:
            counter = FaultyFS(FaultPlan())
            save_through(counter_harness, builder, fs=counter)
            total = counter.mutations
        finally:
            counter_harness.close()
        assert total > 6  # lock + 2 files x 3 records + manifest, at least

        for crash_at in range(total):
            harness = type(store_harness)(store_harness.kind,
                                          tmp_path / f"c{int(torn)}_{crash_at}")
            try:
                fs = FaultyFS(FaultPlan(crash_at_mutation=crash_at,
                                        torn=torn, lock_pid=-1))
                with pytest.raises(InjectedCrash):
                    save_through(harness, builder, fs=fs)
                fresh_session(harness, pids)
            finally:
                harness.close()


class TestDiskFull:
    def test_enospc_at_every_write(self, store_harness, clean_build,
                                   tmp_path):
        builder, pids, _payloads = clean_build

        counter_harness = type(store_harness)(store_harness.kind,
                                              tmp_path / "dry")
        try:
            counter = FaultyFS(FaultPlan())
            save_through(counter_harness, builder, fs=counter)
            total = counter.writes
        finally:
            counter_harness.close()
        assert total > 0

        for fail_at in range(total):
            harness = type(store_harness)(store_harness.kind,
                                          tmp_path / f"e{fail_at}")
            try:
                fs = FaultyFS(FaultPlan(enospc_at_write=fail_at,
                                        lock_pid=-1))
                try:
                    save_through(harness, builder, fs=fs)
                except StoreFullError:
                    pass  # the clean abort: typed, nothing corrupted
                builder2 = fresh_session(harness, pids)
                backend = harness.backend()
                builder2.store.save_directory(backend.root)
                report = BinStore.fsck(backend.root, backend=backend)
                assert report.ok, report.render_text()
            finally:
                harness.close()


def fault_truncate_payload(at_rest, name):
    truncate_file(payload_path(at_rest, name))


def fault_garbage_header(at_rest, name):
    garbage_header(header_path(at_rest, name))


def fault_bit_flip_payload(at_rest, name):
    bit_flip(payload_path(at_rest, name), offset=5)


def fault_orphan_header(at_rest, name):
    delete_file(payload_path(at_rest, name))


def fault_delete_record(at_rest, name):
    delete_file(header_path(at_rest, name))
    delete_file(payload_path(at_rest, name))


AT_REST_FAULTS = [
    fault_truncate_payload,
    fault_garbage_header,
    fault_bit_flip_payload,
    fault_orphan_header,
    fault_delete_record,
]


class TestDamageAtRest:
    """Damage injected where the authoritative pairs live.  For the
    remote backend that is the *server's* directory: the damage rides
    the wire verbatim (frames carry their own checksums, so this is
    at-rest damage, not transport damage) and the client's taxonomy
    must classify it exactly as if the files were local."""

    @pytest.mark.parametrize("fault", AT_REST_FAULTS,
                             ids=lambda f: f.__name__[6:])
    def test_damage_is_typed_miss_then_convergence(self, store_harness,
                                                   clean_build, fault):
        builder, pids, _payloads = clean_build
        save_through(store_harness, builder)
        fault(store_harness.at_rest_dir, "mid")
        session = fresh_session(store_harness, pids)
        assert not session.health.ok
        assert "mid" in {c.name for c in session.health.corrupt}
        assert session.store.get("mid") is not None  # recompiled

    @pytest.mark.parametrize("fault", AT_REST_FAULTS,
                             ids=lambda f: f.__name__[6:])
    def test_store_self_heals_after_resave(self, store_harness,
                                           clean_build, fault):
        builder, pids, _payloads = clean_build
        save_through(store_harness, builder)
        fault(store_harness.at_rest_dir, "mid")
        session = fresh_session(store_harness, pids)
        backend = session.store.backend
        session.store.save_directory(backend.root)
        report = BinStore.fsck(backend.root, backend=backend)
        assert report.ok, report.render_text()
        assert report.loaded == sorted(SOURCES)


class TestTwoWriters:
    """Two live clients racing merge-saves must converge to the healthy
    union -- whatever the interleaving, whatever the backend.  For
    remote, each writer gets its own cache directory (two machines);
    the server's one-op manifest merge is what keeps them convergent."""

    SCHEDULES = {
        "strict-alternation": "AB" * 120,
        "a-head-start": "A" * 5 + "B" * 200,
    }

    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_interleaved_merge_saves_converge(self, store_harness,
                                              clean_build, schedule):
        builder, pids, payloads = clean_build
        drv = TwoWriterInterleaver(self.SCHEDULES[schedule])

        def writer(fs, fresh_cache):
            backend = store_harness.backend(fs=fs, fresh_cache=fresh_cache)
            store = BinStore(fs=fs, backend=backend)
            for name in builder.store.names():
                store.put(builder.store.get(name))
            return backend, store

        backend_a, store_a = writer(drv.fs("A"), fresh_cache=False)
        backend_b, store_b = writer(drv.fs("B"), fresh_cache=True)

        stats_a, stats_b = drv.run(
            lambda: store_a.save_directory(backend_a.root, merge=True),
            lambda: store_b.save_directory(backend_b.root, merge=True))
        assert stats_a.records_written + stats_b.records_written \
            >= len(SOURCES)

        fresh = store_harness.backend(fresh_cache=True)
        loaded = BinStore.load_directory(fresh.root, backend=fresh)
        assert loaded.health.ok, loaded.health.render_text()
        assert loaded.names() == sorted(SOURCES)
        for name in SOURCES:
            assert loaded.get(name).payload == payloads[name], name


class TestCheckpointResume:
    def test_killed_build_resumes_through_any_backend(self, store_harness):
        """PR 6's checkpoints and ``--resume`` must work against any
        backend: the journal lives client-side (the cache dir, for
        remote) while checkpointed records route through the backend."""
        from repro.cm import supervised_build
        from repro.cm.store import JOURNAL_NAME
        from repro.workload import generate_workload, layered

        shape = layered([3, 3, 3], seed=1)
        backend = store_harness.backend()
        bin_dir = backend.root

        # Session 1: "killed" after checkpointing two of three waves.
        workload = generate_workload(shape, helpers_per_unit=1)
        first = CutoffBuilder(workload.project,
                              store=BinStore(backend=backend))
        partial = supervised_build(first, jobs=2, pool="thread",
                                   checkpoint_dir=bin_dir, max_waves=2)
        finished = set(partial.compiled)
        assert 0 < len(finished) < len(shape)
        journal_path = os.path.join(bin_dir, JOURNAL_NAME)
        assert os.path.exists(journal_path)

        # Session 2: resume through a fresh backend over the same
        # storage.  Completed units load, only the missing wave
        # compiles, and the journal clears on completion.
        backend2 = store_harness.backend()
        workload2 = generate_workload(shape, helpers_per_unit=1)
        store = BinStore.load_directory(bin_dir, backend=backend2)
        assert store.health.ok, store.health.render_text()
        second = CutoffBuilder(workload2.project, store=store)
        report = supervised_build(second, jobs=2, pool="thread",
                                  resume=True, checkpoint_dir=bin_dir)
        assert not report.failed and not report.skipped
        assert finished.isdisjoint(report.compiled)
        assert set(report.loaded) == finished
        assert report.resumed == len(finished)
        assert not os.path.exists(journal_path)


class TestFsckAndQuarantine:
    """The ``--fsck`` / ``--fsck --quarantine`` CLI against every
    backend (the PR-9 regression: both used to assume a flat root)."""

    def run_cli(self, harness, *extra):
        backend_args = {"flat": ["--store-backend", "flat"],
                        "sharded": ["--store-backend", "sharded"],
                        "remote": ["--store-backend", "remote",
                                   "--store-url", harness.url]}[harness.kind]
        if harness.kind == "remote":
            # fsck a brand-new client cache so damage must come over
            # the wire, not from a warm local copy
            target = harness.backend(fresh_cache=True).root
        else:
            target = harness.at_rest_dir
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            code = cm_main([target, "--fsck", *backend_args, *extra])
        return code, buf.getvalue()

    def test_fsck_sees_damage(self, store_harness, clean_build):
        builder, _pids, _payloads = clean_build
        save_through(store_harness, builder)
        bit_flip(payload_path(store_harness.at_rest_dir, "mid"), offset=3)
        code, out = self.run_cli(store_harness)
        assert code != 0
        assert "DAMAGED" in out and "payload-checksum-mismatch" in out

    def test_fsck_quarantine_moves_damage_aside(self, store_harness,
                                                clean_build):
        builder, _pids, _payloads = clean_build
        save_through(store_harness, builder)
        bit_flip(payload_path(store_harness.at_rest_dir, "mid"), offset=3)
        code, out = self.run_cli(store_harness, "--quarantine")
        assert code != 0  # damage was found (and moved aside)
        qdir = os.path.join(store_harness.at_rest_dir, QUARANTINE_DIR)
        assert os.path.isdir(qdir) and len(os.listdir(qdir)) >= 1
        # the damaged pair is gone from the live store...
        assert not os.path.exists(
            payload_path(store_harness.at_rest_dir, "mid"))
        # ...and a rebuild + resave restores full health
        backend = store_harness.backend(fresh_cache=True)
        store = BinStore.load_directory(backend.root, backend=backend)
        session = CutoffBuilder(Project.from_sources(SOURCES), store=store)
        session.build()
        session.store.save_directory(backend.root)
        assert BinStore.fsck(backend.root, backend=backend).ok
