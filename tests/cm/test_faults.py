"""The fault-injection matrix (tier 1).

The contract under test: **no damage may cost more than a recompile.**
For every fault -- a process killed before/during every single mutating
filesystem call of a save (optionally tearing the fatal write), plus
every kind of damage at rest -- a fresh session must (a) load the store
without raising, (b) report the damage in its ``StoreHealthReport``, and
(c) converge to byte-identical export pids and the same program results
as a clean from-scratch build.
"""

import pytest

from repro.cm import BinStore, CutoffBuilder, Project
from repro.cm.faults import (
    FaultPlan,
    FaultyFS,
    InjectedCrash,
    bit_flip,
    delete_file,
    garbage_header,
    header_path,
    payload_path,
    plant_stale_lock,
    truncate_file,
)

SOURCES = {
    "base": "structure Base = struct fun triple x = 3 * x end",
    "mid": "structure Mid = struct fun six x = Base.triple (2 * x) end",
    "app": "structure App = struct val answer = Mid.six 7 end",
}

ANSWER = 42


@pytest.fixture(scope="module")
def clean_pids():
    """Export pids of a pristine from-scratch build (the convergence
    target every faulted session must reproduce)."""
    builder = CutoffBuilder(Project.from_sources(SOURCES))
    builder.build()
    return {name: unit.export_pid for name, unit in builder.units.items()}


def fresh_session(bin_dir, clean_pids, edit=None):
    """A brand-new session over whatever the fault left on disk: must
    not raise, must converge to the clean build's pids and answer."""
    project = Project.from_sources(SOURCES)
    if edit:
        project.edit(*edit)
    store = BinStore.load_directory(bin_dir)  # never raises
    builder = CutoffBuilder(project, store=store)
    builder.build()  # never raises either
    exports = builder.link()
    assert exports["app"].structures["App"].values["answer"] == ANSWER
    for name, pid in clean_pids.items():
        assert builder.units[name].export_pid == pid, name
    return builder


def saved_store(bin_dir):
    builder = CutoffBuilder(Project.from_sources(SOURCES))
    builder.build()
    builder.store.save_directory(bin_dir)
    return builder


class TestCrashSweep:
    """Kill the saving process before its N-th filesystem mutation, for
    every N a save performs, torn and clean."""

    def count_mutations(self, run_save) -> int:
        fs = FaultyFS(FaultPlan())
        run_save(fs)
        return fs.mutations

    @pytest.mark.parametrize("torn", [False, True],
                             ids=["clean-cut", "torn-write"])
    def test_crash_at_every_point_of_initial_save(self, tmp_path, torn,
                                                  clean_pids):
        builder = CutoffBuilder(Project.from_sources(SOURCES))
        builder.build()

        def save_with(fs, dest):
            store = BinStore(fs=fs)
            for name in builder.store.names():
                store.put(builder.store.get(name))
            store.save_directory(dest)

        total = self.count_mutations(
            lambda fs: save_with(fs, str(tmp_path / "dry")))
        assert total > 6  # lock + 2 files x 3 records + manifest, at least

        for crash_at in range(total):
            dest = str(tmp_path / f"crash{int(torn)}_{crash_at}")
            fs = FaultyFS(FaultPlan(crash_at_mutation=crash_at, torn=torn,
                                    lock_pid=-1))
            with pytest.raises(InjectedCrash):
                save_with(fs, dest)
            fresh_session(dest, clean_pids)

    @pytest.mark.parametrize("torn", [False, True],
                             ids=["clean-cut", "torn-write"])
    def test_crash_at_every_point_of_incremental_save(self, tmp_path,
                                                      torn, clean_pids):
        """The nastier case: the crash interrupts an *update* of an
        existing store, so old and new record generations mix."""
        edit = ("base", SOURCES["base"].replace("3 * x", "x * 3"))

        def updated_store(dest, fs=None):
            saved_store(dest)
            project = Project.from_sources(SOURCES)
            project.edit(*edit)
            store = BinStore.load_directory(dest)
            if fs is not None:
                store.fs = fs
            builder = CutoffBuilder(project, store=store)
            builder.build()
            store.save_directory(dest)

        counter = FaultyFS(FaultPlan())
        updated_store(str(tmp_path / "dry"), fs=counter)
        total = counter.mutations
        assert total > 0

        edited_pids = None
        for crash_at in range(total):
            dest = str(tmp_path / f"crash{int(torn)}_{crash_at}")
            fs = FaultyFS(FaultPlan(crash_at_mutation=crash_at, torn=torn,
                                    lock_pid=-1))
            with pytest.raises(InjectedCrash):
                updated_store(dest, fs=fs)
            builder = fresh_session(dest, clean_pids, edit=edit)
            if edited_pids is None:
                edited_pids = {n: u.export_pid
                               for n, u in builder.units.items()}
            else:
                got = {n: u.export_pid for n, u in builder.units.items()}
                assert got == edited_pids  # deterministic across faults


def fault_truncate_payload(bin_dir):
    truncate_file(payload_path(bin_dir, "mid"))


def fault_truncate_header(bin_dir):
    truncate_file(header_path(bin_dir, "mid"))


def fault_bit_flip_payload(bin_dir):
    bit_flip(payload_path(bin_dir, "mid"), offset=-1, mask=0x80)


def fault_bit_flip_header(bin_dir):
    bit_flip(header_path(bin_dir, "mid"), offset=-2, mask=0x40)


def fault_orphan_header(bin_dir):
    delete_file(payload_path(bin_dir, "mid"))


def fault_orphan_payload(bin_dir):
    delete_file(header_path(bin_dir, "mid"))


def fault_delete_record(bin_dir):
    delete_file(header_path(bin_dir, "mid"))
    delete_file(payload_path(bin_dir, "mid"))


def fault_garbage_header(bin_dir):
    garbage_header(header_path(bin_dir, "mid"))


def fault_empty_payload(bin_dir):
    truncate_file(payload_path(bin_dir, "mid"), keep=0)


def fault_stale_lock_dead_pid(bin_dir):
    plant_stale_lock(bin_dir, pid=-1)


def fault_stale_lock_torn(bin_dir):
    plant_stale_lock(bin_dir, garbage=True)


DAMAGING_FAULTS = [
    fault_truncate_payload,
    fault_truncate_header,
    fault_bit_flip_payload,
    fault_bit_flip_header,
    fault_orphan_header,
    fault_orphan_payload,
    fault_delete_record,
    fault_garbage_header,
    fault_empty_payload,
]

BENIGN_FAULTS = [
    fault_stale_lock_dead_pid,
    fault_stale_lock_torn,
]


class TestDamageAtRest:
    @pytest.mark.parametrize(
        "fault", DAMAGING_FAULTS, ids=lambda f: f.__name__[6:])
    def test_damage_quarantined_and_rebuilt(self, tmp_path, fault,
                                            clean_pids):
        bin_dir = str(tmp_path / "bins")
        saved_store(bin_dir)
        fault(bin_dir)
        builder = fresh_session(bin_dir, clean_pids)
        assert not builder.health.ok
        assert "mid" in {c.name for c in builder.health.corrupt}
        # The damaged unit was recompiled, not loaded.
        assert builder.store.get("mid") is not None

    @pytest.mark.parametrize(
        "fault", BENIGN_FAULTS, ids=lambda f: f.__name__[6:])
    def test_stale_locks_broken_silently(self, tmp_path, fault,
                                         clean_pids):
        bin_dir = str(tmp_path / "bins")
        saved_store(bin_dir)
        fault(bin_dir)
        builder = fresh_session(bin_dir, clean_pids)
        assert builder.health.ok  # a stale lock is not damage
        assert any("stale" in note for note in builder.health.notes)

    @pytest.mark.parametrize(
        "fault", DAMAGING_FAULTS, ids=lambda f: f.__name__[6:])
    def test_store_self_heals_after_resave(self, tmp_path, fault,
                                           clean_pids):
        """Session 2 rebuilds over the damage and saves; session 3 must
        find a fully healthy store again."""
        bin_dir = str(tmp_path / "bins")
        saved_store(bin_dir)
        fault(bin_dir)
        builder = fresh_session(bin_dir, clean_pids)
        builder.store.save_directory(bin_dir)
        report = BinStore.fsck(bin_dir)
        assert report.ok, report.render_text()
        assert report.loaded == ["app", "base", "mid"]

    def test_everything_at_once(self, tmp_path, clean_pids):
        """All the damage, one store, one session."""
        bin_dir = str(tmp_path / "bins")
        saved_store(bin_dir)
        bit_flip(payload_path(bin_dir, "base"), offset=0)
        garbage_header(header_path(bin_dir, "mid"))
        delete_file(payload_path(bin_dir, "app"))
        plant_stale_lock(bin_dir, garbage=True)
        builder = fresh_session(bin_dir, clean_pids)
        assert builder.health.quarantined() == {"base", "mid", "app"}
