"""Multi-client daemon behaviour and the wire protocol.

Three contracts:

- **Coalescing**: concurrent requests for the same (group, manager,
  jobs, pool) join one build -- exactly one compile pass, one shared
  report -- proven deterministically via the daemon's ``build_hook`` /
  ``_Inflight.joined`` seams and the meter counters.
- **Isolation**: requests for disjoint groups run concurrently (both
  leaders are in flight at once) and never cross-talk stores.
- **Wire format**: the stdio protocol (``serve`` / ``wire_encode``) is
  golden-tested byte-for-byte -- compact key-sorted JSON, stable
  response envelopes, per-request error envelopes that never kill the
  daemon.
"""

import io
import json
import os
import threading

from repro.cm import (
    BuildDaemon,
    SupervisePolicy,
    WorkerFaults,
)
from repro.cm.daemon import PROTOCOL_VERSION, reply_to_wire, serve, wire_encode
from repro.obs import Tracer, request_rollup
from repro.workload import generate_workload
from repro.workload.shapes import chain, diamond

POLICY = SupervisePolicy(retries=1, backoff_base=0.001, backoff_cap=0.01)


def write_tree(srcdir, project):
    os.makedirs(srcdir, exist_ok=True)
    for name in project.names():
        with open(os.path.join(srcdir, name + ".sml"), "w",
                  encoding="utf-8") as fh:
            fh.write(project.source(name))


def make_group(srcdir, shape=None):
    workload = generate_workload(shape if shape is not None
                                 else diamond(2, 2), helpers_per_unit=1)
    write_tree(srcdir, workload.project)
    return workload


class TestCoalescing:
    def test_duplicate_inflight_requests_join_one_build(self, tmp_path):
        """Two concurrent same-group requests: the leader parks (via
        the build_hook seam) until the duplicate has joined, so the
        race is forced, then exactly one build serves both."""
        srcdir = str(tmp_path / "grp")
        workload = make_group(srcdir)
        tracer = Tracer()

        def park_until_joined(key, inflight):
            assert inflight.joined.wait(timeout=10.0), \
                "duplicate request never joined"

        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY,
                             meter=tracer, build_hook=park_until_joined)
        replies = []
        errors = []

        def client():
            try:
                replies.append(daemon.request(srcdir))
            except BaseException as err:  # surface in the test thread
                errors.append(err)

        try:
            threads = [threading.Thread(target=client) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
        finally:
            daemon.shutdown()
        assert not errors
        assert len(replies) == 2
        coalesced = [r for r in replies if r.coalesced]
        leaders = [r for r in replies if not r.coalesced]
        assert len(coalesced) == 1 and len(leaders) == 1
        # One build, shared verbatim: the joiner gets the leader's
        # report object, and every unit compiled exactly once.
        assert coalesced[0].report is leaders[0].report
        assert len(leaders[0].report.compiled) == len(workload.project)
        assert tracer.counters["daemon.requests"] == 2
        assert tracer.counters["daemon.builds"] == 1
        assert tracer.counters["daemon.coalesced"] == 1
        rollup = request_rollup(tracer)
        assert rollup["requests"] == 2
        assert rollup["coalesced"] == 1

    def test_fault_injected_requests_never_coalesce(self, tmp_path):
        """Fault plans are per-build instrumentation: a request carrying
        one must not join (or be joined by) another build, even when a
        same-key build is already in flight."""
        srcdir = str(tmp_path / "grp")
        make_group(srcdir)
        tracer = Tracer()
        inflights = []

        def hook(key, inflight):
            inflights.append(inflight)
            if len(inflights) == 1:
                # The first leader parks; only a *second leader*
                # reaching this hook releases it -- a joiner never
                # would (it sets the event on the shared inflight, and
                # the faulty request's inflight is private).
                inflight.joined.wait(timeout=10.0)
            else:
                inflights[0].joined.set()

        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY,
                             meter=tracer, build_hook=hook)
        replies = []
        errors = []

        def client(faults):
            try:
                replies.append(daemon.request(srcdir, faults=faults))
            except BaseException as err:
                errors.append(err)

        try:
            plain = threading.Thread(target=client, args=(None,))
            faulty = threading.Thread(
                target=client, args=(WorkerFaults(),))
            plain.start()
            faulty.start()
            plain.join(timeout=30.0)
            faulty.join(timeout=30.0)
        finally:
            daemon.shutdown()
        assert not errors
        assert len(inflights) == 2, "faulty request coalesced"
        assert [r.coalesced for r in replies] == [False, False]
        assert tracer.counters["daemon.builds"] == 2
        assert "daemon.coalesced" not in tracer.counters


class TestDisjointGroups:
    def test_disjoint_groups_build_concurrently(self, tmp_path):
        """Two different groups' leaders must be in flight at the same
        time (a shared barrier in the build hook would deadlock under
        a global build lock), and their stores must not cross-talk."""
        a_dir = str(tmp_path / "a")
        b_dir = str(tmp_path / "b")
        wl_a = make_group(a_dir, chain(3))
        wl_b = make_group(b_dir, diamond(2, 2))
        barrier = threading.Barrier(2)

        def rendezvous(key, inflight):
            barrier.wait(timeout=10.0)  # both leaders, concurrently

        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY,
                             build_hook=rendezvous)
        replies = {}
        errors = []

        def client(srcdir):
            try:
                replies[srcdir] = daemon.request(srcdir)
            except BaseException as err:
                errors.append(err)

        try:
            threads = [threading.Thread(target=client, args=(d,))
                       for d in (a_dir, b_dir)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
        finally:
            daemon.shutdown()
        assert not errors
        assert len(replies[a_dir].report.compiled) == len(wl_a.project)
        assert len(replies[b_dir].report.compiled) == len(wl_b.project)
        # No cross-talk: each bin dir holds exactly its own units.
        for srcdir, workload in ((a_dir, wl_a), (b_dir, wl_b)):
            headers = sorted(
                e[:-len(".bin.json")]
                for e in os.listdir(os.path.join(srcdir, ".bin"))
                if e.endswith(".bin.json"))
            assert headers == sorted(workload.project.names())


class TestWireFormat:
    def serve_lines(self, daemon, requests, default_group=None):
        out = io.StringIO()
        rc = serve(daemon, [json.dumps(r) if isinstance(r, dict) else r
                            for r in requests],
                   out, default_group=default_group)
        return rc, out.getvalue().splitlines()

    def test_ping_golden_bytes(self, tmp_path):
        daemon = BuildDaemon(jobs=1)
        rc, lines = self.serve_lines(daemon, [{"op": "ping", "id": "c1"}])
        assert rc == 0
        assert lines == [
            '{"id":"c1","ok":true,"op":"ping","result":'
            '{"manager":"cutoff","protocol":%d,"schedule":"ready"}}'
            % PROTOCOL_VERSION
        ]

    def test_build_response_golden(self, tmp_path):
        """The whole build envelope, byte-stable modulo wall clock."""
        srcdir = str(tmp_path / "grp")
        make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        rc, lines = self.serve_lines(daemon, [{"op": "build"}],
                                     default_group=srcdir)
        assert rc == 0 and len(lines) == 1
        response = json.loads(lines[0])
        # Re-encoding the parsed object reproduces the wire bytes
        # exactly: compact separators, sorted keys, nothing volatile
        # about the encoding itself.
        assert wire_encode(response) == lines[0]
        result = response.pop("result")
        assert response == {"id": 1, "ok": True, "op": "build"}
        assert isinstance(result.pop("wall_seconds"), float)
        assert result == {
            "group": srcdir,
            "coalesced": False,
            "store_reloaded": False,
            "sources_refreshed": 3,
            "swept": [],
            "schedule": "ready",
            "jobs": 1,
            "pool": "inline",
            "stats": {
                "compiled": 3,
                "loaded": 0,
                "cached": 0,
                "cache_hits": 0,
                "cutoff_stops": 0,
                "causes": {"store-miss": 3},
            },
            "outcomes": [
                {"name": "u000", "action": "compiled",
                 "reason": "no bin file"},
                {"name": "u001", "action": "compiled",
                 "reason": "no bin file"},
                {"name": "u002", "action": "compiled",
                 "reason": "no bin file"},
            ],
        }

    def test_wire_encode_is_insertion_order_independent(self):
        a = wire_encode({"b": 1, "a": {"d": 2, "c": 3}})
        b = wire_encode({"a": {"c": 3, "d": 2}, "b": 1})
        assert a == b == '{"a":{"c":3,"d":2},"b":1}'

    def test_reply_to_wire_matches_request_object(self, tmp_path):
        """The object API and the wire agree: serializing a DaemonReply
        gives the same payload the server would have written."""
        srcdir = str(tmp_path / "grp")
        make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        try:
            reply = daemon.request(srcdir)
        finally:
            daemon.shutdown()
        wired = reply_to_wire(reply)
        assert wired["group"] == os.path.abspath(srcdir)
        assert wired["stats"]["compiled"] == 3
        assert [o["name"] for o in wired["outcomes"]] == \
            ["u000", "u001", "u002"]

    def test_errors_are_per_request_not_fatal(self, tmp_path):
        """Bad line, unknown op, missing group: each gets an ok:false
        envelope and the daemon keeps serving (the ping after them
        still answers)."""
        srcdir = str(tmp_path / "grp")
        make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        rc, lines = self.serve_lines(daemon, [
            "this is not json",
            {"op": "frobnicate", "id": 7},
            {"op": "build"},  # no group, no default
            {"op": "explain", "group": srcdir},  # no build yet
            {"op": "ping"},
        ])
        assert rc == 0 and len(lines) == 5
        bad_json, bad_op, no_group, no_build, ping = \
            [json.loads(l) for l in lines]
        assert bad_json["ok"] is False
        assert bad_json["id"] == 1  # ordinal fallback
        assert bad_op == {"id": 7, "ok": False,
                          "error": {"type": "DaemonError",
                                    "message": "unknown op 'frobnicate'"}}
        assert no_group["ok"] is False
        assert "group" in no_group["error"]["message"]
        assert no_build["ok"] is False
        assert no_build["error"]["type"] == "DaemonError"
        assert ping["ok"] is True

    def test_shutdown_op_stops_serving(self, tmp_path):
        srcdir = str(tmp_path / "grp")
        make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        rc, lines = self.serve_lines(daemon, [
            {"op": "shutdown"},
            {"op": "ping"},  # after shutdown: must never be served
        ], default_group=srcdir)
        assert rc == 0
        assert len(lines) == 1
        assert json.loads(lines[0])["result"] == {"bye": True}
        # The daemon is really down, not just out of the loop.
        try:
            daemon.request(srcdir)
            raise AssertionError("shut-down daemon served a request")
        except Exception as err:
            assert "shut down" in str(err)

    def test_explain_over_the_wire(self, tmp_path):
        srcdir = str(tmp_path / "grp")
        make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        rc, lines = self.serve_lines(daemon, [
            {"op": "build"},
            {"op": "explain", "unit": "u000"},
        ], default_group=srcdir)
        assert rc == 0
        explain = json.loads(lines[1])
        assert explain["ok"] is True
        assert "u000" in explain["result"]["text"]
        assert "recompiled" in explain["result"]["text"]


class TestTelemetryOps:
    def test_explain_diff_trace_and_stats_over_the_wire(self, tmp_path):
        """One daemon session: build, edit an interface on disk, build
        again with an inline trace, then ask what changed and for the
        rolled-up stats."""
        srcdir = str(tmp_path / "grp")
        workload = make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY,
                             trace_sample=2)

        def requests():
            yield json.dumps({"op": "build", "id": "b1"})
            # Edit between requests: the generator runs interleaved
            # with serving, so the second build sees the new source.
            workload.edit_interface("u000")
            write_tree(srcdir, workload.project)
            yield json.dumps({"op": "build", "id": "b2", "trace": True})
            yield json.dumps({"op": "explain-diff", "id": "d"})
            yield json.dumps({"op": "explain-diff", "id": "d1",
                              "unit": "u000"})
            yield json.dumps({"op": "stats", "id": "s"})
            yield json.dumps({"op": "shutdown", "id": "q"})

        out = io.StringIO()
        rc = serve(daemon, requests(), out, default_group=srcdir)
        assert rc == 0
        by_id = {r["id"]: r for r in
                 (json.loads(line) for line in out.getvalue().splitlines())}
        assert all(r["ok"] for r in by_id.values()), by_id

        # Plain build replies carry no trace; opted-in ones do.
        assert "trace" not in by_id["b1"]["result"]
        trace = by_id["b2"]["result"]["trace"]
        assert sorted(trace["ledger"]["units"]) == \
            ["u000", "u001", "u002"]
        assert sorted(trace["dispatch_order"]) == \
            ["u000", "u001", "u002"]
        assert trace["phase_totals"]["elaborate"] >= 0

        # The diff compares build 2 against build 1's profile.
        text = by_id["d"]["result"]["text"]
        assert "explain-diff vs build #1" in text
        assert "u000: decision changed" in text
        assert "store-miss" in text and "source-changed" in text
        assert "u000" in by_id["d1"]["result"]["text"]
        assert "u001" not in by_id["d1"]["result"]["text"]

        # Stats: always-on counters, hit rate, sampling bookkeeping.
        stats = by_id["s"]["result"]
        assert stats["groups"] == 1
        assert stats["requests_served"] == 2
        telemetry = stats["telemetry"]
        assert telemetry["builds_seen"] == 2
        assert telemetry["sampled_builds"] == 1  # 1-in-2: build 1
        # Build 1 compiles all 3; build 2 recompiles u000 (source) and
        # u001 (import pid), but cutoff stops the cascade at u002.
        counters = telemetry["counters"]
        assert counters["units.compiled"] == 5
        reused = (counters.get("units.loaded", 0)
                  + counters.get("units.cached", 0))
        assert reused == 1
        assert stats["hit_rate"] == round(1 / 6, 6)

        # Both builds left durable profiles in the ring buffer.
        profile_dir = os.path.join(srcdir, ".bin", "profiles")
        assert sorted(os.listdir(profile_dir)) == \
            ["BUILD_PROFILE-1.json", "BUILD_PROFILE-2.json"]

    def test_explain_diff_before_any_build_is_an_error(self, tmp_path):
        srcdir = str(tmp_path / "grp")
        make_group(srcdir, chain(3))
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        out = io.StringIO()
        rc = serve(daemon, [json.dumps({"op": "explain-diff"})], out,
                   default_group=srcdir)
        assert rc == 0
        response = json.loads(out.getvalue())
        assert response["ok"] is False
        assert response["error"]["type"] == "DaemonError"

    def test_longest_first_priority_daemon_builds_identically(
            self, tmp_path):
        """A longest-first daemon produces the same pids as a
        name-order one -- priority is scheduling, not semantics."""
        a_dir = str(tmp_path / "a")
        b_dir = str(tmp_path / "b")
        make_group(a_dir, chain(3))
        make_group(b_dir, chain(3))
        named = BuildDaemon(jobs=2, pool="thread", policy=POLICY)
        keyed = BuildDaemon(jobs=2, pool="thread", policy=POLICY,
                            priority="longest-first")

        def pids(daemon, srcdir):
            try:
                # Twice: the second build has a profile to draw on.
                daemon.request(srcdir)
                reply = daemon.request(srcdir)
            finally:
                daemon.shutdown()
            state = daemon._states[os.path.abspath(srcdir)]
            builder = state.builders["cutoff"]
            assert sorted(reply.report.dispatch_order) == \
                ["u000", "u001", "u002"]
            return {n: u.export_pid for n, u in builder.units.items()}

        assert pids(named, a_dir) == pids(keyed, b_dir)

    def test_unknown_priority_is_rejected(self):
        try:
            BuildDaemon(priority="shortest-first")
        except Exception as err:
            assert "priority" in str(err)
        else:
            raise AssertionError("bad priority accepted")
