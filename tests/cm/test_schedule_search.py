"""Bounded exhaustive schedule search (tier 1).

test_concurrent_writers.py replays a handful of hand-picked
interleavings; this suite explores the *space*.  With
``mutations_only=True`` every schedule character names exactly one
store mutation point, so enumerating every prefix of depth K
(:func:`bounded_schedules`) covers every way the first K mutating
filesystem calls of two racing merge-saves can interleave -- bounded
exhaustive search in the model-checking sense.  The claim: **every**
schedule converges to a store that fsck calls healthy and that holds
the union of both writers' records.
"""

import os

import pytest

from repro.cm import BinStore, CutoffBuilder
from repro.cm.faults import (
    ScheduleFailure,
    TwoWriterInterleaver,
    bounded_schedules,
    fault_seed,
    sampled_schedules,
    search_schedules,
)
from repro.workload import diamond, generate_workload

SHAPE = diamond(2, 1)  # u000 base, u001+u002 layer, u003 top
DEPTH = 7  # 2**7 = 128 schedules >= the 100 the acceptance bar asks


@pytest.fixture(scope="module")
def writers():
    """Both writers' record sets, built ONCE; each schedule then only
    pays two merge-saves, not two builds."""
    workload_a = generate_workload(SHAPE, helpers_per_unit=1)
    builder_a = CutoffBuilder(workload_a.project)
    builder_a.build()
    workload_b = generate_workload(SHAPE, helpers_per_unit=1)
    workload_b.edit_implementation("u001")
    builder_b = CutoffBuilder(workload_b.project)
    builder_b.build()
    return builder_a, builder_b, workload_b


def store_with(records, fs):
    """A fresh dirty store holding ``records``, saving through ``fs``."""
    store = BinStore(fs=fs)
    for record in records:
        store.put(record)
    return store


class TestBoundedExhaustiveSearch:
    def test_every_schedule_converges(self, tmp_path, writers):
        builder_a, builder_b, workload_b = writers
        records_a = [builder_a.store.get(n) for n in builder_a.store.names()]
        records_b = [builder_b.store.get(n) for n in builder_b.store.names()]
        union = sorted(builder_b.units)

        def run_one(schedule):
            drv = TwoWriterInterleaver(schedule, mutations_only=True)
            store_a = store_with(records_a, drv.fs("A"))
            store_b = store_with(records_b, drv.fs("B"))
            store_dir = str(tmp_path / schedule)
            drv.run(
                lambda: store_a.save_directory(store_dir, merge=True),
                lambda: store_b.save_directory(store_dir, merge=True))
            return drv

        def check(schedule, drv):
            store_dir = str(tmp_path / schedule)
            fsck = BinStore.fsck(store_dir)
            assert fsck.ok, f"{schedule}: {fsck.render_text()}"
            loaded = BinStore.load_directory(store_dir)
            assert sorted(loaded.names()) == union, schedule

        report = search_schedules(bounded_schedules(DEPTH), run_one, check)
        assert report.explored == 2 ** DEPTH >= 100
        assert report.ok, [f.schedule for f in report.failures]
        # The search really exercised distinct interleavings, and the
        # realized traces are the state count the benchmark reports.
        assert 1 < report.states <= report.explored
        assert f"{report.explored} schedule(s)" in report.summary()
        assert "all converged" in report.summary()

        # Spot-check full convergence (pids, not just health) on the
        # extreme schedules: A-first, B-first, strict alternation.
        for schedule in ("A" * DEPTH, "B" * DEPTH, "AB" * (DEPTH // 2)):
            loaded = BinStore.load_directory(str(tmp_path / schedule))
            rebuild = CutoffBuilder(workload_b.project, store=loaded)
            rebuild.build()
            assert ({n: u.export_pid for n, u in rebuild.units.items()}
                    == {n: u.export_pid for n, u in builder_b.units.items()})

    def test_failures_are_collected_not_raised(self):
        """One bad schedule must not abort the sweep."""
        seen = []

        def run_one(schedule):
            seen.append(schedule)
            if schedule == "AB":
                raise RuntimeError("injected divergence")
            return None

        report = search_schedules(bounded_schedules(2), run_one)
        assert report.explored == 4
        assert len(seen) == 4  # the sweep kept going past the failure
        assert not report.ok
        [failure] = report.failures
        assert isinstance(failure, ScheduleFailure)
        assert failure.schedule == "AB"
        assert "injected divergence" in failure.error
        assert "1 FAILED" in report.summary()


class TestScheduleGenerators:
    def test_bounded_is_exhaustive_and_ordered(self):
        assert list(bounded_schedules(2)) == ["AA", "AB", "BA", "BB"]
        assert len(set(bounded_schedules(5))) == 32

    def test_sampled_is_seed_deterministic(self, monkeypatch):
        first = list(sampled_schedules(6, 10, seed=7))
        assert first == list(sampled_schedules(6, 10, seed=7))
        assert first != list(sampled_schedules(6, 10, seed=8))
        assert all(len(s) == 6 and set(s) <= {"A", "B"} for s in first)
        # The env knob: REPRO_FAULT_SEED reproduces a CI sample.
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        assert fault_seed() == 7
        assert list(sampled_schedules(6, 10)) == first
        monkeypatch.setenv("REPRO_FAULT_SEED", "not-a-number")
        assert fault_seed(default=3) == 3
