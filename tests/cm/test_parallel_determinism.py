"""The differential determinism matrix (tier 1).

The contract under test: **a parallel build is byte-identical to a
serial build.**  For every workload shape x jobs count x edit kind, the
wavefront-parallel build must produce exactly the export pids and
exactly the on-disk store bytes (records, headers, MANIFEST.json) of
the serial build -- and the same holds when the store the build starts
from was damaged by an injected crash, a torn write, slow IO, or two
racing writers.  Pid intrinsicness is what makes this provable: a
worker's compile depends only on the source text and the imports'
dehydrated interfaces, never on scheduling.
"""

import os
import shutil

import pytest

from repro.cm import (
    BinStore,
    CutoffBuilder,
    ParallelBuildError,
    SmartBuilder,
    TimestampBuilder,
    WorkerFaults,
    parallel_build,
)
from repro.cm.faults import FaultPlan, FaultyFS, InjectedCrash, SlowFS
from repro.cm.store import LOCK_NAME, RECORD_LOCK_SUFFIX
from repro.workload import generate_workload
from repro.workload.shapes import chain, diamond, fanout

SHAPES = {
    "chain": lambda: chain(5),
    "diamond": lambda: diamond(2, 2),
    "fanout": lambda: fanout(5),
}

#: edit name -> (workload edit method, unit to edit)
EDITS = {
    "clean": None,
    "comment-edit": ("edit_comment", "u001"),
    "interface-edit": ("edit_interface", "u000"),
}

JOBS = [1, 2, 4, 8]


def store_files(store_dir):
    """Every store file's bytes, locks excluded (locks are transient)."""
    out = {}
    for entry in sorted(os.listdir(store_dir)):
        if entry == LOCK_NAME or entry.endswith(RECORD_LOCK_SUFFIX):
            continue
        with open(os.path.join(store_dir, entry), "rb") as f:
            out[entry] = f.read()
    return out


def build_flow(shape, edit, jobs, store_dir, cls=CutoffBuilder,
               pool="thread"):
    """One full incremental flow: clean build + save, then (optionally)
    edit + fresh session + rebuild + save.  ``jobs=0`` means the classic
    serial loop; any other count goes through the wavefront scheduler
    (jobs=1 runs the worker code inline -- same code path, no pool)."""

    def run(builder):
        if jobs == 0:
            return builder.build()
        return parallel_build(builder, jobs=jobs,
                              pool=pool if jobs > 1 else "inline")

    workload = generate_workload(SHAPES[shape](), helpers_per_unit=1)
    builder = cls(workload.project)
    run(builder)
    builder.store.save_directory(store_dir)
    if EDITS[edit] is not None:
        method, unit = EDITS[edit]
        getattr(workload, method)(unit)
        builder = cls(workload.project,
                      store=BinStore.load_directory(store_dir))
        run(builder)
        builder.store.save_directory(store_dir)
    pids = {name: u.export_pid for name, u in builder.units.items()}
    return pids, store_files(store_dir)


_serial_memo = {}


def serial_reference(shape, edit, tmp_path_factory, cls=CutoffBuilder):
    key = (shape, edit, cls.__name__)
    if key not in _serial_memo:
        dest = str(tmp_path_factory.mktemp("serial"))
        _serial_memo[key] = build_flow(shape, edit, 0, dest, cls=cls)
    return _serial_memo[key]


class TestDeterminismMatrix:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("edit", sorted(EDITS))
    @pytest.mark.parametrize("jobs", JOBS)
    def test_parallel_matches_serial_byte_for_byte(
            self, tmp_path, tmp_path_factory, shape, edit, jobs):
        want_pids, want_files = serial_reference(shape, edit,
                                                tmp_path_factory)
        got_pids, got_files = build_flow(shape, edit, jobs,
                                         str(tmp_path / "par"))
        assert got_pids == want_pids
        assert got_files == want_files  # headers, payloads, MANIFEST

    @pytest.mark.parametrize("cls", [SmartBuilder, TimestampBuilder],
                             ids=["smart", "make"])
    def test_other_managers_deterministic_too(self, tmp_path,
                                              tmp_path_factory, cls):
        want = serial_reference("diamond", "interface-edit",
                                tmp_path_factory, cls=cls)
        got = build_flow("diamond", "interface-edit", 4,
                         str(tmp_path / "par"), cls=cls)
        assert got == want

    def test_process_pool_matches_serial(self, tmp_path,
                                         tmp_path_factory):
        """One cell on a real process pool (the CLI default); the rest
        of the matrix runs on threads for speed -- the worker code is
        identical, only the executor differs."""
        want = serial_reference("fanout", "clean", tmp_path_factory)
        got = build_flow("fanout", "clean", 2, str(tmp_path / "par"),
                         pool="process")
        assert got == want


class TestParallelBuildErrorPayload:
    """A failed worker must be attributable: the raised error carries
    the unit that died and the wave it was scheduled in."""

    def test_error_carries_unit_and_wave(self):
        workload = generate_workload(SHAPES["fanout"](),
                                     helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        faults = WorkerFaults(crash_units=frozenset({"u003"}))
        with pytest.raises(ParallelBuildError) as excinfo:
            parallel_build(builder, jobs=4, pool="thread", faults=faults)
        err = excinfo.value
        assert err.name == "u003"
        assert err.wave == 1  # fanout: root is wave 0, leaves wave 1
        assert err.exc_type == "InjectedCrash"
        assert "u003 (wave 1)" in str(err)

    def test_root_crash_is_wave_zero(self):
        workload = generate_workload(SHAPES["fanout"](),
                                     helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        faults = WorkerFaults(crash_units=frozenset({"u000"}))
        with pytest.raises(ParallelBuildError) as excinfo:
            parallel_build(builder, jobs=2, pool="thread", faults=faults)
        assert (excinfo.value.name, excinfo.value.wave) == ("u000", 0)


class TestDeterminismUnderFaults:
    """Serial and parallel sessions over the *same damage* must converge
    to the same bytes."""

    def _damaged_store(self, tmp_path, crash_at, torn):
        """A store whose incremental update was killed mid-save."""
        workload = generate_workload(SHAPES["diamond"](),
                                     helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        builder.build()
        source_dir = str(tmp_path / "src")
        builder.store.save_directory(source_dir)
        workload.edit_interface("u000")
        store = BinStore.load_directory(source_dir)
        store.fs = FaultyFS(FaultPlan(crash_at_mutation=crash_at,
                                      torn=torn, lock_pid=-1))
        builder = CutoffBuilder(workload.project, store=store)
        builder.build()
        with pytest.raises(InjectedCrash):
            store.save_directory(source_dir)
        return workload, source_dir

    @pytest.mark.parametrize("torn", [False, True],
                             ids=["clean-cut", "torn-write"])
    @pytest.mark.parametrize("crash_at", [2, 5])
    def test_crash_damage(self, tmp_path, crash_at, torn):
        workload, damaged = self._damaged_store(tmp_path, crash_at, torn)
        serial_dir = str(tmp_path / "serial")
        par_dir = str(tmp_path / "par")
        shutil.copytree(damaged, serial_dir)
        shutil.copytree(damaged, par_dir)

        serial = CutoffBuilder(workload.project,
                               store=BinStore.load_directory(serial_dir))
        serial.build()
        serial.store.save_directory(serial_dir)

        par = CutoffBuilder(workload.project,
                            store=BinStore.load_directory(par_dir))
        parallel_build(par, jobs=4, pool="thread")
        par.store.save_directory(par_dir)

        assert ({n: u.export_pid for n, u in par.units.items()}
                == {n: u.export_pid for n, u in serial.units.items()})
        assert store_files(par_dir) == store_files(serial_dir)

    def test_slow_io(self, tmp_path):
        """Latency changes nothing but the clock: a store saved through
        SlowFS is byte-identical to one saved at full speed."""
        fast_dir = str(tmp_path / "fast")
        slow_dir = str(tmp_path / "slow")
        _pids, fast_files = build_flow("chain", "comment-edit", 0,
                                       fast_dir)

        workload = generate_workload(SHAPES["chain"](),
                                     helpers_per_unit=1)
        slow_fs = SlowFS(write_delay=0.001)
        builder = CutoffBuilder(workload.project,
                                store=BinStore(fs=slow_fs))
        parallel_build(builder, jobs=4, pool="thread")
        builder.store.save_directory(slow_dir)
        workload.edit_comment("u001")
        builder = CutoffBuilder(
            workload.project,
            store=BinStore.load_directory(slow_dir, fs=slow_fs))
        parallel_build(builder, jobs=4, pool="thread")
        builder.store.save_directory(slow_dir)

        assert slow_fs.op_log  # the latency really was injected
        assert store_files(slow_dir) == fast_files

    def test_two_writer_store(self, tmp_path):
        """After two racing merge-writers, serial and parallel sessions
        over the surviving store converge to identical bytes."""
        from repro.cm.faults import TwoWriterInterleaver

        racing = str(tmp_path / "racing")
        workload = generate_workload(SHAPES["fanout"](),
                                     helpers_per_unit=1)
        drv = TwoWriterInterleaver("AB" * 60)
        store_a = BinStore(fs=drv.fs("A"))
        builder_a = CutoffBuilder(workload.project, store=store_a)
        builder_a.build()
        workload_b = generate_workload(SHAPES["fanout"](),
                                       helpers_per_unit=1)
        workload_b.edit_implementation("u002")
        store_b = BinStore(fs=drv.fs("B"))
        builder_b = CutoffBuilder(workload_b.project, store=store_b)
        builder_b.build()
        drv.run(lambda: store_a.save_directory(racing, merge=True),
                lambda: store_b.save_directory(racing, merge=True))
        assert BinStore.fsck(racing).ok

        serial_dir = str(tmp_path / "serial")
        par_dir = str(tmp_path / "par")
        shutil.copytree(racing, serial_dir)
        shutil.copytree(racing, par_dir)
        serial = CutoffBuilder(
            workload_b.project,
            store=BinStore.load_directory(serial_dir))
        serial.build()
        serial.store.save_directory(serial_dir)
        par = CutoffBuilder(workload_b.project,
                            store=BinStore.load_directory(par_dir))
        parallel_build(par, jobs=4, pool="thread")
        par.store.save_directory(par_dir)

        assert ({n: u.export_pid for n, u in par.units.items()}
                == {n: u.export_pid for n, u in serial.units.items()})
        assert store_files(par_dir) == store_files(serial_dir)
