"""Concurrent-writer store safety (tier 1).

PR 2 made the bin store crash-safe against a *dying* writer.  This
suite covers the other half: two *live* writers racing on one store
directory.  The deterministic :class:`TwoWriterInterleaver` replays
exact filesystem interleavings (no sleeps, no flaky timing), and the
claims under test are the merge-save invariants:

- any interleaving of two merge-saves leaves a store that fsck calls
  healthy -- no ``CorruptRecord``, no mixed header/payload pair;
- the surviving store is the union of both writers' records
  (last-writer-wins per record), so a follow-up build pays at most
  redundant recompiles, never corruption;
- a live-but-slow writer (SlowFS) keeps its lock: the stale-lock
  breaker tests liveness, not patience.
"""

import json
import os
import threading
import time

import pytest

from repro.cm import (
    BinStore,
    CutoffBuilder,
    StoreLockedError,
)
from repro.cm.faults import SlowFS, TwoWriterInterleaver, plant_stale_lock
from repro.cm.store import (
    HEADER_SUFFIX,
    LOCK_NAME,
    MANIFEST_NAME,
    PAYLOAD_SUFFIX,
    RECORD_LOCK_SUFFIX,
    StoreLock,
)
from repro.workload import diamond, generate_workload

SHAPE = diamond(2, 1)  # u000 base, u001+u002 layer, u003 top


def built_store(fs=None, edit=None):
    """A freshly built in-memory store (not yet saved anywhere)."""
    workload = generate_workload(SHAPE, helpers_per_unit=1)
    if edit is not None:
        method, unit = edit
        getattr(workload, method)(unit)
    builder = CutoffBuilder(workload.project,
                            store=BinStore(fs=fs) if fs else BinStore())
    builder.build()
    return workload, builder


SCHEDULES = {
    "strict-alternation": "AB" * 80,
    "pairs": "AABB" * 40,
    "palindrome": "ABBA" * 40,
    "a-head-start": "A" * 5 + "B" * 150,
    "b-first": "BA" * 80,
}


class TestInterleavedMergeSaves:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES),
                             ids=sorted(SCHEDULES))
    def test_any_interleaving_converges_healthy(self, tmp_path, schedule):
        store_dir = str(tmp_path / "store")
        drv = TwoWriterInterleaver(SCHEDULES[schedule])
        _wl_a, builder_a = built_store(fs=drv.fs("A"))
        workload_b, builder_b = built_store(
            fs=drv.fs("B"), edit=("edit_implementation", "u001"))

        stats_a, stats_b = drv.run(
            lambda: builder_a.store.save_directory(store_dir, merge=True),
            lambda: builder_b.store.save_directory(store_dir, merge=True))

        # Both writers really wrote, and the schedule really interleaved.
        assert stats_a.records_written == len(SHAPE)
        assert stats_b.records_written == len(SHAPE)
        assert {"A", "B"} <= set(drv.trace)

        # The store is healthy: every surviving header+payload pair is
        # internally consistent (a mixed pair would fail its
        # whole-record digest and show up as CorruptRecord).
        report = BinStore.fsck(store_dir)
        assert report.ok, report.render_text()
        loaded = BinStore.load_directory(store_dir)
        assert not loaded.health.corrupt
        assert sorted(loaded.names()) == sorted(builder_b.units)

        # Convergence: a fresh session over the raced store pays at
        # most redundant recompiles (A-version records for B's edited
        # cascade), never a failure, and lands on B's pids.
        rebuild = CutoffBuilder(workload_b.project, store=loaded)
        report_b = rebuild.build()
        assert all(o.action in ("cached", "loaded", "compiled")
                   for o in report_b.outcomes)
        assert ({n: u.export_pid for n, u in rebuild.units.items()}
                == {n: u.export_pid for n, u in builder_b.units.items()})

    def test_merge_preserves_unmanifested_records(self, tmp_path):
        """A record pair on disk but absent from the manifest may be
        another live writer's not-yet-manifested work: merge saves must
        leave it alone (exclusive saves prune it as debris)."""
        store_dir = str(tmp_path / "store")
        _wl, builder = built_store()
        builder.store.save_directory(store_dir)

        manifest_path = os.path.join(store_dir, MANIFEST_NAME)
        with open(manifest_path) as f:
            manifest = json.load(f)
        orphan_stem = sorted(manifest["records"])[0]
        del manifest["records"][orphan_stem]
        with open(manifest_path, "w") as f:
            json.dump(manifest, f)

        other_wl, other = built_store(edit=("edit_comment", "u003"))
        stats = other.store.save_directory(store_dir, merge=True)
        assert orphan_stem not in "".join(stats.pruned)
        on_disk = set(os.listdir(store_dir))
        assert any(e.startswith(orphan_stem + ".") for e in on_disk)

        # ... while the exclusive save, which assumes sole ownership,
        # does prune what it does not know (crash-debris hygiene).
        lone_wl, lone = built_store()
        lone.store._records.pop("u000")
        lone.store._dirty.discard("u000")
        exclusive_dir = str(tmp_path / "exclusive")
        lone.store.save_directory(exclusive_dir)
        lone.store.save_directory(exclusive_dir)  # settle _loaded_from
        stranger_hdr = "zzz" + HEADER_SUFFIX
        stranger_pay = "zzz" + PAYLOAD_SUFFIX
        with open(os.path.join(exclusive_dir, stranger_hdr), "w") as f:
            f.write("{}")
        with open(os.path.join(exclusive_dir, stranger_pay), "wb") as f:
            f.write(b"x")
        stats = lone.store.save_directory(exclusive_dir)
        assert stranger_hdr in stats.pruned
        assert stranger_pay in stats.pruned

    def test_dead_record_lock_is_swept_live_one_blocks(self, tmp_path):
        store_dir = str(tmp_path / "store")
        _wl, builder = built_store()
        builder.store.save_directory(store_dir, merge=True)

        # A dead writer's .rlock on a record nobody is writing: swept
        # by the next merge save's cleanup pass, ignored by the loader.
        swept = os.path.join(store_dir, "departed" + RECORD_LOCK_SUFFIX)
        with open(swept, "w") as f:
            json.dump({"pid": -1}, f)
        # ... and one on a record the writer IS about to write: broken
        # by that writer's own rlock acquisition instead.
        broken = os.path.join(store_dir, "u000" + RECORD_LOCK_SUFFIX)
        with open(broken, "w") as f:
            json.dump({"pid": -1}, f)
        loaded = BinStore.load_directory(store_dir)
        assert loaded.health.ok
        _wl2, again = built_store(edit=("edit_comment", "u000"))
        stats = again.store.save_directory(store_dir, merge=True)
        assert "departed" + RECORD_LOCK_SUFFIX in stats.pruned
        assert not os.path.exists(swept)
        assert not os.path.exists(broken)

        # A live writer's .rlock (same pid, alive) blocks a merge save
        # that needs the same record, with a clean StoreLockedError.
        live = os.path.join(store_dir, "u000" + RECORD_LOCK_SUFFIX)
        with open(live, "w") as f:
            json.dump({"pid": os.getpid()}, f)
        _wl3, blocked = built_store(edit=("edit_comment", "u000"))
        with pytest.raises(StoreLockedError):
            blocked.store.save_directory(store_dir, merge=True,
                                         lock_timeout=0.05)
        os.remove(live)
        blocked.store.save_directory(store_dir, merge=True)
        assert BinStore.fsck(store_dir).ok


class TestSlowWriterKeepsItsLock:
    """The stale-lock breaker's litmus test: *slow* is not *dead*."""

    def _slow_save(self, store_dir, write_delay=0.05):
        """Start an exclusive save through SlowFS in a thread; return
        (thread, results dict) once the store lock is on disk."""
        first_stall = threading.Event()

        def sleep(delay):
            first_stall.set()
            time.sleep(delay)

        slow_fs = SlowFS(write_delay=write_delay, sleep=sleep)
        _wl, builder = built_store(fs=slow_fs)
        results = {}

        def save():
            results["stats"] = builder.store.save_directory(store_dir)

        thread = threading.Thread(target=save)
        thread.start()
        assert first_stall.wait(5.0)
        lock_path = os.path.join(store_dir, LOCK_NAME)
        deadline = time.monotonic() + 5.0
        while not os.path.exists(lock_path):
            assert time.monotonic() < deadline, "lock never appeared"
            time.sleep(0.001)
        return thread, results

    def test_live_slow_writers_lock_is_never_broken(self, tmp_path):
        store_dir = str(tmp_path / "store")
        _wl, other = built_store()  # built up front: contending must
        thread, results = self._slow_save(store_dir)  # beat the save
        try:
            # A reader arriving mid-save times out and degrades to a
            # lockless read -- it must NOT break the live lock.
            contender = StoreLock(store_dir, timeout=0.1)
            assert contender.acquire(required=False) is False
            assert any("reading without the lock" in n
                       for n in contender.notes)
            assert not any("broke stale" in n for n in contender.notes)

            # A second writer gets a clean StoreLockedError, not a
            # broken lock.
            with pytest.raises(StoreLockedError):
                other.store.save_directory(store_dir, lock_timeout=0.1)
        finally:
            thread.join()

        # The slow writer finished undisturbed: full save, healthy
        # store, lock released.
        assert results["stats"].records_written == len(SHAPE)
        assert BinStore.fsck(store_dir).ok
        assert not os.path.exists(os.path.join(store_dir, LOCK_NAME))

    def test_dead_owner_is_still_broken_even_when_reads_are_slow(
            self, tmp_path):
        """The contrast case: liveness, not latency, is the criterion."""
        store_dir = str(tmp_path / "store")
        _wl, builder = built_store()
        builder.store.save_directory(store_dir)
        plant_stale_lock(store_dir, pid=-1)
        loaded = BinStore.load_directory(
            store_dir, fs=SlowFS(read_delay=0.001))
        assert loaded.health.ok
        assert any("broke stale" in n for n in loaded.health.notes)
