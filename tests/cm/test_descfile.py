"""Group description files (.cm): parsing and hierarchical loading."""

import os

import pytest

from repro.cm import GroupBuilder
from repro.cm.descfile import DescFileError, load_group_file, parse_desc


class TestParsing:
    def test_basic(self):
        name, members, imports = parse_desc(
            "group app\nmembers\n  a.sml\n  b.sml\nimports\n  ../lib.cm\n")
        assert name == "app"
        assert members == ["a.sml", "b.sml"]
        assert imports == ["../lib.cm"]

    def test_comments_and_blanks(self):
        name, members, _ = parse_desc(
            "-- a build description\ngroup g\n\nmembers -- the sources\n"
            "  a.sml  -- main\n")
        assert name == "g"
        assert members == ["a.sml"]

    def test_missing_group_directive(self):
        with pytest.raises(DescFileError, match="missing 'group"):
            parse_desc("members\n a.sml\n")

    def test_duplicate_group_directive(self):
        with pytest.raises(DescFileError, match="duplicate"):
            parse_desc("group a\ngroup b\n")

    def test_stray_line(self):
        with pytest.raises(DescFileError, match="unexpected"):
            parse_desc("group g\n  floating.sml\n")


@pytest.fixture
def workspace(tmp_path):
    lib = tmp_path / "lib"
    app = tmp_path / "app"
    lib.mkdir()
    app.mkdir()
    (lib / "stack.sml").write_text("""
        structure Stack = struct
          fun push (x, s) = x :: s
          fun depth s = length s
        end
    """)
    (lib / "lib.cm").write_text("group stacklib\nmembers\n  stack.sml\n")
    (app / "main.sml").write_text("""
        structure Main = struct
          val d = Stack.depth (Stack.push (1, nil))
        end
    """)
    (app / "app.cm").write_text(
        "group app\nmembers\n  main.sml\nimports\n  ../lib/lib.cm\n")
    return tmp_path


class TestLoading:
    def test_hierarchy(self, workspace):
        group, project = load_group_file(str(workspace / "app" / "app.cm"))
        assert group.name == "app"
        assert group.members == ["main"]
        assert group.imports[0].name == "stacklib"
        assert set(project.names()) == {"main", "stack"}

    def test_build_and_run(self, workspace):
        group, project = load_group_file(str(workspace / "app" / "app.cm"))
        gb = GroupBuilder(project)
        reports = gb.build(group)
        assert reports["stacklib"].compiled == ["stack"]
        assert reports["app"].compiled == ["main"]
        exports = gb.link()
        assert exports["main"].structures["Main"].values["d"] == 1

    def test_diamond_shared_once(self, workspace):
        # Two groups importing the same lib.cm share one Group object.
        tool = workspace / "tool"
        tool.mkdir()
        (tool / "tool.sml").write_text(
            "structure Tool = struct val e = Stack.depth nil end")
        (tool / "tool.cm").write_text(
            "group tool\nmembers\n  tool.sml\nimports\n  ../lib/lib.cm\n")
        (workspace / "all.cm").write_text(
            "group all\nmembers\nimports\n  app/app.cm\n  tool/tool.cm\n")
        group, project = load_group_file(str(workspace / "all.cm"))
        app, tool_group = group.imports
        assert app.imports[0] is tool_group.imports[0]
        gb = GroupBuilder(project)
        reports = gb.build(group)
        assert sum(len(r.compiled) for r in reports.values()) == 3

    def test_cycle_rejected(self, tmp_path):
        (tmp_path / "a.cm").write_text(
            "group a\nmembers\nimports\n  b.cm\n")
        (tmp_path / "b.cm").write_text(
            "group b\nmembers\nimports\n  a.cm\n")
        with pytest.raises(DescFileError, match="cycle"):
            load_group_file(str(tmp_path / "a.cm"))

    def test_missing_member(self, tmp_path):
        (tmp_path / "g.cm").write_text(
            "group g\nmembers\n  ghost.sml\n")
        with pytest.raises(DescFileError, match="does not exist"):
            load_group_file(str(tmp_path / "g.cm"))
