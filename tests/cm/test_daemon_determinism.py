"""The daemon differential conformance matrix (tier 1).

The contract under test: **every answer the daemon gives is
byte-identical to the batch build it replaces.**  For every workload
shape x edit kind x jobs count, a warm :class:`BuildDaemon` serving
requests against an on-disk source tree must leave exactly the store
bytes (records, headers, MANIFEST.json) and export pids of a fresh
``python -m repro.cm --jobs N`` batch run over the same sources --
despite everything the daemon does differently: persistent sessions,
incremental mtime-based source refresh, ready-set dispatch instead of
wave barriers, supervision, per-request checkpoints.

The crash-mid-request variant drives a request through a poisoned
worker and checks the degradation contract: the store is left a valid,
fsck-clean prefix (PR-2 crash-safety), the report names the casualties
(PR-6 supervision), and the next clean request converges to the exact
batch bytes.
"""

import os

import pytest

from repro.cm import (
    BinStore,
    BuildDaemon,
    CutoffBuilder,
    Project,
    SmartBuilder,
    SupervisePolicy,
    TimestampBuilder,
    WorkerFaults,
)
from repro.cm.store import JOURNAL_NAME, LOCK_NAME, RECORD_LOCK_SUFFIX
from repro.workload import generate_workload
from repro.workload.shapes import chain, diamond, fanout

SHAPES = {
    "chain": lambda: chain(5),
    "diamond": lambda: diamond(2, 2),
    "fanout": lambda: fanout(5),
}

#: edit name -> (workload edit method, unit to edit)
EDITS = {
    "clean": None,
    "comment-edit": ("edit_comment", "u001"),
    "interface-edit": ("edit_interface", "u000"),
}

JOBS = [1, 2, 4]

#: Fast supervision for tests (tiny backoffs; behaviourally identical).
POLICY = SupervisePolicy(retries=1, backoff_base=0.001, backoff_cap=0.01)


def store_files(store_dir):
    """Every store file's bytes; locks excluded (transient by design)."""
    out = {}
    for entry in sorted(os.listdir(store_dir)):
        if entry == LOCK_NAME or entry.endswith(RECORD_LOCK_SUFFIX):
            continue
        full = os.path.join(store_dir, entry)
        if not os.path.isfile(full):
            continue
        with open(full, "rb") as f:
            out[entry] = f.read()
    return out


def write_tree(srcdir, project, only=None):
    """Render a project to ``.sml`` files; ``only`` limits the write to
    the named units (so untouched files keep their mtimes, exactly like
    a real editor session)."""
    os.makedirs(srcdir, exist_ok=True)
    for name in project.names():
        if only is not None and name not in only:
            continue
        with open(os.path.join(srcdir, name + ".sml"), "w",
                  encoding="utf-8") as fh:
            fh.write(project.source(name))


def batch_build(srcdir, jobs, cls=CutoffBuilder):
    """One fresh-process batch build: load store, build, save.  Returns
    the builder (its units carry the export pids)."""
    bin_dir = os.path.join(srcdir, ".bin")
    store = (BinStore.load_directory(bin_dir)
             if os.path.isdir(bin_dir) else BinStore())
    builder = cls(Project.from_directory(srcdir), store=store)
    builder.build(jobs=jobs, pool="thread")
    store.save_directory(bin_dir)
    return builder


def daemon_flow(shape, edit, jobs, srcdir, cls_name="cutoff"):
    """Clean request + (optionally) edit + warm request, one daemon."""
    workload = generate_workload(SHAPES[shape](), helpers_per_unit=1)
    write_tree(srcdir, workload.project)
    daemon = BuildDaemon(manager=cls_name, jobs=jobs, pool="thread",
                         policy=POLICY)
    try:
        daemon.request(srcdir)
        if EDITS[edit] is not None:
            method, unit = EDITS[edit]
            getattr(workload, method)(unit)
            write_tree(srcdir, workload.project, only={unit})
            daemon.request(srcdir)
        state = daemon._state_for(srcdir)
        builder = state.builders[cls_name]
        pids = {n: u.export_pid for n, u in builder.units.items()}
    finally:
        daemon.shutdown()
    return pids, store_files(os.path.join(srcdir, ".bin"))


def batch_flow(shape, edit, jobs, srcdir, cls=CutoffBuilder):
    """The same incremental flow served by fresh batch builds."""
    workload = generate_workload(SHAPES[shape](), helpers_per_unit=1)
    write_tree(srcdir, workload.project)
    builder = batch_build(srcdir, jobs, cls=cls)
    if EDITS[edit] is not None:
        method, unit = EDITS[edit]
        getattr(workload, method)(unit)
        write_tree(srcdir, workload.project, only={unit})
        builder = batch_build(srcdir, jobs, cls=cls)
    pids = {n: u.export_pid for n, u in builder.units.items()}
    return pids, store_files(os.path.join(srcdir, ".bin"))


_batch_memo = {}


def batch_reference(shape, edit, tmp_path_factory, cls=CutoffBuilder):
    """Batch bytes are jobs-invariant (PR 3's matrix), so one serial
    batch flow per (shape, edit, manager) anchors every daemon cell."""
    key = (shape, edit, cls.__name__)
    if key not in _batch_memo:
        dest = str(tmp_path_factory.mktemp("batch"))
        _batch_memo[key] = batch_flow(shape, edit, 1, dest, cls=cls)
    return _batch_memo[key]


class TestDaemonMatrix:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("edit", sorted(EDITS))
    @pytest.mark.parametrize("jobs", JOBS)
    def test_daemon_matches_batch_byte_for_byte(
            self, tmp_path, tmp_path_factory, shape, edit, jobs):
        want_pids, want_files = batch_reference(shape, edit,
                                                tmp_path_factory)
        got_pids, got_files = daemon_flow(shape, edit, jobs,
                                          str(tmp_path / "served"))
        assert got_pids == want_pids
        assert got_files == want_files  # headers, payloads, MANIFEST

    @pytest.mark.parametrize("cls,name",
                             [(SmartBuilder, "smart"),
                              (TimestampBuilder, "make")],
                             ids=["smart", "make"])
    def test_other_managers_deterministic_too(self, tmp_path,
                                              tmp_path_factory, cls,
                                              name):
        want = batch_reference("diamond", "interface-edit",
                               tmp_path_factory, cls=cls)
        got = daemon_flow("diamond", "interface-edit", 2,
                          str(tmp_path / "served"), cls_name=name)
        assert got == want

    def test_warm_request_is_all_cached(self, tmp_path):
        """The warm path really is warm: an unchanged tree re-requested
        on the same daemon is 100% cached verdicts -- no store reads,
        no recompiles -- and the second request leaves the bytes
        untouched."""
        srcdir = str(tmp_path / "src")
        workload = generate_workload(SHAPES["diamond"](),
                                     helpers_per_unit=1)
        write_tree(srcdir, workload.project)
        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY)
        try:
            first = daemon.request(srcdir)
            before = store_files(os.path.join(srcdir, ".bin"))
            second = daemon.request(srcdir)
        finally:
            daemon.shutdown()
        assert len(first.report.compiled) == len(workload.project)
        assert len(second.report.cached) == len(workload.project)
        assert second.sources_refreshed == 0
        assert not second.store_reloaded
        assert store_files(os.path.join(srcdir, ".bin")) == before

    def test_touch_does_not_rebuild(self, tmp_path):
        """A pure mtime bump (same text) is re-read but compiles
        nothing -- matching batch behaviour, where an unchanged digest
        never recompiles."""
        srcdir = str(tmp_path / "src")
        workload = generate_workload(SHAPES["chain"](),
                                     helpers_per_unit=1)
        write_tree(srcdir, workload.project)
        daemon = BuildDaemon(jobs=1, policy=POLICY)
        try:
            daemon.request(srcdir)
            target = os.path.join(srcdir, "u001.sml")
            os.utime(target, ns=(os.stat(target).st_mtime_ns + 10_000,
                                 os.stat(target).st_mtime_ns + 10_000))
            reply = daemon.request(srcdir)
        finally:
            daemon.shutdown()
        assert reply.sources_refreshed == 1  # re-read, text unchanged
        assert not reply.report.compiled


class TestCrashMidRequest:
    def test_poisoned_request_degrades_then_converges(
            self, tmp_path, tmp_path_factory):
        """A request through a poisoned worker degrades to the PR-2 /
        PR-6 guarantees -- valid store prefix, named casualties -- and
        the next clean request converges to exact batch bytes."""
        srcdir = str(tmp_path / "served")
        workload = generate_workload(SHAPES["fanout"](),
                                     helpers_per_unit=1)
        write_tree(srcdir, workload.project)
        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY)
        try:
            broken = daemon.request(
                srcdir, faults=WorkerFaults(
                    poison_units=frozenset({"u003"})))
            # Degraded, not corrupted: the poisoned unit failed, its
            # dependents were skipped, everything else built.
            assert broken.report.failed == ["u003"]
            assert "u006" in broken.report.skipped  # the fanout top
            bin_dir = os.path.join(srcdir, ".bin")
            assert BinStore.fsck(bin_dir).ok
            loaded = BinStore.load_directory(bin_dir)
            assert loaded.health.ok
            assert "u003" not in loaded.names()

            # The fault plan was per-request: the next clean request
            # finishes the build and matches batch byte-for-byte.
            fixed = daemon.request(srcdir)
            assert not fixed.report.failed and not fixed.report.skipped
        finally:
            daemon.shutdown()
        want_pids, want_files = batch_reference("fanout", "clean",
                                                tmp_path_factory)
        assert store_files(bin_dir) == want_files

    def test_failed_request_leaves_resumable_journal(self, tmp_path):
        """A request with casualties keeps its checkpoint journal (the
        resume contract); the next successful request clears it."""
        srcdir = str(tmp_path / "served")
        workload = generate_workload(SHAPES["chain"](),
                                     helpers_per_unit=1)
        write_tree(srcdir, workload.project)
        daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY)
        try:
            broken = daemon.request(
                srcdir, faults=WorkerFaults(
                    poison_units=frozenset({"u002"})))
            assert broken.report.failed
            journal = os.path.join(srcdir, ".bin", JOURNAL_NAME)
            assert os.path.exists(journal)
            fixed = daemon.request(srcdir)
            assert not fixed.report.failed
            assert not os.path.exists(journal)
        finally:
            daemon.shutdown()
