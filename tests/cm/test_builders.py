"""The three builders: timestamp (make), cutoff (IRM), smart."""

import pytest

from repro.cm import (
    BinStore,
    CutoffBuilder,
    Project,
    SmartBuilder,
    TimestampBuilder,
)

SOURCES = {
    "base": """
        signature COUNTER = sig
          type t
          val zero : t
          val inc : t -> t
          val get : t -> int
        end
        structure Counter : COUNTER = struct
          datatype t = C of int
          val zero = C 0
          fun inc (C n) = C (n + 1)
          fun get (C n) = n
        end
    """,
    "mid": """
        structure Mid = struct
          fun upTo 0 = Counter.zero
            | upTo n = Counter.inc (upTo (n - 1))
          fun count n = Counter.get (upTo n)
        end
    """,
    "app": """
        structure App = struct
          val answer = Mid.count 42
        end
    """,
}

IMPL_EDIT = SOURCES["base"].replace(
    "fun inc (C n) = C (n + 1)",
    "fun inc (C n) = C (1 + n)  (* reassociated *)")

IFACE_EDIT = SOURCES["base"].replace(
    "val get : t -> int",
    "val get : t -> int\n          val bound : int").replace(
    "fun get (C n) = n",
    "fun get (C n) = n\n          val bound = 1000000")


@pytest.fixture
def proj():
    return Project.from_sources(SOURCES)


class TestCutoffBuilder:
    def test_cold_build(self, proj):
        report = CutoffBuilder(proj).build()
        assert report.compiled == ["base", "mid", "app"]

    def test_null_build_all_cached(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        report = b.build()
        assert report.compiled == []
        assert set(report.cached) == {"base", "mid", "app"}

    def test_run_produces_answer(self, proj):
        b = CutoffBuilder(proj)
        _report, exports = b.build_and_run()
        assert exports["app"].structures["App"].values["answer"] == 42

    def test_touch_without_change_recompiles_nothing_downstream(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        proj.touch("base")
        report = b.build()
        # Digest-based make level: even `base` itself is current.
        assert report.compiled == []

    def test_impl_edit_cuts_off(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        proj.edit("base", IMPL_EDIT)
        report = b.build()
        assert report.compiled == ["base"]
        assert report.cutoffs() == ["base"]

    def test_iface_edit_recompiles_dependents(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        proj.edit("base", IFACE_EDIT)
        report = b.build()
        assert report.compiled == ["base", "mid", "app"]

    def test_leaf_edit_touches_only_leaf(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        proj.edit("app", SOURCES["app"].replace("42", "43"))
        report = b.build()
        assert report.compiled == ["app"]
        _report, exports = (b.build(), b.link())
        assert exports["app"].structures["App"].values["answer"] == 43

    def test_new_session_loads_all(self, proj):
        b1 = CutoffBuilder(proj)
        b1.build()
        b2 = CutoffBuilder(proj, store=b1.store)
        report = b2.build()
        assert report.compiled == []
        assert set(report.loaded) == {"base", "mid", "app"}
        exports = b2.link()
        assert exports["app"].structures["App"].values["answer"] == 42

    def test_new_session_after_impl_edit(self, proj):
        b1 = CutoffBuilder(proj)
        b1.build()
        proj.edit("base", IMPL_EDIT)
        b2 = CutoffBuilder(proj, store=b1.store)
        report = b2.build()
        assert report.compiled == ["base"]
        assert set(report.loaded) == {"mid", "app"}

    def test_execution_result_correct_after_cutoff(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        proj.edit("base", IMPL_EDIT)
        b.build()
        exports = b.link()
        assert exports["app"].structures["App"].values["answer"] == 42

    def test_added_unit(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        proj.add("extra", "structure Extra = struct val e = App.answer end")
        report = b.build()
        assert report.compiled == ["extra"]


class TestTimestampBuilder:
    def test_cold_build(self, proj):
        report = TimestampBuilder(proj).build()
        assert report.compiled == ["base", "mid", "app"]

    def test_touch_cascades(self, proj):
        b = TimestampBuilder(proj)
        b.build()
        proj.touch("base")
        report = b.build()
        assert report.compiled == ["base", "mid", "app"]

    def test_impl_edit_cascades(self, proj):
        b = TimestampBuilder(proj)
        b.build()
        proj.edit("base", IMPL_EDIT)
        report = b.build()
        assert report.compiled == ["base", "mid", "app"]

    def test_null_build(self, proj):
        b = TimestampBuilder(proj)
        b.build()
        report = b.build()
        assert report.compiled == []

    def test_mid_edit_cascades_only_downstream(self, proj):
        b = TimestampBuilder(proj)
        b.build()
        proj.touch("mid")
        report = b.build()
        assert report.compiled == ["mid", "app"]

    def test_results_match_cutoff(self, proj):
        tb = TimestampBuilder(proj)
        tb.build()
        exports = tb.link()
        assert exports["app"].structures["App"].values["answer"] == 42


class TestSmartBuilder:
    TWO_EXPORTS = """
        structure Used = struct fun f x = x + 1 end
        structure Unused = struct fun g x = x - 1 end
    """
    CLIENT = "structure Client = struct val v = Used.f 1 end"

    def test_cold_build(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        report = SmartBuilder(p).build()
        assert report.compiled == ["prov", "client"]

    def test_unused_interface_change_skipped(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        b = SmartBuilder(p)
        b.build()
        # Change Unused's interface; the client only mentions Used.
        p.edit("prov", self.TWO_EXPORTS.replace(
            "fun g x = x - 1", "fun g x = (x, x)"))
        report = b.build()
        assert report.compiled == ["prov"]

    def test_cutoff_would_recompile_in_same_case(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        b = CutoffBuilder(p)
        b.build()
        p.edit("prov", self.TWO_EXPORTS.replace(
            "fun g x = x - 1", "fun g x = (x, x)"))
        report = b.build()
        # prov's whole-unit pid changed, so cutoff recompiles the client.
        assert report.compiled == ["prov", "client"]

    def test_used_interface_change_recompiles(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        b = SmartBuilder(p)
        b.build()
        p.edit("prov", self.TWO_EXPORTS.replace(
            "fun f x = x + 1", 'fun f x = Int.toString x'))
        report = b.build()
        assert report.compiled == ["prov", "client"]

    def test_impl_edit_skipped(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        b = SmartBuilder(p)
        b.build()
        p.edit("prov", self.TWO_EXPORTS.replace(
            "fun f x = x + 1", "fun f x = 1 + x"))
        report = b.build()
        assert report.compiled == ["prov"]

    def test_new_dependency_recompiles(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        b = SmartBuilder(p)
        b.build()
        p.edit("client",
               "structure Client = struct val v = Used.f (Unused.g 2) end")
        report = b.build()
        assert report.compiled == ["client"]

    def test_smart_execution_correct(self):
        p = Project.from_sources(
            {"prov": self.TWO_EXPORTS, "client": self.CLIENT})
        b = SmartBuilder(p)
        b.build()
        exports = b.link()
        assert exports["client"].structures["Client"].values["v"] == 2


class TestBinStore:
    def test_persistence_roundtrip(self, proj, tmp_path):
        b = CutoffBuilder(proj)
        b.build()
        b.store.save_directory(str(tmp_path / "bins"))
        restored = BinStore.load_directory(str(tmp_path / "bins"))
        assert restored.names() == b.store.names()
        b2 = CutoffBuilder(proj, store=restored)
        report = b2.build()
        assert report.compiled == []
        assert len(report.loaded) == 3
        exports = b2.link()
        assert exports["app"].structures["App"].values["answer"] == 42

    def test_payload_bytes_tracked(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        assert b.store.total_payload_bytes() > 0

    def test_removed_bin_recompiles(self, proj):
        b = CutoffBuilder(proj)
        b.build()
        b.store.remove("mid")
        b2 = CutoffBuilder(proj, store=b.store)
        report = b2.build()
        assert report.compiled == ["mid"]


class TestSmartAcrossSessions:
    TWO = ("structure Used = struct fun f x = x + 1 end "
           "structure Unused = struct fun g x = x - 1 end")
    CLI = "structure Client = struct val v = Used.f 1 end"

    def test_slice_data_persists(self, tmp_path):
        p = Project.from_sources({"prov": self.TWO, "client": self.CLI})
        b1 = SmartBuilder(p)
        b1.build()
        b1.store.save_directory(str(tmp_path / "bins"))

        store = BinStore.load_directory(str(tmp_path / "bins"))
        p.edit("prov", self.TWO.replace("fun g x = x - 1",
                                        "fun g x = (x, x)"))
        b2 = SmartBuilder(p, store=store)
        report = b2.build()
        # The unused binding's interface changed; the persisted binding
        # pids + used-binding sets let the fresh session skip the client.
        assert report.compiled == ["prov"]
        assert report.loaded == ["client"]
        exports = b2.link()
        assert exports["client"].structures["Client"].values["v"] == 2
