"""Remote-store transport faults (tier 1).

The contract under test: **the network can never cost more than a
local recompile.**  A :class:`FaultyTransport` breaks the Nth response
-- dropped connection, timeout, truncated frame, bit-garbled frame --
and, latched, every response after it, the way a dead cache server
stays dead.  For every mode and every N a warm-up session performs,
the faulted session must:

- load without raising and build to the right answer;
- record any recompile the fault caused as a **store-miss** in the
  explanation ledger -- a transport failure is an *absence*, never
  ``quarantined`` damage (the frame codec's CRC rejects mangled frames
  before they can impersonate at-rest records);
- converge to export pids byte-identical to a no-cache build;
- leave a local cache that fsck calls healthy.
"""

import pytest

from repro.cm import BinStore, CutoffBuilder, Project
from repro.cm.faults import FaultyTransport, TransportPlan
from repro.cm.remote import LoopbackTransport, RemoteBackend, StoreServer
from repro.obs.ledger import RECOMPILE_CAUSES, REUSE_CAUSES

SOURCES = {
    "base": "structure Base = struct fun triple x = 3 * x end",
    "mid": "structure Mid = struct fun six x = Base.triple (2 * x) end",
    "app": "structure App = struct val answer = Mid.six 7 end",
}

ANSWER = 42

URL = "rbs://faulty.test"


@pytest.fixture(scope="module")
def no_cache_build():
    """The no-cache baseline every faulted session must reproduce."""
    builder = CutoffBuilder(Project.from_sources(SOURCES))
    builder.build()
    pids = {name: unit.export_pid for name, unit in builder.units.items()}
    payloads = {name: builder.store.get(name).payload
                for name in builder.store.names()}
    return pids, payloads


@pytest.fixture
def server(tmp_path, no_cache_build):
    """A loopback server seeded with a full clean build."""
    srv = StoreServer(str(tmp_path / "server"))
    cache = str(tmp_path / "seed-cache")
    backend = RemoteBackend(URL, cache, LoopbackTransport(srv))
    builder = CutoffBuilder(Project.from_sources(SOURCES),
                            store=BinStore(backend=backend))
    builder.build()
    builder.store.save_directory(cache)
    return srv


def faulted_session(server, cache_dir, plan):
    """One fresh-cache client session over ``server`` with ``plan``
    breaking the wire.  Returns (builder, backend, transport)."""
    transport = FaultyTransport(LoopbackTransport(server), plan)
    backend = RemoteBackend(URL, cache_dir, transport)
    store = BinStore.load_directory(cache_dir, backend=backend)  # no raise
    builder = CutoffBuilder(Project.from_sources(SOURCES), store=store)
    builder.build()  # no raise either
    return builder, backend, transport


def count_responses(server, tmp_path):
    """How many responses one fresh-cache build session consumes."""
    transport = FaultyTransport(LoopbackTransport(server))
    backend = RemoteBackend(URL, str(tmp_path / "dry-cache"), transport)
    store = BinStore.load_directory(str(tmp_path / "dry-cache"),
                                    backend=backend)
    builder = CutoffBuilder(Project.from_sources(SOURCES), store=store)
    builder.build()
    builder.store.save_directory(str(tmp_path / "dry-cache"))
    return transport.responses


MODES = ("drop", "timeout", "truncate", "garble")


class TestEveryFaultIsACleanMiss:
    @pytest.mark.parametrize("mode", MODES)
    def test_fault_sweep(self, server, tmp_path, mode, no_cache_build):
        clean_pids, clean_payloads = no_cache_build
        total = count_responses(server, tmp_path)
        assert total >= 3  # open + list + at least one fetch

        for fault_at in range(1, total + 1):
            cache_dir = str(tmp_path / f"{mode}-{fault_at}")
            plan = TransportPlan(fault_at=fault_at, mode=mode)
            builder, backend, transport = faulted_session(
                server, cache_dir, plan)

            # Byte-identical to the no-cache build.
            exports = builder.link()
            assert (exports["app"].structures["App"].values["answer"]
                    == ANSWER)
            for name, pid in clean_pids.items():
                assert builder.units[name].export_pid == pid, \
                    (mode, fault_at, name)
            for name, payload in clean_payloads.items():
                assert builder.store.get(name).payload == payload, \
                    (mode, fault_at, name)

            # A transport fault is an absence, not damage: the miss is
            # clean (no CorruptRecord, no quarantine), and the ledger
            # books every recompile as a store-miss.
            assert not builder.health.corrupt, (mode, fault_at)
            assert builder.health.quarantined() == set()
            for decision in builder.ledger:
                assert decision.cause in RECOMPILE_CAUSES + REUSE_CAUSES
                if decision.verdict == "recompiled":
                    assert decision.cause == "store-miss", \
                        (mode, fault_at, decision.unit, decision.cause)

            # Saving through the backend still works locally (the
            # session spans load+build+save, so a late fault_at fires
            # here), and the local cache ends healthy.
            builder.store.save_directory(cache_dir)
            assert transport.faults_fired >= 1, (mode, fault_at)
            local = BinStore.fsck(cache_dir)
            assert local.ok, (mode, fault_at, local.render_text())

    @pytest.mark.parametrize("mode", MODES)
    def test_fault_on_first_response_is_full_local_build(
            self, server, tmp_path, mode, no_cache_build):
        """The server dead from the very first packet: the session is
        just a plain local from-scratch build with a note."""
        clean_pids, _payloads = no_cache_build
        cache_dir = str(tmp_path / f"dead-{mode}")
        transport = FaultyTransport(LoopbackTransport(server),
                                    TransportPlan(fault_at=1, mode=mode))
        backend = RemoteBackend(URL, cache_dir, transport)
        store = BinStore.load_directory(cache_dir, backend=backend)
        builder = CutoffBuilder(Project.from_sources(SOURCES), store=store)
        report = builder.build()
        assert backend.offline
        assert sorted(report.compiled) == sorted(SOURCES)
        for decision in builder.ledger:
            assert decision.cause == "store-miss"
        for name, pid in clean_pids.items():
            assert builder.units[name].export_pid == pid
        assert any("offline" in note for note in builder.health.notes)


class TestSocketTransport:
    def test_real_socket_round_trip_and_dead_server(self, tmp_path,
                                                    no_cache_build):
        """The rbs:// socket path: a save/load round trip over a real
        TCP connection, then the server goes away and the client
        latches offline with a clean local build."""
        from repro.cm.remote import SocketTransport, serve_socket

        clean_pids, _payloads = no_cache_build
        server = StoreServer(str(tmp_path / "server"))
        tcp, port = serve_socket(server)
        try:
            url = f"rbs://127.0.0.1:{port}"
            cache = str(tmp_path / "sock-cache")
            backend = RemoteBackend(url, cache,
                                    SocketTransport("127.0.0.1", port))
            builder = CutoffBuilder(Project.from_sources(SOURCES),
                                    store=BinStore(backend=backend))
            builder.build()
            builder.store.save_directory(cache)
            assert server.rev > 0

            cache2 = str(tmp_path / "sock-cache2")
            backend2 = RemoteBackend(url, cache2,
                                     SocketTransport("127.0.0.1", port))
            store = BinStore.load_directory(cache2, backend=backend2)
            session = CutoffBuilder(Project.from_sources(SOURCES),
                                    store=store)
            report = session.build()
            assert report.compiled == []
            for name, pid in clean_pids.items():
                assert session.units[name].export_pid == pid
        finally:
            tcp.shutdown()
            tcp.server_close()

        # Server gone: a new client latches offline, builds locally.
        cache3 = str(tmp_path / "sock-cache3")
        backend3 = RemoteBackend(url, cache3,
                                 SocketTransport("127.0.0.1", port))
        store = BinStore.load_directory(cache3, backend=backend3)
        session = CutoffBuilder(Project.from_sources(SOURCES), store=store)
        report = session.build()
        assert backend3.offline
        assert sorted(report.compiled) == sorted(SOURCES)
        for name, pid in clean_pids.items():
            assert session.units[name].export_pid == pid


class TestFaultsDoNotPoisonTheServer:
    def test_recovered_client_reuses_server_records(self, server,
                                                    tmp_path,
                                                    no_cache_build):
        """After a faulted session, a healthy client (network restored)
        still loads everything from the untouched server."""
        clean_pids, _payloads = no_cache_build
        faulted_session(server, str(tmp_path / "victim"),
                        TransportPlan(fault_at=2, mode="drop"))

        cache_dir = str(tmp_path / "healthy")
        backend = RemoteBackend(URL, cache_dir, LoopbackTransport(server))
        store = BinStore.load_directory(cache_dir, backend=backend)
        builder = CutoffBuilder(Project.from_sources(SOURCES), store=store)
        report = builder.build()
        assert report.compiled == []
        assert sorted(report.loaded) == sorted(SOURCES)
        for name, pid in clean_pids.items():
            assert builder.units[name].export_pid == pid
