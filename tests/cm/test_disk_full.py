"""The disk-full fault matrix (tier 1).

The contract under test: **running out of disk can never corrupt the
store.**  An ENOSPC injected at *every* write a save performs (the
disk-full sibling of the PR-2 crash matrix) must either abort the save
cleanly (:class:`StoreFullError`, old records intact, tmp debris
swept) or leave damage the next load quarantines -- and a fresh
session must always converge to byte-identical export pids.  Short
writes -- the disk *lied* -- are caught by the checksums.  The
quarantine-aside path is itself hardened: a move that fails mid-pair
rolls back (never a half-moved record) and degrades to the in-memory
miss the damage already was.
"""

import errno
import os

import pytest

from repro.cm import (
    BinStore,
    CutoffBuilder,
    Project,
    StoreFullError,
)
from repro.cm.faults import REAL_FS, FaultPlan, FaultyFS, FileSystem
from repro.cm.store import QUARANTINE_DIR, TMP_SUFFIX, escape_name

SOURCES = {
    "base": "structure Base = struct fun triple x = 3 * x end",
    "mid": "structure Mid = struct fun six x = Base.triple (2 * x) end",
    "app": "structure App = struct val answer = Mid.six 7 end",
}

ANSWER = 42


@pytest.fixture(scope="module")
def clean_pids():
    builder = CutoffBuilder(Project.from_sources(SOURCES))
    builder.build()
    return {name: unit.export_pid for name, unit in builder.units.items()}


def build_and_save(bin_dir, fs):
    """One session building SOURCES and saving through ``fs``."""
    builder = CutoffBuilder(Project.from_sources(SOURCES),
                            store=BinStore(fs=fs))
    builder.build()
    return builder, builder.store.save_directory(bin_dir)


def recover(bin_dir, clean_pids):
    """A fresh session over whatever the fault left: must not raise,
    must converge to the clean pids and the right program, and must
    leave a store fsck calls healthy."""
    store = BinStore.load_directory(bin_dir)  # never raises
    builder = CutoffBuilder(Project.from_sources(SOURCES), store=store)
    builder.build()
    exports = builder.link()
    assert exports["app"].structures["App"].values["answer"] == ANSWER
    for name, pid in clean_pids.items():
        assert builder.units[name].export_pid == pid, name
    builder.store.save_directory(bin_dir)
    assert BinStore.fsck(bin_dir).ok
    return builder


def writes_per_save(tmp_path):
    """How many ``write_bytes`` calls one full save performs."""
    fs = FaultyFS(FaultPlan())
    build_and_save(str(tmp_path / "count"), fs)
    return fs.writes


class TestEnospcMatrix:
    def test_enospc_at_every_write(self, tmp_path, clean_pids):
        """Sweep a hard ENOSPC over every write of the save."""
        total = writes_per_save(tmp_path)
        assert total >= 7  # 3 records x (payload + header) + manifest
        for index in range(total):
            bin_dir = str(tmp_path / f"enospc{index}")
            fs = FaultyFS(FaultPlan(enospc_at_write=index))
            with pytest.raises(StoreFullError):
                build_and_save(bin_dir, fs)
            assert fs.disk_full  # the latch: the disk *stays* full
            # No half-written tmp debris survives the clean abort.
            leftovers = [e for e in os.listdir(bin_dir)
                         if e.endswith(TMP_SUFFIX)]
            assert leftovers == [], leftovers
            recover(bin_dir, clean_pids)

    def test_byte_budget_exhaustion(self, tmp_path, clean_pids):
        """The other ENOSPC shape: the disk fills after N bytes."""
        bin_dir = str(tmp_path / "budget")
        fs = FaultyFS(FaultPlan(byte_budget=600))
        with pytest.raises(StoreFullError):
            build_and_save(bin_dir, fs)
        recover(bin_dir, clean_pids)

    def test_enospc_preserves_previous_save(self, tmp_path, clean_pids):
        """A full disk during an *incremental* save leaves the prior
        generation fully readable (old records, old manifest)."""
        bin_dir = str(tmp_path / "stale")
        build_and_save(bin_dir, REAL_FS)
        before = BinStore.load_directory(bin_dir)
        assert before.health.ok

        project = Project.from_sources(SOURCES)
        project.edit("base",
                     "structure Base = struct fun triple x = x * 3 end")
        store = BinStore.load_directory(
            bin_dir, fs=FaultyFS(FaultPlan(enospc_at_write=0)))
        builder = CutoffBuilder(project, store=store)
        builder.build()
        with pytest.raises(StoreFullError):
            builder.store.save_directory(bin_dir)
        # The dirty set is untouched: a later save (disk freed) works.
        after = BinStore.load_directory(bin_dir)
        assert after.health.ok
        assert sorted(after.names()) == sorted(before.names())
        recover(bin_dir, clean_pids)


class TestShortWriteMatrix:
    def test_short_write_at_every_write(self, tmp_path, clean_pids):
        """The disk lied: a write 'succeeds' but lands only half the
        bytes.  The save cannot see it -- the *checksums* catch it at
        the next load, as quarantined damage, never a corrupt load."""
        total = writes_per_save(tmp_path)
        for index in range(total):
            bin_dir = str(tmp_path / f"short{index}")
            fs = FaultyFS(FaultPlan(short_write_at=index))
            build_and_save(bin_dir, fs)  # the lie: no error here
            store = BinStore.load_directory(bin_dir)
            # Damage is either quarantined or (manifest short-write)
            # reported as bad-manifest; in every case the session
            # converges.
            recover(bin_dir, clean_pids)


class TestCheckpointUnderDiskFull:
    def test_supervised_checkpoint_survives_enospc(self, tmp_path):
        """A full disk during a supervised build's per-wave checkpoint
        costs resumability, never the build."""
        from repro.cm import supervised_build
        from repro.workload import generate_workload

        bin_dir = str(tmp_path / "bin")
        workload = generate_workload([[], [0], [1]], helpers_per_unit=1)
        fs = FaultyFS(FaultPlan(enospc_at_write=2))
        builder = CutoffBuilder(workload.project,
                                store=BinStore(fs=fs))
        report = supervised_build(builder, jobs=2, pool="thread",
                                  checkpoint_dir=bin_dir)
        assert not report.failed and not report.skipped
        assert len(report.compiled) == 3
        assert any("checkpoint" in note
                   for note in builder.health.notes)


class _QuarantineMoveFails(FileSystem):
    """Fails the Nth replace whose destination is the quarantine
    directory (the disk-full shape for the quarantine-aside path)."""

    def __init__(self, fail_indices):
        self.fail_indices = set(fail_indices)
        self.calls = 0

    def replace(self, src: str, dst: str) -> None:
        if os.sep + QUARANTINE_DIR + os.sep in dst:
            index = self.calls
            self.calls += 1
            if index in self.fail_indices:
                raise OSError(errno.ENOSPC,
                              f"no space left (injected): {dst}")
        super().replace(src, dst)


class TestQuarantineAside:
    def damaged_store(self, tmp_path):
        from repro.cm.faults import garbage_header, header_path

        bin_dir = str(tmp_path / "bin")
        build_and_save(bin_dir, REAL_FS)
        garbage_header(header_path(bin_dir, "mid"))
        return bin_dir

    def test_quarantine_moves_damage_aside(self, tmp_path):
        bin_dir = self.damaged_store(tmp_path)
        store = BinStore.load_directory(bin_dir, quarantine=True)
        assert "mid" not in store  # the miss is unchanged
        stem = escape_name("mid")
        qdir = os.path.join(bin_dir, QUARANTINE_DIR)
        moved = sorted(os.listdir(qdir))
        assert any(e.startswith(stem) for e in moved)
        assert not any(e.startswith(stem) for e in os.listdir(bin_dir)
                       if e != QUARANTINE_DIR)
        # The manifest was healed: the next plain load is healthy.
        again = BinStore.load_directory(bin_dir)
        assert again.health.ok, again.health.render_text()
        assert sorted(again.names()) == ["app", "base"]

    def test_fsck_quarantine_flag(self, tmp_path):
        bin_dir = self.damaged_store(tmp_path)
        assert not BinStore.fsck(bin_dir, quarantine=True).ok
        assert BinStore.fsck(bin_dir).ok  # damage is gone now

    def test_failed_move_degrades_to_in_memory_miss(self, tmp_path):
        """Disk full on the *first* file of the pair: nothing moves,
        nothing raises, the unit stays a plain miss."""
        bin_dir = self.damaged_store(tmp_path)
        fs = _QuarantineMoveFails({0})
        store = BinStore.load_directory(bin_dir, fs=fs, quarantine=True)
        assert "mid" not in store
        assert any("quarantine-aside failed" in note
                   for note in store.health.notes)
        stem = escape_name("mid")
        # Both files are exactly where they were: no half-move.
        survivors = [e for e in os.listdir(bin_dir)
                     if e.startswith(stem)]
        assert len(survivors) == 2, survivors
        # And the next session still just recompiles the miss.
        builder = CutoffBuilder(Project.from_sources(SOURCES),
                                store=BinStore.load_directory(bin_dir))
        report = builder.build()
        assert "mid" in report.compiled

    def test_failed_move_rolls_back_the_moved_half(self, tmp_path):
        """Disk full on the *second* file of the pair: the first is
        rolled back -- a record pair is never split across
        directories."""
        bin_dir = self.damaged_store(tmp_path)
        fs = _QuarantineMoveFails({1})
        store = BinStore.load_directory(bin_dir, fs=fs, quarantine=True)
        assert "mid" not in store
        stem = escape_name("mid")
        survivors = [e for e in os.listdir(bin_dir)
                     if e.startswith(stem)]
        assert len(survivors) == 2, survivors
        qdir = os.path.join(bin_dir, QUARANTINE_DIR)
        if os.path.isdir(qdir):
            assert not any(e.startswith(stem)
                           for e in os.listdir(qdir))
