"""Interface slicing end-to-end (the per-binding cutoff).

Covers the full slice pipeline: binding pids and used-binding sets in
bin records, the sliced smart builder recompiling only a changed
binding's users, graceful degrade on pre-slicing (v3) stores, and
byte-identical serial vs parallel sliced builds.
"""

import json
import os

import pytest

from repro.cm import (
    BinStore,
    CutoffBuilder,
    SmartBuilder,
    TimestampBuilder,
    parallel_build,
)
from repro.cm.store import (
    HEADER_SUFFIX,
    LOCK_NAME,
    MANIFEST_NAME,
    PAYLOAD_SUFFIX,
    _record_digest,
)
from repro.workload import sliced_workload


class TestSliceRecording:
    def test_records_carry_binding_pids(self):
        w = sliced_workload(4)
        b = SmartBuilder(w.project)
        b.build()
        record = b.store.get("iface")
        assert sorted(record.binding_pids) == [
            f"structures:B{k:02d}" for k in range(4)]
        assert all(len(pid) == 32 and int(pid, 16) >= 0
                   for pid in record.binding_pids.values())

    def test_used_bindings_pinned_to_provider_pids(self):
        w = sliced_workload(4)
        b = SmartBuilder(w.project)
        b.build()
        prov = b.store.get("iface")
        client = b.store.get(w.client_name(2, 0))
        assert client.used_bindings == {
            "iface": {
                "structures:B02": prov.binding_pids["structures:B02"],
            },
        }

    @pytest.mark.parametrize("cls", [CutoffBuilder, TimestampBuilder])
    def test_every_builder_records_slices(self, cls):
        # Slice data is recorded by the shared post-compile hook, so a
        # store written by any builder feeds a later sliced session.
        w = sliced_workload(3)
        b = cls(w.project)
        b.build()
        assert b.store.get("iface").binding_pids
        assert b.store.get(w.client_name(1, 0)).used_bindings["iface"]

    def test_binding_pids_survive_persistence(self, tmp_path):
        w = sliced_workload(3)
        b = SmartBuilder(w.project)
        b.build()
        b.store.save_directory(str(tmp_path / "bins"))
        restored = BinStore.load_directory(str(tmp_path / "bins"))
        assert restored.health.ok
        for name in b.store.names():
            assert (restored.get(name).binding_pids
                    == b.store.get(name).binding_pids)
            assert (restored.get(name).used_bindings
                    == b.store.get(name).used_bindings)


class TestSlicedRecompilation:
    """The acceptance scenario: 1 of 8 bindings edited on a fanout."""

    def test_one_of_eight_bindings_recompiles_only_its_users(self):
        w = sliced_workload(8, clients_per_binding=2)
        smart = SmartBuilder(w.project)
        smart.build()
        w.edit_binding_interface(3)
        report = smart.build()
        assert report.compiled == sorted(["iface"] + w.users_of(3))
        # Everyone else reused despite the provider's pid change.
        assert len(report.loaded) + len(report.cached) == 14

    def test_cutoff_recompiles_every_client(self):
        w = sliced_workload(8, clients_per_binding=2)
        cutoff = CutoffBuilder(w.project)
        cutoff.build()
        w.edit_binding_interface(3)
        report = cutoff.build()
        assert len(report.compiled) == 17  # provider + all 16 clients

    def test_implementation_edit_cuts_off_before_slicing(self):
        # Function bodies are not part of the static interface, so an
        # implementation edit moves no pid at all -- whole-unit or
        # slice -- and the ordinary cutoff already stops at the editor;
        # the slice layer must not recompile anyone extra.
        w = sliced_workload(6)
        smart = SmartBuilder(w.project)
        smart.build()
        w.edit_binding_implementation(2)
        report = smart.build()
        assert report.compiled == ["iface"]

    def test_sliced_execution_is_correct(self):
        w = sliced_workload(4)
        smart = SmartBuilder(w.project)
        smart.build()
        w.edit_binding_interface(1)
        smart.build()
        exports = smart.link()
        # use03_0 was reused from its bin; its value is still right.
        assert exports[w.client_name(3, 0)].structures[
            "U03x0"].values["v"] == 0 + 3

    def test_ledger_explains_with_binding_names(self):
        w = sliced_workload(4)
        smart = SmartBuilder(w.project)
        smart.build()
        w.edit_binding_interface(1)
        smart.build()

        reused = smart.ledger.get(w.client_name(0, 0))
        assert reused.verdict == "reused"
        assert reused.cause == "used-bindings-stable"
        [check] = reused.binding_checks
        assert check.binding == "structures:B00"
        assert check.stable
        assert "iface.B00 (structure) stable" in reused.describe()

        recompiled = smart.ledger.get(w.client_name(1, 0))
        assert recompiled.verdict == "recompiled"
        assert recompiled.cause == "import-pid-changed"
        [check] = recompiled.changed_bindings()
        assert check.binding == "structures:B01"
        assert "iface.B01 (structure) changed" in recompiled.describe()


def downgrade_store_to_v3(store_dir: str) -> int:
    """Rewrite a saved v4 store as a pre-slicing v3 store: strip the
    slice fields, stamp format 3, and re-sign each record (the digest
    covers the header, so a naive field strip would read as tampering).
    Returns the number of records rewritten."""
    rewritten = 0
    for entry in sorted(os.listdir(store_dir)):
        path = os.path.join(store_dir, entry)
        if entry == MANIFEST_NAME:
            with open(path) as f:
                manifest = json.load(f)
            manifest["format"] = 3
            with open(path, "w") as f:
                json.dump(manifest, f, indent=1, sort_keys=True)
        elif entry.endswith(HEADER_SUFFIX):
            with open(path) as f:
                header = json.load(f)
            header["format"] = 3
            header.pop("binding_pids", None)
            header.pop("used_bindings", None)
            stem = entry[:-len(HEADER_SUFFIX)]
            with open(os.path.join(store_dir,
                                   stem + PAYLOAD_SUFFIX), "rb") as f:
                payload = f.read()
            header["record_digest"] = _record_digest(header, payload)
            with open(path, "w") as f:
                json.dump(header, f, indent=1)
            rewritten += 1
    return rewritten


class TestV3Compat:
    """Pre-slicing stores load and degrade to whole-pid cutoff."""

    @pytest.fixture
    def v3_store_dir(self, tmp_path):
        w = sliced_workload(4, clients_per_binding=1)
        b = SmartBuilder(w.project)
        b.build()
        store_dir = str(tmp_path / "bins")
        b.store.save_directory(store_dir)
        assert downgrade_store_to_v3(store_dir) == 5
        return w, store_dir

    def test_v3_records_load_cleanly(self, v3_store_dir):
        _w, store_dir = v3_store_dir
        store = BinStore.load_directory(store_dir)
        assert store.health.ok
        assert not store.health.stale
        assert len(store) == 5
        for name in store.names():
            assert store.get(name).binding_pids == {}
            assert store.get(name).used_bindings == {}

    def test_smart_degrades_to_whole_pid_cutoff(self, v3_store_dir):
        w, store_dir = v3_store_dir
        w.edit_binding_interface(0)
        b = SmartBuilder(w.project,
                         store=BinStore.load_directory(store_dir))
        report = b.build()
        # No slice data: every client of the pid-changed provider
        # recompiles, exactly as cutoff would -- never a crash, never
        # a missed rebuild.
        assert len(report.compiled) == 5
        decision = b.ledger.get(w.client_name(1, 0))
        assert decision.verdict == "recompiled"
        assert "no slice data" in decision.detail

    def test_rebuild_restores_slice_data(self, v3_store_dir):
        w, store_dir = v3_store_dir
        w.edit_binding_interface(0)
        b = SmartBuilder(w.project,
                         store=BinStore.load_directory(store_dir))
        b.build()
        b.store.save_directory(store_dir)
        # The recompile re-recorded the slices: the next sibling edit
        # is sliced again.
        w.edit_binding_interface(2)
        b2 = SmartBuilder(w.project,
                          store=BinStore.load_directory(store_dir))
        report = b2.build()
        assert report.compiled == sorted(["iface"] + w.users_of(2))


def store_files(store_dir: str) -> dict[str, bytes]:
    """Every store file's bytes, transient locks excluded."""
    out = {}
    for entry in sorted(os.listdir(store_dir)):
        if entry == LOCK_NAME or entry.endswith(".rlock"):
            continue
        with open(os.path.join(store_dir, entry), "rb") as f:
            out[entry] = f.read()
    return out


class TestSlicedParallelDeterminism:
    """Serial and --jobs 4 sliced builds leave byte-identical stores
    (headers with binding_pids/used_bindings, payloads, MANIFEST)."""

    def flow(self, store_dir: str, jobs: int) -> None:
        w = sliced_workload(6, clients_per_binding=2)
        b = SmartBuilder(w.project)
        if jobs == 0:
            b.build()
        else:
            parallel_build(b, jobs=jobs, pool="thread")
        b.store.save_directory(store_dir)
        w.edit_binding_interface(4)
        b2 = SmartBuilder(w.project,
                          store=BinStore.load_directory(store_dir))
        if jobs == 0:
            report = b2.build()
        else:
            report = parallel_build(b2, jobs=jobs, pool="thread")
        assert report.compiled == sorted(["iface"] + w.users_of(4))
        b2.store.save_directory(store_dir)

    def test_serial_and_jobs4_byte_identical(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "par4")
        self.flow(serial_dir, jobs=0)
        self.flow(parallel_dir, jobs=4)
        want = store_files(serial_dir)
        got = store_files(parallel_dir)
        assert MANIFEST_NAME in want
        assert got == want
