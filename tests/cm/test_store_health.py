"""Store integrity, incremental saves, locking, and safe filenames."""

import json
import os

import pytest

from repro.cm import BinRecord, BinStore, CutoffBuilder, Project
from repro.cm.faults import (
    bit_flip,
    delete_file,
    garbage_header,
    header_path,
    payload_path,
    plant_stale_lock,
    truncate_file,
)
from repro.cm.store import (
    FORMAT_VERSION,
    LOCK_NAME,
    MANIFEST_NAME,
    StoreLockedError,
    escape_name,
    unescape_name,
)

SOURCES = {
    "base": "structure Base = struct fun triple x = 3 * x end",
    "mid": "structure Mid = struct fun six x = Base.triple (2 * x) end",
    "app": "structure App = struct val answer = Mid.six 7 end",
}


@pytest.fixture
def saved(tmp_path):
    """A built project saved to disk; returns (project, bin_dir)."""
    project = Project.from_sources(SOURCES)
    builder = CutoffBuilder(project)
    builder.build()
    bin_dir = str(tmp_path / "bins")
    builder.store.save_directory(bin_dir)
    return project, bin_dir


def rebuild(project, bin_dir):
    """A fresh session over the on-disk store; returns the builder and
    its build report."""
    store = BinStore.load_directory(bin_dir)
    builder = CutoffBuilder(project, store=store)
    return builder, builder.build()


class TestDamageTaxonomy:
    def test_orphaned_header_is_cache_miss_not_crash(self, saved):
        project, bin_dir = saved
        delete_file(payload_path(bin_dir, "mid"))
        builder, report = rebuild(project, bin_dir)  # no FileNotFoundError
        assert "mid" in report.compiled
        assert builder.health.kinds_for("mid") == ["orphaned-header"]
        assert not builder.health.ok

    def test_orphaned_payload_reported(self, saved):
        project, bin_dir = saved
        delete_file(header_path(bin_dir, "mid"))
        builder, report = rebuild(project, bin_dir)
        assert "mid" in report.compiled
        assert "orphaned-payload" in builder.health.kinds_for("mid")

    def test_garbage_header_json(self, saved):
        project, bin_dir = saved
        garbage_header(header_path(bin_dir, "mid"))
        builder, report = rebuild(project, bin_dir)
        assert "mid" in report.compiled
        assert "bad-header-json" in builder.health.kinds_for("mid")

    def test_payload_bit_flip_caught_by_checksum(self, saved):
        project, bin_dir = saved
        bit_flip(payload_path(bin_dir, "mid"), offset=5)
        builder, report = rebuild(project, bin_dir)
        assert "mid" in report.compiled
        assert "payload-checksum-mismatch" in builder.health.kinds_for("mid")

    def test_payload_truncation_caught_by_checksum(self, saved):
        project, bin_dir = saved
        truncate_file(payload_path(bin_dir, "mid"))
        builder, _report = rebuild(project, bin_dir)
        assert "payload-checksum-mismatch" in builder.health.kinds_for("mid")

    def test_header_tamper_caught_by_record_digest(self, saved):
        project, bin_dir = saved
        path = header_path(bin_dir, "mid")
        with open(path) as f:
            header = json.load(f)
        header["export_pid"] = "0" * 32  # forge the pid, keep valid JSON
        with open(path, "w") as f:
            json.dump(header, f)
        builder, report = rebuild(project, bin_dir)
        assert "mid" in report.compiled
        assert "record-digest-mismatch" in builder.health.kinds_for("mid")

    def test_header_truncation(self, saved):
        project, bin_dir = saved
        truncate_file(header_path(bin_dir, "mid"))
        builder, _report = rebuild(project, bin_dir)
        assert "bad-header-json" in builder.health.kinds_for("mid")

    def test_stale_format_skipped_not_corrupt(self, saved):
        project, bin_dir = saved
        path = header_path(bin_dir, "mid")
        with open(path) as f:
            header = json.load(f)
        # A version no COMPAT_FORMATS entry covers (v3 still loads, so
        # "one less than current" is no longer automatically stale).
        header["format"] = 2
        with open(path, "w") as f:
            json.dump(header, f)
        store = BinStore.load_directory(bin_dir)
        assert store.health.ok  # version skew is not damage
        assert "mid" in store.health.stale
        assert store.get("mid") is None

    def test_missing_record_detected_via_manifest(self, saved):
        project, bin_dir = saved
        delete_file(header_path(bin_dir, "mid"))
        delete_file(payload_path(bin_dir, "mid"))
        builder, report = rebuild(project, bin_dir)
        assert "mid" in report.compiled
        assert "missing-record" in builder.health.kinds_for("mid")

    def test_copied_record_under_wrong_name_rejected(self, saved):
        import shutil

        project, bin_dir = saved
        shutil.copy(header_path(bin_dir, "mid"), header_path(bin_dir, "zzz"))
        shutil.copy(payload_path(bin_dir, "mid"), payload_path(bin_dir, "zzz"))
        store = BinStore.load_directory(bin_dir)
        assert store.get("zzz") is None
        assert any(c.kind == "name-mismatch" for c in store.health.corrupt)

    def test_every_fault_still_converges(self, saved):
        project, bin_dir = saved
        bit_flip(payload_path(bin_dir, "base"), offset=3)
        garbage_header(header_path(bin_dir, "mid"))
        delete_file(payload_path(bin_dir, "app"))
        builder, report = rebuild(project, bin_dir)
        assert set(report.compiled) == {"base", "mid", "app"}
        exports = builder.link()
        assert exports["app"].structures["App"].values["answer"] == 42


class TestFsck:
    def test_healthy(self, saved):
        _project, bin_dir = saved
        report = BinStore.fsck(bin_dir)
        assert report.ok
        assert report.loaded == ["app", "base", "mid"]
        assert "HEALTHY" in report.render_text()

    def test_damaged(self, saved):
        _project, bin_dir = saved
        bit_flip(payload_path(bin_dir, "base"), offset=1)
        report = BinStore.fsck(bin_dir)
        assert not report.ok
        text = report.render_text()
        assert "DAMAGED" in text and "payload-checksum-mismatch" in text
        data = report.to_json()
        assert data["ok"] is False
        assert data["corrupt"][0]["name"] == "base"

    def test_missing_directory_is_empty_not_error(self, tmp_path):
        report = BinStore.fsck(str(tmp_path / "nowhere"))
        assert report.ok
        assert report.loaded == []


class TestIncrementalSave:
    def test_null_save_writes_nothing(self, saved):
        project, bin_dir = saved
        store = BinStore.load_directory(bin_dir)
        builder = CutoffBuilder(project, store=store)
        builder.build()
        stats = store.save_directory(bin_dir)
        assert stats.records_written == 0
        assert stats.bytes_written == 0
        assert stats.records_skipped == 3

    def test_single_edit_writes_single_record(self, saved):
        project, bin_dir = saved
        project.edit("app", SOURCES["app"].replace("7", "8"))
        store = BinStore.load_directory(bin_dir)
        builder = CutoffBuilder(project, store=store)
        report = builder.build()
        assert report.compiled == ["app"]
        stats = store.save_directory(bin_dir)
        assert stats.records_written == 1
        assert stats.bytes_written > 0

    def test_save_to_new_directory_is_full(self, saved, tmp_path):
        _project, bin_dir = saved
        store = BinStore.load_directory(bin_dir)
        stats = store.save_directory(str(tmp_path / "elsewhere"))
        assert stats.records_written == 3

    def test_removed_unit_pruned_from_disk(self, saved):
        project, bin_dir = saved
        store = BinStore.load_directory(bin_dir)
        store.remove("app")
        stats = store.save_directory(bin_dir)
        assert any(e.startswith("app.bin") for e in stats.pruned)
        assert not os.path.exists(header_path(bin_dir, "app"))
        assert not os.path.exists(payload_path(bin_dir, "app"))
        again = BinStore.load_directory(bin_dir)
        assert again.names() == ["base", "mid"]
        assert again.health.ok

    def test_corrupt_debris_pruned_on_save(self, saved):
        project, bin_dir = saved
        delete_file(header_path(bin_dir, "mid"))  # orphan the payload
        builder, _report = rebuild(project, bin_dir)
        builder.store.save_directory(bin_dir)
        report = BinStore.fsck(bin_dir)
        assert report.ok  # self-healed: recompiled + rewrote + pruned
        assert report.loaded == ["app", "base", "mid"]

    def test_dirty_names_tracked(self):
        store = BinStore()
        store.put(BinRecord("a", "d", "p", [], b"x"))
        assert store.dirty_names() == ["a"]


class TestSafeNames:
    def test_traversal_name_stays_inside_store(self, tmp_path):
        store_dir = tmp_path / "store"
        outside = tmp_path / "x.bin"
        store = BinStore()
        store.put(BinRecord("../x", "digest", "pid", [], b"payload"))
        store.save_directory(str(store_dir))
        assert not outside.exists()
        files = set(os.listdir(store_dir))
        assert files <= {escape_name("../x") + suffix
                         for suffix in (".bin", ".bin.json")} \
            | {MANIFEST_NAME}

    def test_traversal_name_round_trips(self, tmp_path):
        store = BinStore()
        record = BinRecord("../x", "digest", "pid",
                           [("dep", "pid2")], b"payload", built_at=7,
                           extra={"k": "v"})
        store.put(record)
        store.save_directory(str(tmp_path / "s"))
        loaded = BinStore.load_directory(str(tmp_path / "s"))
        got = loaded.get("../x")
        assert got is not None
        assert got.payload == b"payload"
        assert got.imports == [("dep", "pid2")]
        assert got.extra == {"k": "v"}
        assert loaded.health.ok

    @pytest.mark.parametrize("name", [
        "../x", "..", ".", "", ".hidden", "a/b\\c", "unit name",
        "%41", "ünïcode", "store.lock", "MANIFEST.json",
    ])
    def test_escape_is_safe_and_invertible(self, name):
        stem = escape_name(name)
        assert "/" not in stem and "\\" not in stem
        assert not stem.startswith(".")
        # Record files always carry .bin/.bin.json suffixes, so even a
        # unit named after the manifest or lock cannot collide with them.
        assert unescape_name(stem) == name

    def test_escape_injective_on_tricky_pairs(self):
        pairs = [("..", "%2E."), ("a/b", "a%2Fb"), ("", "%"),
                 ("%", "%25")]
        seen = {}
        for name, _ in pairs:
            stem = escape_name(name)
            assert stem not in seen, (name, seen[stem])
            seen[stem] = name


class TestLocking:
    def test_garbage_lock_is_stale_and_broken(self, saved):
        project, bin_dir = saved
        plant_stale_lock(bin_dir, garbage=True)
        store = BinStore.load_directory(bin_dir)
        assert store.names() == ["app", "base", "mid"]
        assert any("stale" in note for note in store.health.notes)
        assert not os.path.exists(os.path.join(bin_dir, LOCK_NAME))

    def test_dead_pid_lock_is_stale_and_broken(self, saved):
        project, bin_dir = saved
        plant_stale_lock(bin_dir, pid=-1)
        store = BinStore.load_directory(bin_dir)
        assert store.names() == ["app", "base", "mid"]
        assert any("stale" in note for note in store.health.notes)
        stats = store.save_directory(bin_dir)  # save also unaffected
        assert stats.records_written == 0

    def test_live_lock_blocks_save_with_typed_error(self, saved):
        project, bin_dir = saved
        plant_stale_lock(bin_dir, pid=os.getpid())  # a live owner
        store = BinStore.load_directory(bin_dir, lock_timeout=0.1)
        with pytest.raises(StoreLockedError, match="locked by live pid"):
            store.save_directory(bin_dir, lock_timeout=0.1)

    def test_live_lock_load_proceeds_with_note(self, saved):
        project, bin_dir = saved
        plant_stale_lock(bin_dir, pid=os.getpid())
        store = BinStore.load_directory(bin_dir, lock_timeout=0.1)
        assert store.names() == ["app", "base", "mid"]
        assert any("without the lock" in n for n in store.health.notes)

    def test_lock_released_after_save(self, saved):
        _project, bin_dir = saved
        assert not os.path.exists(os.path.join(bin_dir, LOCK_NAME))


class TestManifest:
    def test_unmanifested_record_ignored(self, saved, tmp_path):
        import shutil

        project, bin_dir = saved
        # Stash app's (valid) files, prune it from the store, then put
        # the files back: a record the manifest never saw, as a crash
        # between record write and manifest write would leave.
        stash = tmp_path / "stash"
        stash.mkdir()
        for path in (header_path(bin_dir, "app"),
                     payload_path(bin_dir, "app")):
            shutil.copy(path, stash / os.path.basename(path))
        store = BinStore.load_directory(bin_dir)
        store.remove("app")
        store.save_directory(bin_dir)
        for entry in os.listdir(stash):
            shutil.copy(stash / entry, os.path.join(bin_dir, entry))

        loaded = BinStore.load_directory(bin_dir)
        assert loaded.get("app") is None
        assert any("unmanifested" in n for n in loaded.health.notes)
        # The build recompiles it and the next save re-adopts it.
        builder = CutoffBuilder(project, store=loaded)
        report = builder.build()
        assert "app" in report.compiled

    def test_corrupt_manifest_degrades_gracefully(self, saved):
        project, bin_dir = saved
        with open(os.path.join(bin_dir, MANIFEST_NAME), "w") as f:
            f.write("{ not json")
        store = BinStore.load_directory(bin_dir)
        # Records still load (scan fallback); damage is reported.
        assert store.names() == ["app", "base", "mid"]
        assert any(c.kind == "bad-manifest" for c in store.health.corrupt)
