"""``python -m repro.cm <dir> --fsck``: health checking from the CLI."""

import json
import os

import pytest

from repro.cm.__main__ import main
from repro.cm.faults import bit_flip, delete_file, payload_path


@pytest.fixture
def srcdir(tmp_path):
    d = tmp_path / "proj"
    d.mkdir()
    (d / "base.sml").write_text(
        "structure Base = struct fun triple x = 3 * x end\n")
    (d / "main.sml").write_text(
        "structure Main = struct val answer = Base.triple 14 end\n")
    return str(d)


@pytest.fixture
def built(srcdir, capsys):
    assert main([srcdir, "--no-link"]) == 0
    capsys.readouterr()
    return srcdir


class TestFsckCli:
    def test_healthy_store_exits_zero(self, built, capsys):
        assert main([built, "--fsck"]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out

    def test_damaged_store_exits_nonzero_with_listing(self, built, capsys):
        bin_dir = os.path.join(built, ".bin")
        bit_flip(payload_path(bin_dir, "base"), offset=2)
        assert main([built, "--fsck"]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "base" in out and "payload-checksum-mismatch" in out

    def test_json_report(self, built, capsys):
        bin_dir = os.path.join(built, ".bin")
        delete_file(payload_path(bin_dir, "main"))
        assert main([built, "--fsck", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["corrupt"][0]["kind"] == "orphaned-header"
        assert data["corrupt"][0]["name"] == "main"

    def test_bin_dir_direct_target(self, built, capsys):
        assert main([os.path.join(built, ".bin"), "--fsck"]) == 0

    def test_missing_store_is_trivially_healthy(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty), "--fsck"]) == 0

    def test_nonexistent_path_never_raises(self, capsys):
        assert main(["/nonexistent/dir", "--fsck"]) == 0
        assert "no store directory" in capsys.readouterr().out

    def test_json_output_is_key_sorted_and_stable(self, built, capsys):
        """Machine consumers diff fsck output: the JSON must be emitted
        with sorted keys so identical stores give identical bytes."""
        bin_dir = os.path.join(built, ".bin")
        delete_file(payload_path(bin_dir, "main"))
        assert main([built, "--fsck", "--json"]) == 1
        first = capsys.readouterr().out
        assert (json.dumps(json.loads(first), indent=1, sort_keys=True)
                == first.rstrip("\n"))
        assert main([built, "--fsck", "--json"]) == 1
        assert capsys.readouterr().out == first

    def test_json_golden(self):
        """The serialized shape is a contract: a synthetic report must
        render to exactly this document."""
        from repro.cm.store import StoreHealthReport

        report = StoreHealthReport(path="/store/.bin", scanned=3)
        report.loaded = ["base", "mid"]
        report.stale = ["old"]
        report.add("main", "orphaned-header",
                   path="/store/.bin/main.payload", detail="missing")
        report.notes = ["removed stale lock"]
        golden = "\n".join([
            '{',
            ' "corrupt": [',
            '  {',
            '   "detail": "missing",',
            '   "kind": "orphaned-header",',
            '   "name": "main",',
            '   "path": "/store/.bin/main.payload"',
            '  }',
            ' ],',
            ' "loaded": [',
            '  "base",',
            '  "mid"',
            ' ],',
            ' "notes": [',
            '  "removed stale lock"',
            ' ],',
            ' "ok": false,',
            ' "path": "/store/.bin",',
            ' "scanned": 3,',
            ' "stale": [',
            '  "old"',
            ' ]',
            '}',
        ])
        assert (json.dumps(report.to_json(), indent=1, sort_keys=True)
                == golden)

    def test_build_warns_on_quarantine_then_fsck_clean(self, built,
                                                       capsys):
        bin_dir = os.path.join(built, ".bin")
        bit_flip(payload_path(bin_dir, "base"), offset=2)
        assert main([built, "--no-link"]) == 0
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        assert "base" in captured.err
        # The rebuild + save healed the store.
        assert main([built, "--fsck"]) == 0


class TestQuarantineFlag:
    def test_quarantine_moves_damage_aside(self, built, capsys):
        bin_dir = os.path.join(built, ".bin")
        bit_flip(payload_path(bin_dir, "base"), offset=2)
        assert main([built, "--fsck", "--quarantine"]) == 1
        assert "DAMAGED" in capsys.readouterr().out

        # The damaged pair now sits in .bin/quarantine/, so the next
        # fsck is healthy and the next build just recompiles the miss.
        qdir = os.path.join(bin_dir, "quarantine")
        assert os.path.isdir(qdir)
        assert any(e.startswith("base") for e in os.listdir(qdir))
        capsys.readouterr()
        assert main([built, "--fsck"]) == 0
        assert "HEALTHY" in capsys.readouterr().out
        assert main([built, "--print", "Main.answer"]) == 0
        out = capsys.readouterr().out
        assert "1 compiled, 1 loaded" in out
        assert "Main.answer = 42" in out

    def test_fsck_without_flag_leaves_damage_in_place(self, built, capsys):
        bin_dir = os.path.join(built, ".bin")
        bit_flip(payload_path(bin_dir, "base"), offset=2)
        assert main([built, "--fsck"]) == 1
        assert not os.path.isdir(os.path.join(bin_dir, "quarantine"))
        # Still damaged on the second look: --fsck alone only reports.
        capsys.readouterr()
        assert main([built, "--fsck"]) == 1
