"""Fault-tolerant supervised builds (tier 1).

The contract under test: **a fault is a scheduling event, not a build
failure.**  A supervised ``--jobs N`` build with injected worker
crashes and hangs must converge to byte-identical store contents to a
clean serial build; a poison unit (fails every attempt) must take down
only its dependents while independent subgraphs finish; a killed build
must finish under ``--resume`` without recompiling completed units;
and every retry, timeout, degradation and skip must surface in the
ledger and the tracer.
"""

import json
import os

import pytest

from repro.cm import (
    BinStore,
    BuildJournal,
    CutoffBuilder,
    SupervisePolicy,
    Supervisor,
    WorkerFaults,
    supervised_build,
)
from repro.cm.store import JOURNAL_NAME, LOCK_NAME, RECORD_LOCK_SUFFIX
from repro.obs.tracer import Tracer
from repro.workload import generate_workload
from repro.workload.shapes import fanout, layered

#: A fast retry policy for tests (real backoffs are milliseconds here).
FAST = SupervisePolicy(retries=2, backoff_base=0.001, backoff_cap=0.01)


def store_files(store_dir):
    """Every store file's bytes; locks and the journal excluded (both
    are transient bookkeeping, not build artifacts)."""
    out = {}
    for entry in sorted(os.listdir(store_dir)):
        if entry == LOCK_NAME or entry == JOURNAL_NAME \
                or entry.endswith(RECORD_LOCK_SUFFIX):
            continue
        path = os.path.join(store_dir, entry)
        if os.path.isdir(path):
            continue
        with open(path, "rb") as f:
            out[entry] = f.read()
    return out


def serial_reference(shape, store_dir):
    """A clean serial build saved to ``store_dir``: the byte-identity
    target every supervised build must reproduce."""
    workload = generate_workload(shape, helpers_per_unit=1)
    builder = CutoffBuilder(workload.project)
    builder.build()
    builder.store.save_directory(store_dir)
    return builder


class TestFaultsConverge:
    def test_crash_plus_hang_is_byte_identical_to_serial(self, tmp_path):
        """The acceptance build: 40 units, jobs=4, one worker crash +
        one hung worker -- completes, byte-identical to clean serial."""
        shape = fanout(38)  # base + 38 middle + top = 40 units
        assert len(shape) == 40
        serial_dir = str(tmp_path / "serial")
        serial_reference(shape, serial_dir)

        workload = generate_workload(shape, helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        faults = WorkerFaults(crash_units=frozenset({"u005"}),
                              slow_units=frozenset({"u007"}),
                              delay=5.0)
        report = supervised_build(
            builder, jobs=4, pool="thread", faults=faults,
            policy=SupervisePolicy(retries=2, backoff_base=0.001,
                                   timeout=0.25))
        assert len(report.compiled) == 40
        assert not report.failed and not report.skipped
        assert report.retries >= 2  # the crash and the timeout
        assert report.timeouts == 1

        supervised_dir = str(tmp_path / "supervised")
        builder.store.save_directory(supervised_dir)
        assert store_files(supervised_dir) == store_files(serial_dir)

    def test_crash_retries_all_the_way_up_a_chain(self, tmp_path):
        """Crashes in different waves all recover (one retry each)."""
        shape = layered([3, 3, 3], seed=7)
        serial_dir = str(tmp_path / "serial")
        serial_reference(shape, serial_dir)

        workload = generate_workload(shape, helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        faults = WorkerFaults(
            crash_units=frozenset({"u000", "u004", "u008"}))
        report = supervised_build(builder, jobs=2, pool="thread",
                                  faults=faults, policy=FAST)
        assert not report.failed and not report.skipped
        assert report.retries == 3

        out_dir = str(tmp_path / "supervised")
        builder.store.save_directory(out_dir)
        assert store_files(out_dir) == store_files(serial_dir)

    def test_inline_tier_retries_too(self):
        """jobs=1 (inline, no pool) still runs the retry machinery."""
        workload = generate_workload(fanout(3), helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        report = supervised_build(
            builder, jobs=1, faults=WorkerFaults(
                crash_units=frozenset({"u002"})),
            policy=FAST)
        assert not report.failed
        assert report.retries == 1
        assert report.pool == "inline"


class TestPoisonAndSkip:
    SHAPE = [[], [0], [1], [], [3]]  # two chains: 0-1-2 and 3-4

    def build_with_poison(self, meter=None):
        workload = generate_workload(self.SHAPE, helpers_per_unit=1)
        builder = CutoffBuilder(workload.project, meter=meter)
        report = supervised_build(
            builder, jobs=2, pool="thread",
            faults=WorkerFaults(poison_units=frozenset({"u001"})),
            policy=SupervisePolicy(retries=1, backoff_base=0.001))
        return builder, report

    def test_poison_unit_skips_only_its_dependents(self):
        builder, report = self.build_with_poison()
        assert report.failed == ["u001"]
        assert report.skipped == ["u002"]
        # The independent subgraph (u003 -> u004) and the poison
        # unit's own import (u000) all finished.
        assert sorted(report.compiled) == ["u000", "u003", "u004"]

    def test_ledger_explains_the_skip(self):
        builder, _report = self.build_with_poison()
        failed = builder.ledger.get("u001")
        assert failed.verdict == "failed"
        assert failed.cause == "failed-after-retries"
        assert "InjectedCrash" in failed.detail
        skipped = builder.ledger.get("u002")
        assert skipped.verdict == "skipped"
        assert skipped.cause == "poison-import"
        assert skipped.culprit == "u001"
        assert "u001" in skipped.describe()
        assert {d.unit for d in builder.ledger.skipped()} \
            == {"u001", "u002"}
        # --explain renders both casualties.
        text = builder.ledger.render_text()
        assert "failed-after-retries" in text
        assert "poison-import" in text

    def test_report_summary_and_stats_name_the_casualties(self):
        _builder, report = self.build_with_poison()
        assert "1 failed" in report.summary()
        assert "1 skipped" in report.summary()
        stats = report.stats()
        assert stats["failed"] == 1
        assert stats["skipped"] == 1
        assert stats["causes"]["failed-after-retries"] == 1
        assert stats["causes"]["poison-import"] == 1

    def test_deterministic_failures_are_not_retried(self):
        """The typed budget: a parse error is not transient, so it
        poisons immediately without burning retries."""
        workload = generate_workload([[], [0]], helpers_per_unit=1)
        workload.project.edit(
            "u001",
            "structure Broken = struct val x = no_such_thing end")
        builder = CutoffBuilder(workload.project)
        report = supervised_build(builder, jobs=2, pool="thread",
                                  policy=FAST)
        assert report.failed == ["u001"]
        assert report.retries == 0
        decision = builder.ledger.get("u001")
        assert "not a retryable failure" in decision.detail


class TestResume:
    def test_killed_build_resumes_without_recompiling(self, tmp_path):
        bin_dir = str(tmp_path / "bin")
        shape = layered([3, 3, 3], seed=1)

        # Session 1: "killed" after checkpointing two of three waves.
        workload = generate_workload(shape, helpers_per_unit=1)
        first = CutoffBuilder(workload.project)
        partial = supervised_build(first, jobs=2, pool="thread",
                                   checkpoint_dir=bin_dir, max_waves=2)
        finished = set(partial.compiled)
        assert 0 < len(finished) < len(shape)
        journal_path = os.path.join(bin_dir, JOURNAL_NAME)
        assert os.path.exists(journal_path)
        journal = json.loads(open(journal_path).read())
        assert set(journal["completed"]) == finished

        # Session 2: resume.  Completed units load from the
        # checkpointed store; only the missing wave compiles.
        workload2 = generate_workload(shape, helpers_per_unit=1)
        store = BinStore.load_directory(bin_dir)
        assert store.health.ok
        second = CutoffBuilder(workload2.project, store=store)
        report = supervised_build(second, jobs=2, pool="thread",
                                  resume=True, checkpoint_dir=bin_dir)
        assert not report.failed and not report.skipped
        assert finished.isdisjoint(report.compiled)
        assert set(report.loaded) == finished
        assert report.resumed == len(finished)
        # The journal is gone once the build completes...
        assert not os.path.exists(journal_path)

        # ...and the result is byte-identical to a clean serial build.
        serial_dir = str(tmp_path / "serial")
        serial_reference(shape, serial_dir)
        assert store_files(bin_dir) == store_files(serial_dir)

    def test_journal_damage_degrades_to_store_only_resume(self, tmp_path):
        bin_dir = str(tmp_path / "bin")
        shape = layered([2, 2], seed=3)
        workload = generate_workload(shape, helpers_per_unit=1)
        first = CutoffBuilder(workload.project)
        supervised_build(first, jobs=2, pool="thread",
                         checkpoint_dir=bin_dir, max_waves=1)
        with open(os.path.join(bin_dir, JOURNAL_NAME), "w") as f:
            f.write("{torn json")

        workload2 = generate_workload(shape, helpers_per_unit=1)
        store = BinStore.load_directory(bin_dir)
        second = CutoffBuilder(workload2.project, store=store)
        report = supervised_build(second, jobs=2, pool="thread",
                                  resume=True, checkpoint_dir=bin_dir)
        assert not report.failed
        # No journal evidence -> resumed count stays 0, but the store
        # still spares the finished wave a recompile.
        assert report.resumed == 0
        assert report.loaded  # wave 0 came from the store

    def test_journal_roundtrip(self, tmp_path):
        from repro.cm.faults import REAL_FS

        journal = BuildJournal(str(tmp_path), REAL_FS)
        journal.completed = {"a": "pid1", "b": "pid2"}
        assert journal.write()
        loaded = BuildJournal.load(str(tmp_path), REAL_FS)
        assert loaded.completed == {"a": "pid1", "b": "pid2"}
        journal.clear()
        assert BuildJournal.load(str(tmp_path), REAL_FS).completed == {}


class TestDegradation:
    def test_broken_pool_degrades_and_finishes(self):
        class BrokenExecutor:
            def submit(self, *args, **kwargs):
                raise RuntimeError("pool is toast")

            def shutdown(self, **kwargs):
                pass

        workload = generate_workload(layered([2, 2], seed=2),
                                     helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        supervisor = Supervisor(
            jobs=2, pool="process", policy=FAST,
            executor_factory=lambda jobs, pool: (BrokenExecutor(),
                                                 "process"))
        report = supervisor.build(builder)
        assert not report.failed and not report.skipped
        assert len(report.compiled) == 4
        assert report.degraded >= 1
        assert report.pool in ("thread", "inline")

    def test_degrades_all_the_way_to_inline(self):
        """Both pool tiers broken: the build still completes inline."""
        class BrokenExecutor:
            def submit(self, *args, **kwargs):
                raise RuntimeError("no workers anywhere")

            def shutdown(self, **kwargs):
                pass

        workload = generate_workload([[], [0]], helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        supervisor = Supervisor(
            jobs=2, pool="process", policy=FAST,
            executor_factory=lambda jobs, pool: (BrokenExecutor(),
                                                 "process"))
        # Make the degraded thread tier broken too.
        supervisor_make = supervisor.executor_factory
        import repro.cm.supervise as supervise_mod
        original = supervise_mod.make_executor
        supervise_mod.make_executor = \
            lambda jobs, pool: (BrokenExecutor(), "thread") \
            if pool == "thread" else original(jobs, pool)
        try:
            report = supervisor.build(builder)
        finally:
            supervise_mod.make_executor = original
        assert not report.failed
        assert report.pool == "inline"
        assert report.degraded >= 2


class TestObservability:
    def test_trace_carries_retry_and_timeout_spans(self):
        tracer = Tracer()
        workload = generate_workload(fanout(4), helpers_per_unit=1)
        builder = CutoffBuilder(workload.project, meter=tracer)
        faults = WorkerFaults(crash_units=frozenset({"u002"}),
                              slow_units=frozenset({"u003"}),
                              delay=5.0)
        report = supervised_build(
            builder, jobs=3, pool="thread", faults=faults,
            policy=SupervisePolicy(retries=2, backoff_base=0.001,
                                   timeout=0.25))
        assert not report.failed
        retry_events = tracer.events_named("retry")
        assert {e.args["unit"] for e in retry_events} \
            >= {"u002", "u003"}
        assert tracer.spans_named("retry-backoff")
        timeout_events = tracer.events_named("timeout")
        assert [e.args["unit"] for e in timeout_events] == ["u003"]
        assert tracer.counters.get("supervise.retries", 0) \
            == report.retries

    def test_poison_and_skip_events(self):
        tracer = Tracer()
        workload = generate_workload([[], [0]], helpers_per_unit=1)
        builder = CutoffBuilder(workload.project, meter=tracer)
        report = supervised_build(
            builder, jobs=2, pool="thread",
            faults=WorkerFaults(poison_units=frozenset({"u000"})),
            policy=FAST)
        assert report.failed == ["u000"]
        assert [e.args["unit"] for e in tracer.events_named("poison")] \
            == ["u000"]
        skips = tracer.events_named("skip")
        assert [(e.args["unit"], e.args["culprit"]) for e in skips] \
            == [("u001", "u000")]


class TestBuilderEntryPoint:
    def test_build_kwargs_route_through_supervisor(self, tmp_path):
        """``builder.build(policy=...)`` is the supervised path."""
        workload = generate_workload(fanout(3), helpers_per_unit=1)
        builder = CutoffBuilder(workload.project)
        report = builder.build(jobs=2, pool="thread", policy=FAST,
                               checkpoint_dir=str(tmp_path / "bin"))
        assert not report.failed
        assert len(report.compiled) == 5
        # The checkpoint really landed.
        store = BinStore.load_directory(str(tmp_path / "bin"))
        assert sorted(store.names()) == sorted(builder.units)
