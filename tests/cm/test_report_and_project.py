"""Build reports and project bookkeeping."""

import pytest

from repro.cm import BuildReport, Project, UnitOutcome


class TestBuildReport:
    def test_partition_by_action(self):
        report = BuildReport()
        report.add(UnitOutcome("a", "compiled", "new"))
        report.add(UnitOutcome("b", "loaded", ""))
        report.add(UnitOutcome("c", "cached", ""))
        report.add(UnitOutcome("d", "compiled", "source changed", True))
        assert report.compiled == ["a", "d"]
        assert report.loaded == ["b"]
        assert report.cached == ["c"]
        assert report.n_compiled == 2

    def test_cutoffs_are_unchanged_pids(self):
        report = BuildReport()
        report.add(UnitOutcome("a", "compiled", "x", pid_changed=False))
        report.add(UnitOutcome("b", "compiled", "x", pid_changed=True))
        report.add(UnitOutcome("c", "loaded", "x", pid_changed=False))
        assert report.cutoffs() == ["a"]

    def test_summary_mentions_cutoffs(self):
        report = BuildReport()
        report.add(UnitOutcome("a", "compiled", "x", pid_changed=False))
        assert "cutoff at: a" in report.summary()

    def test_summary_counts(self):
        report = BuildReport()
        report.add(UnitOutcome("a", "compiled", "", True))
        report.add(UnitOutcome("b", "loaded", ""))
        assert report.summary().startswith("1 compiled, 1 loaded")


class TestProject:
    def test_versions_monotone(self):
        p = Project()
        p.add("a", "structure A = struct end")
        v1 = p.version("a")
        p.touch("a")
        assert p.version("a") > v1

    def test_duplicate_add_rejected(self):
        p = Project()
        p.add("a", "x")
        with pytest.raises(ValueError):
            p.add("a", "y")

    def test_remove(self):
        p = Project()
        p.add("a", "x")
        p.remove("a")
        assert "a" not in p
        assert len(p) == 0

    def test_names_sorted(self):
        p = Project.from_sources({"z": "1", "a": "2"})
        assert p.names() == ["a", "z"]

    def test_total_lines(self):
        p = Project.from_sources({"a": "one\ntwo\n", "b": "three"})
        assert p.total_lines() == 3 + 1

    def test_from_directory(self, tmp_path):
        (tmp_path / "one.sml").write_text("structure A = struct end")
        (tmp_path / "two.sml").write_text("structure B = struct end")
        (tmp_path / "ignored.txt").write_text("not sml")
        p = Project.from_directory(str(tmp_path))
        assert p.names() == ["one", "two"]

    def test_edit_changes_text(self):
        p = Project.from_sources({"a": "old"})
        p.edit("a", "new")
        assert p.source("a") == "new"
