"""Stable-archive hardening: typed errors on damage, and builders that
fall back to sources instead of crashing."""

import pytest

from repro.cm import CutoffBuilder, Project, StableArchiveError
from repro.cm.stable import MAGIC, parse_archive, stabilize

LIB = {
    "mathsig": "signature MATH = sig val double : int -> int "
               "val square : int -> int end",
    "math": """
        structure Math : MATH = struct
          fun double x = x * 2
          fun square x = x * x
        end
    """,
}

APP = {
    "app": "structure App = struct val v = Math.square (Math.double 3) end",
}


@pytest.fixture
def archive():
    project = Project.from_sources(LIB)
    builder = CutoffBuilder(project)
    builder.build()
    return stabilize(builder, ["mathsig", "math"])


class TestArchiveValidation:
    def test_bad_magic_typed(self):
        with pytest.raises(StableArchiveError, match="not a stable"):
            parse_archive(b"garbage")

    def test_truncation_typed(self, archive):
        for cut in (4, 16, len(archive) // 2, len(archive) - 1):
            with pytest.raises(StableArchiveError):
                parse_archive(archive[:cut])

    def test_tiny_blob_typed(self):
        with pytest.raises(StableArchiveError, match="truncated"):
            parse_archive(MAGIC)

    def test_payload_bit_flip_caught(self, archive):
        # Flip a byte in the payload region (between header and digest).
        blob = bytearray(archive)
        blob[-20] ^= 0xFF
        with pytest.raises(StableArchiveError,
                           match="digest|checksum"):
            parse_archive(bytes(blob))

    def test_header_bit_flip_caught(self, archive):
        blob = bytearray(archive)
        blob[len(MAGIC) + 10] ^= 0x01
        with pytest.raises(StableArchiveError):
            parse_archive(bytes(blob))

    def test_trailing_garbage_caught(self, archive):
        with pytest.raises(StableArchiveError):
            parse_archive(archive + b"xx")

    def test_intact_archive_still_parses(self, archive):
        units = parse_archive(archive)
        assert [u.name for u in units] == ["mathsig", "math"]

    def test_stable_archive_error_is_a_value_error(self):
        assert issubclass(StableArchiveError, ValueError)


class TestBuilderFallback:
    def test_damaged_archive_falls_back_to_sources(self, archive):
        # The client has BOTH the archive and the library sources; when
        # the archive is damaged, the build quarantines it and compiles
        # the library from source -- same answer, no exception.
        project = Project.from_sources({**LIB, **APP})
        builder = CutoffBuilder(project)
        builder.add_stable_archive(archive[:-8])  # truncated
        report = builder.build()
        assert not builder.health.ok
        assert any(c.kind == "stable-archive"
                   for c in builder.health.corrupt)
        assert set(report.compiled) == {"mathsig", "math", "app"}
        skipped = [o for o in report.outcomes if o.action == "skipped"]
        assert skipped and "damaged stable archive" in skipped[0].reason
        exports = builder.link()
        assert exports["app"].structures["App"].values["v"] == 36

    def test_damaged_archive_without_sources_fails_typed(self, archive):
        from repro.cm import DependencyError
        from repro.elab.errors import ElabError

        project = Project.from_sources(APP)  # no library sources
        builder = CutoffBuilder(project)
        builder.add_stable_archive(bytes(reversed(archive)))
        # No stable providers and no sources: an ordinary typed build
        # error (the library's modules are simply unbound), not a raw
        # parse crash from the archive reader.
        with pytest.raises((DependencyError, ElabError)):
            builder.build()
        assert not builder.health.ok

    def test_intact_archive_unaffected(self, archive):
        project = Project.from_sources(APP)
        builder = CutoffBuilder(project)
        builder.add_stable_archive(archive)
        report = builder.build()
        assert set(report.loaded) == {"mathsig", "math"}
        assert builder.health.ok
        exports = builder.link()
        assert exports["app"].structures["App"].values["v"] == 36
