"""Startup sweep: a killed prior run must not haunt the daemon.

A ``kill -9`` mid-build can leave two kinds of debris in a store
directory: a torn ``BUILD_JOURNAL.json`` checkpoint (the build that
wrote it no longer exists, so there is nothing to resume) and orphaned
``.rlock`` record locks whose owner pid is dead (merge-savers skip
locked records, so a dead owner's lock would shadow its record
forever).  :func:`repro.cm.store.sweep_stale_artifacts` removes both on
the daemon's first contact with a group; live locks are left alone.
"""

import json
import os
import subprocess
import sys

from repro.cm import (
    BinStore,
    BuildDaemon,
    CutoffBuilder,
    Project,
    SupervisePolicy,
    sweep_stale_artifacts,
)
from repro.cm.store import JOURNAL_NAME
from repro.workload import generate_workload
from repro.workload.shapes import chain

POLICY = SupervisePolicy(retries=1, backoff_base=0.001, backoff_cap=0.01)


def seeded_group(srcdir):
    """A built source tree whose store is then littered with debris
    from a (simulated) killed run: torn journal, torn journal tmp, an
    orphaned dead-owner lock, an unreadable lock, and one *live* lock
    that must survive the sweep."""
    workload = generate_workload(chain(3), helpers_per_unit=1)
    os.makedirs(srcdir)
    for name in workload.project.names():
        with open(os.path.join(srcdir, name + ".sml"), "w",
                  encoding="utf-8") as fh:
            fh.write(workload.project.source(name))
    bin_dir = os.path.join(srcdir, ".bin")
    builder = CutoffBuilder(Project.from_directory(srcdir))
    builder.build()
    builder.store.save_directory(bin_dir)

    # The debris.  A really-dead pid: a child that has already exited.
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    with open(os.path.join(bin_dir, JOURNAL_NAME), "w") as fh:
        fh.write('{"torn": ')  # truncated mid-write
    with open(os.path.join(bin_dir, JOURNAL_NAME + ".tmp"), "w") as fh:
        fh.write("{}")
    with open(os.path.join(bin_dir, "u000.rlock"), "w") as fh:
        fh.write(json.dumps({"pid": child.pid}))
    with open(os.path.join(bin_dir, "u001.rlock"), "w") as fh:
        fh.write("garbage, not json")  # unreadable == stale
    with open(os.path.join(bin_dir, "zzz.rlock"), "w") as fh:
        fh.write(json.dumps({"pid": os.getpid()}))  # live: keep
    return workload, bin_dir


def test_sweep_function_removes_exactly_the_debris(tmp_path):
    _workload, bin_dir = seeded_group(str(tmp_path / "grp"))
    swept = sweep_stale_artifacts(bin_dir)
    assert sorted(swept) == [JOURNAL_NAME, JOURNAL_NAME + ".tmp",
                             "u000.rlock", "u001.rlock"]
    left = sorted(os.listdir(bin_dir))
    assert JOURNAL_NAME not in left
    assert JOURNAL_NAME + ".tmp" not in left
    assert "u000.rlock" not in left and "u001.rlock" not in left
    assert "zzz.rlock" in left  # live owner: untouched
    # Idempotent (the live lock is not debris), and harmless on
    # directories that don't exist.
    assert sweep_stale_artifacts(bin_dir) == []
    assert sweep_stale_artifacts(str(tmp_path / "nope")) == []


def test_daemon_first_contact_sweeps_torn_journal_and_orphans(tmp_path):
    srcdir = str(tmp_path / "grp")
    workload, bin_dir = seeded_group(srcdir)
    daemon = BuildDaemon(jobs=2, pool="thread", policy=POLICY)
    try:
        first = daemon.request(srcdir)
        second = daemon.request(srcdir)
    finally:
        daemon.shutdown()
    assert sorted(first.swept) == [JOURNAL_NAME, JOURNAL_NAME + ".tmp",
                                   "u000.rlock", "u001.rlock"]
    # The swept journal was NOT treated as a resume checkpoint: the
    # warm store served every unit (all loaded, none recompiled).
    assert not first.report.compiled
    assert not first.report.resumed
    assert len(first.report.loaded) == len(workload.project)
    # Sweep happens once, on first contact.
    assert second.swept == []
    assert not os.path.exists(os.path.join(bin_dir, JOURNAL_NAME))
    assert os.path.exists(os.path.join(bin_dir, "zzz.rlock"))
    assert BinStore.fsck(bin_dir).ok
