"""Dependency analysis over source files."""

import pytest

from repro.cm import DependencyError, Project, analyze


def project(**sources):
    return Project.from_sources(sources)


class TestAnalysis:
    def test_simple_chain(self):
        p = project(
            a="structure A = struct val v = 1 end",
            b="structure B = struct val w = A.v end",
        )
        graph = analyze(p)
        assert graph.deps == {"a": [], "b": ["a"]}
        assert graph.order == ["a", "b"]

    def test_signature_dependency(self):
        p = project(
            sigs="signature S = sig val v : int end",
            impl="structure I : S = struct val v = 1 end",
        )
        graph = analyze(p)
        assert graph.deps["impl"] == ["sigs"]

    def test_functor_dependency(self):
        p = project(
            f="functor F(X : sig end) = struct end",
            use="structure U = F(struct end)",
        )
        graph = analyze(p)
        assert graph.deps["use"] == ["f"]

    def test_open_dependency(self):
        p = project(
            a="structure A = struct val v = 1 end",
            b="local open A in structure B = struct val w = v end end",
        )
        graph = analyze(p)
        assert graph.deps["b"] == ["a"]

    def test_diamond(self):
        p = project(
            base="structure Base = struct val v = 1 end",
            l="structure L = struct val x = Base.v end",
            r="structure R = struct val y = Base.v end",
            top="structure T = struct val s = L.x + R.y end",
        )
        graph = analyze(p)
        assert graph.deps["top"] == ["l", "r"]
        assert graph.order.index("base") < graph.order.index("l")
        assert graph.order.index("l") < graph.order.index("top")

    def test_no_false_self_dependency(self):
        p = project(a="structure A = struct val v = 1 end "
                      "structure A2 = struct val w = A.v end")
        graph = analyze(p)
        assert graph.deps["a"] == []

    def test_basis_names_ignored(self):
        p = project(a="structure A = struct val v = List.length [1] end")
        assert analyze(p).deps["a"] == []

    def test_uses_tracked_per_name(self):
        p = project(
            a="structure A1 = struct val v = 1 end "
              "structure A2 = struct val w = 2 end",
            b="structure B = struct val x = A1.v end",
        )
        graph = analyze(p)
        assert graph.uses["b"] == {"a": {"structures:A1"}}

    def test_transitive_dependents(self):
        p = project(
            a="structure A = struct val v = 1 end",
            b="structure B = struct val w = A.v end",
            c="structure C = struct val x = B.w end",
        )
        graph = analyze(p)
        assert graph.transitive_dependents("a") == {"b", "c"}
        assert graph.transitive_dependents("c") == set()


class TestErrors:
    def test_cycle_detected(self):
        p = project(
            a="structure A = struct val v = B.w end",
            b="structure B = struct val w = A.v end",
        )
        with pytest.raises(DependencyError, match="cycle"):
            analyze(p)

    def test_duplicate_module_name(self):
        p = project(
            a="structure Same = struct end",
            b="structure Same = struct end",
        )
        with pytest.raises(DependencyError, match="defined by both"):
            analyze(p)

    def test_top_level_val_rejected(self):
        # Footnote 4: units must contain module declarations only.
        p = project(a="val x = 1")
        with pytest.raises(DependencyError, match="only"):
            analyze(p)

    def test_top_level_fun_rejected(self):
        p = project(a="fun f x = x")
        with pytest.raises(DependencyError, match="only"):
            analyze(p)

    def test_local_module_decs_allowed(self):
        p = project(a="local structure H = struct val v = 1 end in "
                      "structure A = struct val w = H.v end end")
        graph = analyze(p)
        assert graph.order == ["a"]

    def test_visibility_enforced(self):
        p = project(
            a="structure A = struct val v = 1 end",
            b="structure B = struct val w = A.v end",
        )
        with pytest.raises(DependencyError, match="visibility"):
            analyze(p, visible={"a": set(), "b": set()})

    def test_restrict(self):
        p = project(
            a="structure A = struct val v = 1 end",
            b="structure B = struct val w = 2 end",
        )
        graph = analyze(p, restrict=["a"])
        assert graph.order == ["a"]


class TestCyclePaths:
    def test_error_reports_one_concrete_cycle(self):
        p = project(
            a="structure A = struct val v = B.w end",
            b="structure B = struct val w = A.v end",
        )
        with pytest.raises(DependencyError,
                           match="dependency cycle among units: "
                                 "a -> b -> a"):
            analyze(p)

    def test_error_carries_the_cycle_path(self):
        p = project(
            a="structure A = struct val v = C.x end",
            b="structure B = struct val w = A.v end",
            c="structure C = struct val x = B.w end",
        )
        with pytest.raises(DependencyError) as exc:
            analyze(p)
        cycle = exc.value.cycle
        assert cycle[0] == cycle[-1]
        assert sorted(cycle[:-1]) == ["a", "b", "c"]

    def test_downstream_waiter_is_not_reported_as_the_cycle(self):
        # d only waits on the a<->b cycle; the concrete path must not
        # include it (the old message listed every stuck unit).
        p = project(
            a="structure A = struct val v = B.w end",
            b="structure B = struct val w = A.v end",
            d="structure D = struct val y = A.v end",
        )
        with pytest.raises(DependencyError) as exc:
            analyze(p)
        assert "d" not in exc.value.cycle

    def test_find_cycle_is_deterministic(self):
        from repro.cm.depend import find_cycle, format_cycle

        deps = {"x": {"y"}, "y": {"x"}, "z": {"x"}}
        assert find_cycle(deps) == find_cycle(deps)
        assert format_cycle(["a", "b", "a"]) == "a -> b -> a"
