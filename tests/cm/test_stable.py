"""Stable libraries: a built group frozen into one archive."""

import pytest

from repro.cm import CutoffBuilder, Project
from repro.cm.stable import parse_archive, stabilize

LIB = {
    "mathsig": "signature MATH = sig val double : int -> int "
               "val square : int -> int end",
    "math": """
        structure Math : MATH = struct
          fun double x = x * 2
          fun square x = x * x
        end
    """,
}

APP = {
    "app": "structure App = struct val v = Math.square (Math.double 3) end",
}


@pytest.fixture
def archive():
    project = Project.from_sources(LIB)
    builder = CutoffBuilder(project)
    builder.build()
    return stabilize(builder, ["mathsig", "math"])


class TestArchiveFormat:
    def test_roundtrip(self, archive):
        units = parse_archive(archive)
        assert [u.name for u in units] == ["mathsig", "math"]
        assert "Math" in units[1].provides
        assert units[1].imports[0][0] == "mathsig"

    def test_not_closed_rejected(self):
        project = Project.from_sources({**LIB, **APP})
        builder = CutoffBuilder(project)
        builder.build()
        with pytest.raises(ValueError, match="closed"):
            stabilize(builder, ["app"])  # app imports math, not packed

    def test_must_be_built(self):
        project = Project.from_sources(LIB)
        builder = CutoffBuilder(project)
        with pytest.raises(ValueError, match="build"):
            stabilize(builder, ["math"])

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a stable"):
            parse_archive(b"garbage")

    def test_truncation_rejected(self, archive):
        with pytest.raises(Exception):
            parse_archive(archive[:-4])


class TestStableClients:
    def test_client_builds_without_library_sources(self, archive):
        # The client project contains ONLY the app source.
        project = Project.from_sources(APP)
        builder = CutoffBuilder(project)
        builder.add_stable_archive(archive)
        report = builder.build()
        assert set(report.loaded) == {"mathsig", "math"}
        assert report.compiled == ["app"]
        exports = builder.link()
        assert exports["app"].structures["App"].values["v"] == 36

    def test_client_rebuild_never_touches_stable(self, archive):
        project = Project.from_sources(APP)
        builder = CutoffBuilder(project)
        builder.add_stable_archive(archive)
        builder.build()
        project.edit("app", APP["app"].replace("3", "4"))
        report = builder.build()
        assert report.compiled == ["app"]
        exports = builder.link()
        assert exports["app"].structures["App"].values["v"] == 64

    def test_stable_units_have_correct_pids(self, archive):
        project = Project.from_sources(APP)
        builder = CutoffBuilder(project)
        builder.add_stable_archive(archive)
        builder.build()
        # The rehydrated stable units registered under their pids; the
        # client's import list names them.
        app = builder.units["app"]
        assert app.import_pid_of("math") == \
            builder.units["math"].export_pid

    def test_dependency_analysis_uses_provides(self, archive):
        project = Project.from_sources(APP)
        builder = CutoffBuilder(project)
        builder.add_stable_archive(archive)
        builder.build()
        assert builder.last_graph.deps["app"] == ["math", "mathsig"] or \
            builder.last_graph.deps["app"] == ["math"]

    def test_two_archives_layer(self, archive):
        # A second stable library built on top of the first.
        mid_project = Project.from_sources({
            "mid": "structure Mid = struct val six = Math.double 3 end",
        })
        mid_builder = CutoffBuilder(mid_project)
        mid_builder.add_stable_archive(archive)
        mid_builder.build()
        # Note: stabilize requires closure, so pack mid alone fails...
        with pytest.raises(ValueError, match="closed"):
            stabilize(mid_builder, ["mid"])
        # ...but clients can simply load both archives.
        app_project = Project.from_sources({
            "top": "structure Top = struct val v = Mid.six + "
                   "Math.square 2 end",
        })
        top_builder = CutoffBuilder(app_project)
        top_builder.add_stable_archive(archive)
        # Build mid from source in the same project instead.
        app_project.add(
            "mid", "structure Mid = struct val six = Math.double 3 end")
        report = top_builder.build()
        assert set(report.compiled) == {"mid", "top"}
        exports = top_builder.link()
        assert exports["top"].structures["Top"].values["v"] == 10


class TestStableWithGroups:
    def test_group_build_over_stable_library(self, archive):
        from repro.cm import Group, GroupBuilder

        project = Project.from_sources({
            "physics": "structure Physics = struct "
                       "val v = Math.double 4 end",
            "render": "structure Render = struct "
                      "val s = Math.square 3 end",
        })
        physics = Group("physics", ["physics"])
        render = Group("render", ["render"])
        top = Group("all", [], imports=[physics, render])
        gb = GroupBuilder(project)
        gb.add_stable_archive(archive)
        reports = gb.build(top)
        assert set(reports["(stable)"].loaded) == {"mathsig", "math"}
        assert reports["physics"].compiled == ["physics"]
        exports = gb.link()
        assert exports["physics"].structures["Physics"].values["v"] == 8
        assert exports["render"].structures["Render"].values["s"] == 9
