"""Groups and libraries (§9)."""

import pytest

from repro.cm import (
    CutoffBuilder,
    DependencyError,
    Group,
    GroupBuilder,
    Project,
    TimestampBuilder,
)

SOURCES = {
    # Library group.
    "libsig": "signature STACK = sig type 'a t val empty : 'a t "
              "val push : 'a * 'a t -> 'a t val depth : 'a t -> int end",
    "libimpl": """
        structure Stack : STACK = struct
          type 'a t = 'a list
          val empty = nil
          fun push (x, s) = x :: s
          fun depth s = length s
        end
    """,
    # Application group.
    "app": """
        structure Main = struct
          val d = Stack.depth (Stack.push (1, Stack.push (2, Stack.empty)))
        end
    """,
    # A second application group sharing the library.
    "tool": """
        structure Tool = struct
          val e = Stack.depth Stack.empty
        end
    """,
}


def make_groups():
    lib = Group("stacklib", ["libsig", "libimpl"])
    app = Group("app", ["app"], imports=[lib])
    tool = Group("tool", ["tool"], imports=[lib])
    top = Group("everything", [], imports=[app, tool])
    return lib, app, tool, top


class TestGroups:
    def test_build_hierarchy(self):
        p = Project.from_sources(SOURCES)
        _lib, _app, _tool, top = make_groups()
        gb = GroupBuilder(p)
        reports = gb.build(top)
        assert set(reports) == {"stacklib", "app", "tool", "everything"}
        assert reports["stacklib"].compiled == ["libimpl", "libsig"] or \
            reports["stacklib"].compiled == ["libsig", "libimpl"]
        assert reports["app"].compiled == ["app"]

    def test_shared_library_built_once(self):
        p = Project.from_sources(SOURCES)
        _lib, _app, _tool, top = make_groups()
        gb = GroupBuilder(p)
        reports = gb.build(top)
        total = sum(len(r.compiled) for r in reports.values())
        assert total == 4  # libsig, libimpl, app, tool -- no duplicates

    def test_execution(self):
        p = Project.from_sources(SOURCES)
        _lib, _app, _tool, top = make_groups()
        gb = GroupBuilder(p)
        gb.build(top)
        exports = gb.link()
        assert exports["app"].structures["Main"].values["d"] == 2

    def test_visibility_violation(self):
        sources = dict(SOURCES)
        # `rogue` lives in its own group that does NOT import the lib.
        sources["rogue"] = "structure Rogue = struct val r = Stack.empty end"
        p = Project.from_sources(sources)
        lib = Group("stacklib", ["libsig", "libimpl"])
        rogue = Group("rogue", ["rogue"])  # no imports!
        top = Group("everything", [], imports=[lib, rogue])
        gb = GroupBuilder(p)
        with pytest.raises(DependencyError, match="visibility"):
            gb.build(top)

    def test_unit_in_two_groups_rejected(self):
        p = Project.from_sources(SOURCES)
        g1 = Group("one", ["libsig"])
        g2 = Group("two", ["libsig"])
        top = Group("t", [], imports=[g1, g2])
        with pytest.raises(ValueError, match="belongs to both"):
            GroupBuilder(p).build(top)

    def test_incremental_rebuild_within_groups(self):
        p = Project.from_sources(SOURCES)
        _lib, _app, _tool, top = make_groups()
        gb = GroupBuilder(p)
        gb.build(top)
        # Implementation-only edit in the library; cutoff holds across
        # group boundaries.
        p.edit("libimpl", SOURCES["libimpl"].replace(
            "fun depth s = length s",
            "fun depth s = foldl (fn (_, n) => n + 1) 0 s"))
        reports = gb.build(top)
        compiled = [n for r in reports.values() for n in r.compiled]
        assert compiled == ["libimpl"]

    def test_group_builder_with_timestamp_baseline(self):
        p = Project.from_sources(SOURCES)
        _lib, _app, _tool, top = make_groups()
        gb = GroupBuilder(p, builder_class=TimestampBuilder)
        gb.build(top)
        p.touch("libimpl")
        reports = gb.build(top)
        compiled = {n for r in reports.values() for n in r.compiled}
        # make cascades into both client groups.
        assert compiled == {"libimpl", "app", "tool"}

    def test_closure_order_imports_first(self):
        lib, app, _tool, top = make_groups()
        names = [g.name for g in top.closure()]
        assert names.index("stacklib") < names.index("app")
        assert names[-1] == "everything"
