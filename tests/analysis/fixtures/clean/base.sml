signature BASE = sig
  val double : int -> int
end

structure Base :> BASE = struct
  fun double x = 2 * x
end
