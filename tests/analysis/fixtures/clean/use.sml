signature USE = sig
  val four : int
end

structure Use :> USE = struct
  val four = Base.double 2
end
