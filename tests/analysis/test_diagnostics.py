"""The diagnostic model and its renderers."""

import json

import pytest

from repro.analysis.diagnostics import (SCHEMA, Diagnostic, Severity, Span,
                                        render_json, render_text, summarize)


def diag(code="SC003", sev=Severity.WARNING, unit="u", line=3, col=7,
         message="m", fix=None):
    return Diagnostic(code, sev, unit, Span(line, col), message, fix)


class TestSeverity:
    def test_ordering_follows_gravity(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase(self):
        assert str(Severity.WARNING) == "warning"

    def test_parse_roundtrip(self):
        for sev in Severity:
            assert Severity.parse(str(sev)) is sev

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestSpan:
    def test_point_span_defaults_end_to_start(self):
        span = Span(4, 9)
        assert (span.end_line, span.end_col) == (4, 9)

    def test_of_token_covers_the_token_text(self):
        from repro.lang.lexer import tokenize

        token = tokenize("structure Geom = struct end")[1]
        span = Span.of_token(token)
        assert (span.line, span.col) == (1, 11)
        assert span.end_col == 11 + len("Geom")


class TestRendering:
    def test_text_line_format(self):
        text = diag(fix="do better").render_text()
        assert text.startswith("u:3:7: warning[SC003]: m")
        assert "fix: do better" in text

    def test_text_sorted_by_unit_then_position(self):
        out = render_text([diag(unit="z", line=1), diag(unit="a", line=9),
                           diag(unit="a", line=2)])
        lines = [ln for ln in out.splitlines() if "[SC003]" in ln]
        assert [ln.split(":")[0] for ln in lines] == ["a", "a", "z"]

    def test_text_summary_lines(self):
        assert "no diagnostics" in render_text([])
        out = render_text([diag(), diag(sev=Severity.ERROR, code="SC000")])
        assert "1 error(s), 1 warning(s), 0 info(s)" in out

    def test_summarize_always_has_every_level(self):
        assert summarize([]) == {"error": 0, "warning": 0, "info": 0,
                                 "total": 0}

    def test_json_document_shape(self):
        payload = json.loads(render_json([diag()], project="p"))
        assert payload["schema"] == SCHEMA
        assert payload["project"] == "p"
        assert payload["cascade"] is None
        [entry] = payload["diagnostics"]
        assert entry["code"] == "SC003"
        assert entry["severity"] == "warning"
        assert (entry["line"], entry["col"]) == (3, 7)
