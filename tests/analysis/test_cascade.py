"""Cascade-risk metrics: agreement with the dependency graph."""

from repro.analysis.cascade import cascade_report
from repro.cm import Project, analyze
from repro.workload import diamond, generate_workload, layered


class TestAgreementWithDepGraph:
    def check(self, graph):
        report = cascade_report(graph)
        assert sorted(r.unit for r in report.ranking) == sorted(graph.deps)
        for risk in report.ranking:
            assert risk.transitive_dependents == len(
                graph.transitive_dependents(risk.unit))
            assert risk.direct_dependents == len(
                graph.dependents.get(risk.unit, []))

    def test_diamond_workload(self):
        workload = generate_workload(diamond(3, 2))
        self.check(analyze(workload.project))

    def test_layered_workload(self):
        workload = generate_workload(layered([3, 2, 2]))
        self.check(analyze(workload.project))

    def test_ranking_is_descending_by_reach(self):
        workload = generate_workload(diamond(4, 3))
        report = cascade_report(analyze(workload.project))
        reaches = [r.transitive_dependents for r in report.ranking]
        assert reaches == sorted(reaches, reverse=True)


class TestFanIn:
    def test_fan_in_counts_distinct_users(self):
        project = Project.from_sources({
            "base": """structure Base = struct val v = 1 end
structure Extra = struct val w = 2 end""",
            "a": "structure A = struct val x = Base.v end",
            "b": "structure B = struct val y = Base.v + Extra.w end",
        })
        report = cascade_report(analyze(project))
        base = report.risk_of("base")
        assert base.fan_in == {"structures:Base": 2, "structures:Extra": 1}
        assert base.hottest() == ("structures:Base", 2)

    def test_leaf_has_empty_fan_in(self):
        project = Project.from_sources({
            "base": "structure Base = struct val v = 1 end",
            "a": "structure A = struct val x = Base.v end",
        })
        report = cascade_report(analyze(project))
        assert report.risk_of("a").fan_in == {}
        assert report.risk_of("a").hottest() is None

    def test_json_shape(self):
        project = Project.from_sources({
            "base": "structure Base = struct val v = 1 end",
            "a": "structure A = struct val x = Base.v end",
        })
        payload = cascade_report(analyze(project)).as_json()
        assert set(payload) == {"ranking"}
        entry = payload["ranking"][0]
        assert set(entry) == {"unit", "direct_dependents",
                              "transitive_dependents", "fan_in"}
