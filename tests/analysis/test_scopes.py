"""The scope-aware module-reference scanner."""

from repro.analysis.scopes import scan_module_refs
from repro.lang.parser import parse_program


def scan(src):
    return scan_module_refs(parse_program(src))


class TestResolution:
    def test_external_qualified_reference_escapes(self):
        result = scan("structure A = struct val x = Util.help 1 end")
        assert ("structures", "Util") in result.escaping()

    def test_toplevel_sibling_reference_is_resolved(self):
        result = scan("""
            structure Util = struct val help = 1 end
            structure A = struct val x = Util.help end
        """)
        assert result.escaping() == set()

    def test_nested_binding_shadows_external_name(self):
        result = scan("""
            structure A = struct
              structure Util = struct val help = 1 end
              val x = Util.help
            end
        """)
        assert result.escaping() == set()
        nested = [b for b in result.binds if b.kind == "nested"]
        assert [(b.ns, b.name) for b in nested] == [("structures", "Util")]

    def test_nested_binding_does_not_leak_to_siblings(self):
        result = scan("""
            structure A = struct
              structure Util = struct val help = 1 end
            end
            structure B = struct val x = Util.help end
        """)
        assert ("structures", "Util") in result.escaping()

    def test_functor_parameter_shadows(self):
        result = scan("""
            signature S = sig val v : int end
            functor F(X : S) = struct val y = X.v end
        """)
        assert result.escaping() == set()
        assert any(b.kind == "param" and b.name == "X"
                   for b in result.binds)

    def test_functor_body_sees_externals(self):
        result = scan("functor F(X : EXT_SIG) = struct val y = Ext.v end")
        assert ("signatures", "EXT_SIG") in result.escaping()
        assert ("structures", "Ext") in result.escaping()

    def test_local_private_binding_scopes_over_public(self):
        result = scan("""
            local
              structure Help = struct val v = 1 end
            in
              structure A = struct val x = Help.v end
            end
        """)
        assert result.escaping() == set()

    def test_local_public_binding_visible_after_end(self):
        result = scan("""
            local
              structure Hidden = struct val v = 1 end
            in
              structure Pub = struct val v = Hidden.v end
            end
            structure B = struct val y = Pub.v end
        """)
        assert result.escaping() == set()

    def test_local_private_binding_not_visible_after_end(self):
        result = scan("""
            local
              structure Hidden = struct val v = 1 end
            in
              structure Pub = struct val v = 2 end
            end
            structure B = struct val y = Hidden.v end
        """)
        assert ("structures", "Hidden") in result.escaping()


class TestReferenceKinds:
    def test_open_kind(self):
        result = scan("structure A = struct open Ext fun f x = x end")
        [ref] = [r for r in result.refs if r.kind == "open"]
        assert (ref.ns, ref.name, ref.resolved) == ("structures", "Ext",
                                                    False)

    def test_functor_application(self):
        result = scan("structure A = MakeThing(struct val v = 1 end)")
        assert ("functors", "MakeThing") in result.escaping()

    def test_signature_reference(self):
        result = scan("structure A : EXT = struct end")
        assert ("signatures", "EXT") in result.escaping()

    def test_type_position_head(self):
        result = scan("structure A = struct type t = Ext.ty end")
        assert ("structures", "Ext") in result.escaping()

    def test_binding_events_carry_depth(self):
        result = scan("""
            structure Top = struct
              structure Inner = struct val v = 1 end
            end
        """)
        depths = {b.name: b.depth for b in result.binds}
        assert depths["Top"] == 0
        assert depths["Inner"] > 0
