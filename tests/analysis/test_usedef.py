"""UseDefAnalysis directly: the single answer to "what does this unit
use, and what does it define?".

The same object feeds smlint (SC001/SC006) and the build's per-binding
cutoff (``DepGraph.uses`` -> bin-record ``used_bindings``), so these
tests pin the API both consumers rely on -- including the guarantee
that the analysis and the dependency analyzer never disagree.
"""

from repro.analysis import (UseDefAnalysis, binding_key,
                            split_binding_key)
from repro.cm import Project, analyze

SOURCES = {
    "lib": """structure Lib = struct val v = 1 end
signature LIB = sig val v : int end
functor MkLib(X : sig val n : int end) = struct val v = X.n end""",
    "app": """structure App = struct
  val x = Lib.v
end""",
    "shadow": """structure Shadow = struct
  structure Lib = struct val v = 9 end
  val x = Lib.v
end""",
    "mixed": """structure Mixed = struct
  structure Lib = struct val v = 9 end
  structure M = MkLib(struct val n = 3 end)
  val x = Lib.v
end""",
}


def usedef():
    graph = analyze(Project.from_sources(SOURCES))
    return UseDefAnalysis.of_graph(graph), graph


class TestDefSets:
    def test_exports_cover_all_module_namespaces(self):
        ud, _ = usedef()
        assert ud.exports("lib") == {
            ("structures", "Lib"),
            ("signatures", "LIB"),
            ("functors", "MkLib"),
        }

    def test_nested_bindings_are_not_exports(self):
        ud, _ = usedef()
        assert ud.exports("shadow") == {("structures", "Shadow")}

    def test_providers_invert_exports(self):
        ud, _ = usedef()
        providers = ud.providers()
        assert providers[("structures", "Lib")] == "lib"
        assert providers[("functors", "MkLib")] == "lib"
        assert providers[("structures", "App")] == "app"


class TestUseSets:
    def test_conservative_uses(self):
        ud, _ = usedef()
        assert ud.uses("app") == {("lib", "structures:Lib")}
        # The shadowed mention still charges the unit conservatively.
        assert ud.uses("shadow") == {("lib", "structures:Lib")}

    def test_precise_uses_drop_locally_bound_names(self):
        ud, _ = usedef()
        assert ud.precise_uses("app") == {("lib", "structures:Lib")}
        assert ud.precise_uses("shadow") == set()
        # mixed shadows Lib but genuinely applies MkLib.
        assert ud.precise_uses("mixed") == {("lib", "functors:MkLib")}

    def test_unused_imports_is_whole_edge_only(self):
        ud, _ = usedef()
        assert ud.unused_imports("shadow") == ["lib"]
        assert ud.unused_imports("mixed") == []  # edge partly real
        assert ud.unused_imports("app") == []

    def test_used_keys_match_the_dependency_graph(self):
        # THE shared-computation guarantee: the build's DepGraph.uses is
        # the same map this analysis computes.
        ud, graph = usedef()
        for unit in ud.units:
            assert graph.uses.get(unit, {}) == ud.used_keys(unit)


class TestMemoization:
    def test_scans_and_uses_are_computed_once(self):
        ud, _ = usedef()
        assert ud.scan("shadow") is ud.scan("shadow")
        assert ud.used_keys("app") is ud.used_keys("app")
        assert ud.providers() is ud.providers()


class TestBindingKeys:
    def test_round_trip(self):
        key = binding_key("structures", "Lib")
        assert key == "structures:Lib"
        assert split_binding_key(key) == ("structures", "Lib")

    def test_name_may_contain_no_colon_confusion(self):
        # Partition splits on the FIRST colon only.
        assert split_binding_key("functors:MkLib") == (
            "functors", "MkLib")
