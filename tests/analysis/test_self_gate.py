"""The tier-1 self-analysis gate, run exactly as the README documents
it: ``python -m repro.analysis <fixtures> --strict`` as a subprocess.

The in-process CLI tests (test_runner_cli.py) already cover the exit
codes; this file is the end-to-end contract -- interpreter boundary,
``PYTHONPATH=src``, real argv -- so CI and a developer's shell agree
with the test suite about what "the gate passes" means.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(os.path.dirname(HERE))
CLEAN = os.path.join(HERE, "fixtures", "clean")
LINT_DEMO = os.path.join(REPO, "examples", "lint_demo")


def run_gate(target, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", target, "--strict",
         *extra],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)


class TestSelfGate:
    def test_clean_fixture_passes(self):
        proc = run_gate(CLEAN)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no diagnostics" in proc.stdout

    def test_lint_demo_is_gated(self):
        proc = run_gate(LINT_DEMO)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        # The gate fails loudly, naming the rules that fired.
        for code in ("SC001", "SC002", "SC006"):
            assert code in proc.stdout

    def test_fail_on_error_relaxes_the_gate(self):
        # lint_demo has warnings but no errors: the relaxed gate passes.
        proc = run_gate(LINT_DEMO, "--fail-on", "error")
        assert proc.returncode == 0, proc.stdout + proc.stderr
