"""The built-in rules, one by one, on minimal in-memory projects."""

from repro.analysis import AnalysisConfig, AnalysisContext, run_rules
from repro.cm import Project, analyze


def run(sources, codes=None, config=None):
    project = Project.from_sources(sources)
    graph = analyze(project)
    ctx = AnalysisContext(project, graph, config or AnalysisConfig())
    return run_rules(ctx, codes)


def codes_of(diags):
    return sorted({d.code for d in diags})


class TestSC001FalseDependency:
    #: The edge on util is real (Util.v escapes); the mention of Extra
    #: is locally bound -- a false *name* on a real edge.
    SOURCES = {
        "util": """structure Util = struct val v = 1 end
structure Extra = struct val w = 2 end""",
        "app": """structure App = struct
  structure Extra = struct val w = 9 end
  val x = Util.v + Extra.w
end""",
    }

    def test_false_name_on_real_edge_is_flagged(self):
        [diag] = run(self.SOURCES, codes=["SC001"])
        assert diag.unit == "app"
        assert "'Extra'" in diag.message
        assert "'util'" in diag.message
        assert diag.fix

    def test_whole_spurious_edge_is_sc006_territory(self):
        # When *every* name on the edge is locally bound, SC001 stays
        # quiet and SC006 owns the report.
        sources = {
            "util": "structure Util = struct val v = 1 end",
            "app": """structure App = struct
  structure Util = struct val v = 2 end
  val x = Util.v
end""",
        }
        assert run(sources, codes=["SC001"]) == []
        [diag] = run(sources, codes=["SC006"])
        assert diag.unit == "app"

    def test_real_edge_is_not_flagged(self):
        diags = run({
            "util": "structure Util = struct val v = 1 end",
            "app": "structure App = struct val x = Util.v end",
        }, codes=["SC001"])
        assert diags == []

    def test_edge_is_still_in_the_graph(self):
        # The rule reports what the conservative analyzer *charges*,
        # so the flagged edge must really exist in the graph.
        project = Project.from_sources(self.SOURCES)
        graph = analyze(project)
        assert graph.deps["app"] == ["util"]


class TestSC002OverBroadOpen:
    def test_open_of_import_is_flagged(self):
        [diag] = run({
            "base": "structure Base = struct val v = 1 end",
            "app": "structure App = struct open Base val x = v end",
        }, codes=["SC002"])
        assert diag.unit == "app"
        assert "open Base" in diag.message
        assert "'base'" in diag.message

    def test_open_of_local_structure_is_fine(self):
        diags = run({
            "app": """structure Lib = struct val v = 1 end
structure App = struct open Lib val x = v end""",
        }, codes=["SC002"])
        assert diags == []


class TestSC003UnascribedExport:
    def test_bare_structure_warns(self):
        [diag] = run({"u": "structure S = struct val v = 1 end"},
                     codes=["SC003"])
        assert diag.severity.name == "WARNING"
        assert "without a signature ascription" in diag.message

    def test_transparent_ascription_is_info(self):
        [diag] = run({"u": """signature SIG = sig val v : int end
structure S : SIG = struct val v = 1 end"""}, codes=["SC003"])
        assert diag.severity.name == "INFO"
        assert "transparent" in diag.message

    def test_opaque_ascription_is_clean(self):
        diags = run({"u": """signature SIG = sig val v : int end
structure S :> SIG = struct val v = 1 end"""}, codes=["SC003"])
        assert diags == []

    def test_functor_without_result_sig_warns(self):
        [diag] = run({"u": """functor F(X : sig val v : int end) = struct
  val w = X.v
end"""}, codes=["SC003"])
        assert "functor 'F'" in diag.message

    def test_local_public_exports_are_checked(self):
        [diag] = run({"u": """local
  structure Help = struct val v = 1 end
in
  structure S = struct val x = Help.v end
end"""}, codes=["SC003"])
        assert "'S'" in diag.message


class TestSC004DuplicateOrShadowed:
    def test_duplicate_toplevel_binding(self):
        [diag] = run({"u": """structure S = struct val v = 1 end
structure S = struct val v = 2 end"""}, codes=["SC004"])
        assert "bound twice" in diag.message
        assert "first at line 1" in diag.message
        assert diag.span.line == 2

    def test_nested_shadow_of_import(self):
        [diag] = run({
            "base": "structure Base = struct val v = 1 end",
            "app": """structure App = struct
  structure Base = struct val v = 2 end
  val x = Base.v
end""",
        }, codes=["SC004"])
        assert "shadows" in diag.message
        assert "'base'" in diag.message

    def test_functor_param_shadow_of_import(self):
        [diag] = run({
            "base": "structure Base = struct val v = 1 end",
            "app": """functor F(Base : sig val v : int end) = struct
  val x = Base.v
end""",
        }, codes=["SC004"])
        assert "functor parameter 'Base'" in diag.message

    def test_unrelated_local_structures_are_fine(self):
        diags = run({
            "base": "structure Base = struct val v = 1 end",
            "app": """structure App = struct
  structure Helper = struct val v = 2 end
  val x = Base.v + Helper.v
end""",
        }, codes=["SC004"])
        assert diags == []


class TestSC005HotInterface:
    @staticmethod
    def star(n_dependents):
        sources = {"base": "structure Base = struct val v = 1 end"}
        for i in range(n_dependents):
            sources[f"user{i}"] = (
                f"structure User{i} = struct val x = Base.v end")
        return sources

    def test_hot_unit_is_flagged(self):
        diags = run(self.star(4), codes=["SC005"])
        [diag] = diags
        assert diag.unit == "base"
        assert "recompiles 4 of 4 other units" in diag.message
        assert "structure 'Base' (4 direct users)" in diag.message

    def test_small_fanout_is_quiet(self):
        assert run(self.star(2), codes=["SC005"]) == []

    def test_threshold_is_configurable(self):
        config = AnalysisConfig(hot_min_dependents=1, hot_ratio=0.0)
        diags = run(self.star(1), codes=["SC005"], config=config)
        assert [d.unit for d in diags] == ["base"]


class TestSC006UnusedImport:
    SOURCES = {
        "util": "structure Util = struct val v = 1 end",
        "app": """structure App = struct
  structure Util = struct val v = 2 end
  val x = Util.v
end""",
    }

    def test_whole_spurious_edge_is_flagged(self):
        [diag] = run(self.SOURCES, codes=["SC006"])
        assert diag.unit == "app"
        assert "'util'" in diag.message
        assert "entirely spurious" in diag.message
        assert "structure 'Util'" in diag.message
        assert diag.fix

    def test_partial_edge_is_not_flagged(self):
        # One genuinely-used name keeps the edge alive: SC001's case.
        diags = run(TestSC001FalseDependency.SOURCES, codes=["SC006"])
        assert diags == []

    def test_agrees_with_usedef_analysis(self):
        from repro.analysis import UseDefAnalysis

        project = Project.from_sources(self.SOURCES)
        graph = analyze(project)
        usedef = UseDefAnalysis.of_graph(graph)
        assert usedef.unused_imports("app") == ["util"]
        assert usedef.precise_uses("app") == set()
        assert usedef.uses("app") == {("util", "structures:Util")}


class TestRegistry:
    def test_all_six_codes_registered(self):
        from repro.analysis.registry import RULES
        import repro.analysis.rules  # noqa: F401

        assert {"SC001", "SC002", "SC003", "SC004",
                "SC005", "SC006"} <= set(RULES)

    def test_unknown_code_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown rule code"):
            run({"u": "structure S = struct end"}, codes=["SC999"])
