"""The runner, the CLI, golden diagnostics over the fixture projects,
JSON schema stability (the CI contract), and the no-second-parse
guarantee."""

import json
import os

import pytest

import repro.cm.depend as depend
from repro.analysis import SCHEMA, Severity, analyze_project
from repro.analysis.__main__ import main as analysis_main
from repro.cm import CutoffBuilder, Project
from repro.cm.__main__ import main as cm_main

HERE = os.path.dirname(__file__)
REPO = os.path.dirname(os.path.dirname(HERE))
LINT_DEMO = os.path.join(REPO, "examples", "lint_demo")
CLEAN = os.path.join(HERE, "fixtures", "clean")
GOLDEN = os.path.join(HERE, "golden", "lint_demo.txt")


class TestGoldenDiagnostics:
    """Self-lint over the repo's fixture projects (the CI gate)."""

    def test_lint_demo_matches_golden_output(self, capsys):
        assert analysis_main([LINT_DEMO]) == 0
        with open(GOLDEN) as f:
            expected = f.read()
        assert capsys.readouterr().out == expected

    def test_lint_demo_reports_all_six_codes_with_spans(self, capsys):
        assert analysis_main([LINT_DEMO, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"SC001", "SC002", "SC003", "SC004", "SC005",
                "SC006"} <= codes
        for diag in payload["diagnostics"]:
            assert diag["line"] >= 1 and diag["col"] >= 1

    def test_lint_demo_gated_under_strict(self, capsys):
        assert analysis_main([LINT_DEMO, "--strict"]) == 1

    def test_clean_fixture_passes_strict(self, capsys):
        assert analysis_main([CLEAN, "--strict"]) == 0
        assert "no diagnostics" in capsys.readouterr().out


class TestJsonSchemaStability:
    """CI parses this output; its key sets must not drift silently."""

    def payload(self, capsys, target=LINT_DEMO):
        assert analysis_main([target, "--format", "json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_top_level_keys(self, capsys):
        payload = self.payload(capsys)
        assert list(payload) == ["schema", "project", "diagnostics",
                                 "summary", "cascade"]
        assert payload["schema"] == SCHEMA == "smlint/1"

    def test_diagnostic_entry_keys(self, capsys):
        for entry in self.payload(capsys)["diagnostics"]:
            assert list(entry) == ["code", "severity", "unit", "line",
                                   "col", "end_line", "end_col",
                                   "message", "fix"]

    def test_summary_and_cascade_keys(self, capsys):
        payload = self.payload(capsys)
        assert list(payload["summary"]) == ["error", "warning", "info",
                                            "total"]
        assert list(payload["cascade"]) == ["ranking"]
        for entry in payload["cascade"]["ranking"]:
            assert list(entry) == ["unit", "direct_dependents",
                                   "transitive_dependents", "fan_in"]

    def test_clean_project_summary_is_complete(self, capsys):
        payload = self.payload(capsys, target=CLEAN)
        assert payload["summary"] == {"error": 0, "warning": 0,
                                      "info": 0, "total": 0}


class TestNoSecondParse:
    """The analyzer reuses the dependency pass's parse/mentions cache:
    with a warm cache it performs zero parses."""

    SOURCES = {
        "base": "structure Base = struct val v = 1 end",
        "app": "structure App = struct open Base val x = v end",
    }

    def count_parses(self, monkeypatch):
        calls = {"n": 0}
        real = depend.parse_program

        def counting(source):
            calls["n"] += 1
            return real(source)

        monkeypatch.setattr(depend, "parse_program", counting)
        return calls

    def test_warm_cache_means_zero_parses(self, monkeypatch):
        project = Project.from_sources(self.SOURCES)
        calls = self.count_parses(monkeypatch)
        cache = {}
        depend.analyze(project, cache=cache)
        warm = calls["n"]
        assert warm == len(self.SOURCES)
        result = analyze_project(project, cache=cache)
        assert calls["n"] == warm
        assert {d.code for d in result.diagnostics} >= {"SC002", "SC003"}

    def test_builder_graph_reuse_means_zero_parses(self, monkeypatch):
        project = Project.from_sources(self.SOURCES)
        builder = CutoffBuilder(project)
        report = builder.build()
        # The timing machinery confirms the build itself did the parsing.
        assert all(o.times.parse >= 0 for o in report.outcomes)
        calls = self.count_parses(monkeypatch)
        result = analyze_project(project, graph=builder.last_graph,
                                 cache=builder._dep_cache)
        assert calls["n"] == 0
        assert result.cascade is not None


class TestFailureDiagnostics:
    def test_cycle_becomes_sc000_with_concrete_path(self):
        project = Project.from_sources({
            "a": "structure A = struct val x = B.y end",
            "b": "structure B = struct val y = A.x end",
        })
        result = analyze_project(project)
        assert result.failed
        [diag] = result.diagnostics
        assert diag.code == "SC000"
        assert diag.severity is Severity.ERROR
        assert "a -> b -> a" in diag.message

    def test_parse_error_becomes_sc000(self):
        project = Project.from_sources(
            {"bad": "structure Bad = struct val x = ("})
        result = analyze_project(project)
        assert result.failed
        assert result.diagnostics[0].code == "SC000"

    def test_cli_exits_one_on_failure_without_strict(self, tmp_path,
                                                     capsys):
        (tmp_path / "a.sml").write_text(
            "structure A = struct val x = B.y end\n")
        (tmp_path / "b.sml").write_text(
            "structure B = struct val y = A.x end\n")
        assert analysis_main([str(tmp_path)]) == 1
        assert "SC000" in capsys.readouterr().out


class TestCliSurface:
    def test_bad_target(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path / "nope")]) == 2

    def test_empty_directory(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path)]) == 2

    def test_unknown_rule_code(self, capsys):
        assert analysis_main([CLEAN, "--rules", "SC999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_rule_subset(self, capsys):
        assert analysis_main([LINT_DEMO, "--rules", "SC002",
                              "--no-cascade"]) == 0
        out = capsys.readouterr().out
        assert "SC002" in out
        assert "SC003" not in out
        assert "cascade" not in out

    def test_fail_on_error_relaxes_strict(self, capsys):
        # lint_demo has warnings but no errors.
        assert analysis_main([LINT_DEMO, "--strict",
                              "--fail-on", "error"]) == 0

    def test_cm_group_file_target(self, tmp_path, capsys):
        (tmp_path / "base.sml").write_text(
            "structure Base = struct val v = 1 end\n")
        (tmp_path / "app.sml").write_text(
            "structure App = struct open Base val x = v end\n")
        desc = tmp_path / "proj.cm"
        desc.write_text("group proj\nmembers\n  base.sml\n  app.sml\n")
        assert analysis_main([str(desc), "--strict"]) == 1
        assert "SC002" in capsys.readouterr().out


class TestBuildDriverIntegration:
    @pytest.fixture
    def dirty_dir(self, tmp_path):
        (tmp_path / "base.sml").write_text(
            "structure Base = struct val v = 1 end\n")
        (tmp_path / "app.sml").write_text(
            "structure App = struct open Base val x = v end\n")
        return str(tmp_path)

    def test_analyze_flag_reports_after_build(self, dirty_dir, capsys):
        assert cm_main([dirty_dir, "--analyze", "--no-link"]) == 0
        out = capsys.readouterr().out
        assert "2 compiled" in out
        assert "SC002" in out

    def test_analyze_strict_gates_exit_code(self, dirty_dir, capsys):
        assert cm_main([dirty_dir, "--analyze", "--strict",
                        "--no-link"]) == 1

    def test_strict_without_analyze_changes_nothing(self, dirty_dir,
                                                    capsys):
        assert cm_main([dirty_dir, "--strict", "--no-link"]) == 0
