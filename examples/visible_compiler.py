"""Metaprogramming with the Visible Compiler (paper §8).

The paper's examples of IRM customization: "a theorem prover whose
'sources' are not kept in files, or a different style of library system"
-- programs that *drive the compiler* through its primitives.  Here a
tiny rule compiler turns a declarative table of rewrite rules into SML
source, compiles it against a hand-written runtime unit, links, and runs
the generated code.

Run with:  python examples/visible_compiler.py
"""

from repro import VisibleCompiler
from repro.dynamic.evaluate import apply_value

RUNTIME = """
structure Runtime = struct
  datatype term = Num of int | Add of term * term | Mul of term * term
  fun eval (Num n) = n
    | eval (Add (a, b)) = eval a + eval b
    | eval (Mul (a, b)) = eval a * eval b
  fun depth (Num _) = 1
    | depth (Add (a, b)) = 1 + Int.max (depth a, depth b)
    | depth (Mul (a, b)) = 1 + Int.max (depth a, depth b)
end
"""

#: Declarative simplification rules: (pattern, replacement) over terms.
RULES = [
    ("Add (Num 0, x)", "x"),
    ("Add (x, Num 0)", "x"),
    ("Mul (Num 1, x)", "x"),
    ("Mul (x, Num 1)", "x"),
    ("Mul (Num 0, x)", "Num 0"),
    ("Mul (x, Num 0)", "Num 0"),
]


def generate_simplifier(rules) -> str:
    """Compile the rule table to SML source: a one-pass bottom-up
    simplifier with one clause per rule."""
    lines = ["structure Simplify = struct",
             "  open Runtime"]
    clauses = [f"        {pat} => once ({rep})" for pat, rep in rules]
    clauses.append("        t => t")
    lines.append("  fun once t =")
    lines.append("      case t of")
    lines.append("\n      | ".join(clauses))
    lines.append("  fun simp (Add (a, b)) = once (Add (simp a, simp b))")
    lines.append("    | simp (Mul (a, b)) = once (Mul (simp a, simp b))")
    lines.append("    | simp t = once t")
    lines.append("end")
    return "\n".join(lines)


def main() -> None:
    vc = VisibleCompiler()

    runtime = vc.compile("runtime", RUNTIME, [])
    print(f"runtime unit: pid {vc.export_pid(runtime)[:16]}..., "
          f"{len(vc.dehydrate(runtime))} bin bytes")

    generated_src = generate_simplifier(RULES)
    print("--- generated source " + "-" * 30)
    print(generated_src)
    print("-" * 51)

    simplifier = vc.compile("simplify", generated_src, [runtime])
    print(f"generated unit imports: "
          f"{[(n, p[:8]) for n, p in vc.import_pids(simplifier)]}")

    exports = vc.execute_all([runtime, simplifier])
    rt = exports["runtime"].structures["Runtime"]
    sp = exports["simplify"].structures["Simplify"]

    # Build ((x * 1) + 0) * (0 + 7) where x = 6, then simplify.
    def num(n):
        return apply_value(rt.values["Num"], n)

    def add(a, b):
        return apply_value(rt.values["Add"], (a, b))

    def mul(a, b):
        return apply_value(rt.values["Mul"], (a, b))

    term = mul(add(mul(num(6), num(1)), num(0)), add(num(0), num(7)))
    simplified = apply_value(sp.values["simp"], term)

    for label, t in (("original", term), ("simplified", simplified)):
        print(f"{label:>10}: depth {apply_value(rt.values['depth'], t)}, "
              f"value {apply_value(rt.values['eval'], t)}, repr {t}")


if __name__ == "__main__":
    main()
