"""Quickstart: compile, link and incrementally rebuild an SML project.

Run with:  python examples/quickstart.py
"""

from repro import CutoffBuilder, Project

SOURCES = {
    # A unit is a source file of structure/signature/functor declarations.
    "geometry": """
        signature SHAPE = sig
          type t
          val area : t -> int
          val scale : int * t -> t
        end
        structure Rect : SHAPE = struct
          type t = int * int
          fun area (w, h) = w * h
          fun scale (k, (w, h)) = (k * w, k * h)
        end
    """,
    "report": """
        structure Report = struct
          val room = Rect.scale (3, (4, 5))
          val floor_area = Rect.area room
          fun describe () = "floor area: " ^ Int.toString floor_area
        end
    """,
}


def main() -> None:
    project = Project.from_sources(SOURCES)

    # The CutoffBuilder is the paper's IRM: dependency analysis +
    # bin-file cache + cutoff recompilation over intrinsic pids.
    builder = CutoffBuilder(project)

    report = builder.build()
    print("cold build:     ", report.summary())

    # Type-safe link + execute; exports are the units' dynamic bindings.
    exports = builder.link()
    describe = exports["report"].structures["Report"].values["describe"]
    from repro.dynamic.evaluate import apply_value

    print("program output: ", apply_value(describe, ()))

    # A null rebuild touches nothing.
    print("null build:     ", builder.build().summary())

    # Change Rect's *implementation*.  Its interface -- and therefore its
    # intrinsic pid -- is unchanged, so `report` is NOT recompiled: the
    # recompilation cascade is cut off at the edited unit.
    project.edit("geometry", SOURCES["geometry"].replace(
        "fun area (w, h) = w * h",
        "fun area (w, h) = h * w   (* commuted! *)"))
    print("impl-only edit: ", builder.build().summary())

    # Change Rect's *interface* (a new exported value): the pid changes
    # and dependents are recompiled.
    project.edit("geometry", SOURCES["geometry"].replace(
        "structure Rect : SHAPE = struct",
        "structure Rect = struct\n          val dims = 2"))
    print("interface edit: ", builder.build().summary())

    # Everything still runs.
    exports = builder.link()
    print("after edits:    ",
          exports["report"].structures["Report"].values["floor_area"])


if __name__ == "__main__":
    main()
