(* Two exports: Palette is genuinely used by draw, Ink only ever
   appears shadowed there -- the per-name half of the false-dependency
   story (contrast report.sml, where the *whole* edge is spurious). *)
structure Palette = struct
  val shades = 16
end

structure Ink = struct
  val black = 0
end
