(* The edge on palette is real (Palette.shades escapes), but every
   reference to Ink is locally bound -- SC001: a false name widening a
   real edge's per-binding recompilation surface. *)
structure Draw = struct
  structure Ink = struct
    val white = 1
  end
  fun mix n = n * Palette.shades + Ink.white
end
