(* The project's base unit: every other unit reaches it, and it is
   exported without a signature ascription, so its whole implementation
   is interface (SC003) and it ranks as the hot interface (SC005). *)
structure Geom = struct
  val pi = 3
  fun area r = pi * r * r
end
