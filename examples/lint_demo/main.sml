structure Main = struct
  val twelve = Shapes.disk 2
  val described = Render.describe 2
end
