(* The nested structure shadows the Geom *unit*'s export (SC004), so
   every reference below is locally bound -- yet the conservative
   dependency analyzer still charges this unit with an edge on geom
   (SC001: a false edge; edits to geom recompile report for nothing). *)
structure Report = struct
  structure Geom = struct
    val unit_area = 1
  end
  fun total n = n * Geom.unit_area
end
