(* `open Geom` pulls in the provider's entire interface (SC002). *)
structure Shapes = struct
  open Geom
  fun disk r = area r
end
