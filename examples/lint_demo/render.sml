(* The clean citizen: opaque ascription, qualified references. *)
signature RENDER = sig
  val describe : int -> int
end

structure Render :> RENDER = struct
  fun describe r = Geom.area r
end
