(* The second binding makes the first dead in the unit's interface
   (SC004: duplicate top-level binding). *)
structure Dup = struct
  val version = 1
end

structure Dup = struct
  val version = 2
end
