"""A scripted interactive session, exactly as §6 describes the ML
top-level loop coexisting with separate compilation.

Run with:  python examples/repl_session.py
(or interactively:  python -m repro.interactive.repl)
"""

from repro import REPL

INPUTS = [
    "val radius = 5",
    "val pi_ish = 3",
    "pi_ish * radius * radius",
    "fun map2 f (a, b) = (f a, f b)",
    "map2 (fn n => n + 1) (10, 20)",
    "datatype 'a bst = Leaf | Node of 'a bst * 'a * 'a bst",
    """fun insert (x, Leaf) = Node (Leaf, x, Leaf)
         | insert (x, t as Node (l, y, r)) =
             if x < y then Node (insert (x, l), y, r)
             else if x > y then Node (l, y, insert (x, r))
             else t""",
    "fun toList Leaf = nil | toList (Node (l, x, r)) = "
    "toList l @ (x :: toList r)",
    "val tree = foldl insert Leaf [5, 2, 8, 2, 1]",
    "toList tree",
    "structure Counter = struct val n = ref 0 "
    "fun tick () = (n := !n + 1; !n) end",
    "Counter.tick ()",
    "Counter.tick ()",
    'val bad = 1 + "oops"',          # type error: session survives
    "Counter.tick ()",               # state intact after the error
    "exception Underflow",
    "fun safeDec n = if n = 0 then raise Underflow else n - 1",
    "safeDec 0 handle Underflow => ~1",
]


def main() -> None:
    repl = REPL(print_sink=lambda s: print(s, end=""))
    for text in INPUTS:
        shown = " ".join(text.split())
        print(f"- {shown}")
        print(f"  {repl.eval(text).render()}")


if __name__ == "__main__":
    main()
