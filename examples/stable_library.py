"""Stable libraries: ship a built library as ONE file, no sources.

A vendor builds a JSON library, freezes it into a stable archive
(`repro.cm.stable`), and ships the archive alone.  A client project --
which never sees the vendor's sources -- registers the archive with its
builder and compiles against it.

Run with:  python examples/stable_library.py
"""

from repro import CutoffBuilder, Project
from repro.cm.stable import parse_archive, stabilize
from repro.dynamic.evaluate import apply_value

VENDOR_SOURCES = {
    "json_sig": """
        signature JSON = sig
          datatype value =
            Null
          | Bool of bool
          | Num of int
          | Str of string
          | Arr of value list
          val render : value -> string
        end
    """,
    "json": """
        structure Json : JSON = struct
          datatype value =
            Null
          | Bool of bool
          | Num of int
          | Str of string
          | Arr of value list
          fun render Null = "null"
            | render (Bool b) = if b then "true" else "false"
            | render (Num n) = Int.toString n
            | render (Str s) = "\\"" ^ s ^ "\\""
            | render (Arr items) =
                "[" ^ String.concatWith ", " (map render items) ^ "]"
        end
    """,
}

CLIENT_SOURCES = {
    "report": """
        structure Report = struct
          val doc = Json.Arr [
            Json.Str "totals",
            Json.Arr [Json.Num 1, Json.Num 2, Json.Num 3],
            Json.Bool true,
            Json.Null
          ]
          fun show () = Json.render doc
        end
    """,
}


def main() -> None:
    # --- vendor side ---------------------------------------------------
    vendor = CutoffBuilder(Project.from_sources(VENDOR_SOURCES))
    print("vendor build:", vendor.build().summary())
    archive = stabilize(vendor, ["json_sig", "json"])
    units = parse_archive(archive)
    print(f"stable archive: {len(archive)} bytes, "
          f"{len(units)} units "
          f"({', '.join(u.name for u in units)})")

    # --- client side: sources for the library do NOT exist here --------
    client = CutoffBuilder(Project.from_sources(CLIENT_SOURCES))
    client.add_stable_archive(archive)
    report = client.build()
    print("client build:", report.summary())
    exports = client.link()
    show = exports["report"].structures["Report"].values["show"]
    print("rendered:", apply_value(show, ()))

    # Rebuilds never reconsider the stable units.
    print("client rebuild:", client.build().summary())


if __name__ == "__main__":
    main()
