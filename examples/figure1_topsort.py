"""The paper's Figure 1, as an on-disk project with real bin files.

Writes the four units to a temporary directory, builds them with the IRM
(bin files saved to disk), then starts a *second session* that reloads
everything from the bin files without recompiling -- the workflow the
whole mechanism exists for.

Run with:  python examples/figure1_topsort.py
"""

import os
import tempfile

from repro import BinStore, CutoffBuilder, Project
from repro.dynamic.evaluate import apply_value
from repro.dynamic.values import python_list, sml_list
from repro.semant.format import format_type

UNITS = {
    "orders": """
signature PARTIAL_ORDER = sig
  type elem
  val less : elem * elem -> bool
end
signature SORT = sig
  type t
  val sort : t list -> t list
end
""",
    "topsort": """
functor TopSort(P : PARTIAL_ORDER) : SORT = struct
  type t = P.elem
  fun insert (x, nil) = [x]
    | insert (x, h :: rest) =
        if P.less (x, h) then x :: h :: rest
        else h :: insert (x, rest)
  fun sort l = foldl insert nil l
end
""",
    "factors": """
structure Factors : PARTIAL_ORDER = struct
  type elem = int
  fun less (i, j) = (j mod i = 0)
end
""",
    "fsort": "structure FSort : SORT = TopSort(Factors)\n",
}


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        src_dir = os.path.join(workdir, "src")
        bin_dir = os.path.join(workdir, "bin")
        os.makedirs(src_dir)
        for name, text in UNITS.items():
            with open(os.path.join(src_dir, name + ".sml"), "w") as f:
                f.write(text)

        # --- Session 1: cold build, bins written to disk. -------------
        project = Project.from_directory(src_dir)
        builder = CutoffBuilder(project)
        report = builder.build()
        print("session 1:", report.summary())
        builder.store.save_directory(bin_dir)
        print("bin files:", sorted(os.listdir(bin_dir)))

        # Figure 1's key property: although SORT only says `type t`,
        # transparent matching makes FSort.t = Factors.elem = int, so
        # FSort.sort applies to int lists.
        fsort = builder.units["fsort"].static_env.structures["FSort"]
        print("FSort.sort :", format_type(fsort.env.values["sort"].scheme))

        exports = builder.link()
        sort = exports["fsort"].structures["FSort"].values["sort"]
        result = apply_value(sort, sml_list([6, 2, 3, 12]))
        print("FSort.sort [6,2,3,12] =", python_list(result))

        # --- Session 2: a fresh process-equivalent, bins only. --------
        store = BinStore.load_directory(bin_dir)
        session2 = CutoffBuilder(Project.from_directory(src_dir),
                                 store=store)
        report2 = session2.build()
        print("session 2:", report2.summary())
        exports2 = session2.link()
        sort2 = exports2["fsort"].structures["FSort"].values["sort"]
        print("rehydrated sort [9,3] =",
              python_list(apply_value(sort2, sml_list([9, 3]))))


if __name__ == "__main__":
    main()
