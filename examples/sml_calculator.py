"""A real multi-unit SML program under the compilation manager.

The project is a small calculator language -- lexer, recursive-descent
parser, evaluator with environments and error handling -- written in SML
across five units with signature-constrained interfaces.  The example
builds it with the IRM, runs programs through it, then performs the two
canonical edits (implementation fix vs. interface extension) and shows
the rebuild behaviour.

Run with:  python examples/sml_calculator.py
"""

from repro import CutoffBuilder, Project
from repro.dynamic.evaluate import apply_value

UNITS = {
    "token": """
        structure Token = struct
          datatype t =
            Num of int
          | Ident of string
          | Plus | Minus | Times | LParen | RParen
          | LetK | InK | EndK | Equal
          fun describe (Num n) = "number " ^ Int.toString n
            | describe (Ident s) = "identifier " ^ s
            | describe Plus = "+" | describe Minus = "-"
            | describe Times = "*"
            | describe LParen = "(" | describe RParen = ")"
            | describe LetK = "let" | describe InK = "in"
            | describe EndK = "end" | describe Equal = "="
        end
    """,
    "lexer": """
        structure Lexer = struct
          exception LexError of string
          fun keyword "let" = Token.LetK
            | keyword "in" = Token.InK
            | keyword "end" = Token.EndK
            | keyword name = Token.Ident name
          fun lex s =
            let
              fun digits (cs, acc) =
                case cs of
                  c :: rest =>
                    if Char.isDigit c
                    then digits (rest, acc * 10 + (Char.ord c - 48))
                    else (acc, cs)
                | nil => (acc, cs)
              fun word (cs, acc) =
                case cs of
                  c :: rest =>
                    if Char.isAlpha c then word (rest, c :: acc)
                    else (implode (rev acc), cs)
                | nil => (implode (rev acc), cs)
              fun go nil = nil
                | go (c :: rest) =
                    if Char.isSpace c then go rest
                    else if Char.isDigit c then
                      let val (n, rest2) = digits (c :: rest, 0)
                      in Token.Num n :: go rest2 end
                    else if Char.isAlpha c then
                      let val (w, rest2) = word (c :: rest, nil)
                      in keyword w :: go rest2 end
                    else case c of
                           #"+" => Token.Plus :: go rest
                         | #"-" => Token.Minus :: go rest
                         | #"*" => Token.Times :: go rest
                         | #"(" => Token.LParen :: go rest
                         | #")" => Token.RParen :: go rest
                         | #"=" => Token.Equal :: go rest
                         | _ => raise LexError (str c)
            in go (explode s) end
        end
    """,
    "syntax": """
        structure Syntax = struct
          datatype exp =
            Lit of int
          | Var of string
          | Add of exp * exp
          | Sub of exp * exp
          | Mul of exp * exp
          | Let of string * exp * exp
        end
    """,
    "parser": """
        structure Parser = struct
          exception ParseError of string
          fun expect (tok, t :: rest) =
                if tok = t then rest
                else raise ParseError (Token.describe t)
            | expect (tok, nil) = raise ParseError "unexpected end"
          (* exp := term (('+'|'-') term)* ;  term := atom ('*' atom)* *)
          fun parseExp toks =
            let val (lhs, rest) = parseTerm toks
            in parseExp' (lhs, rest) end
          and parseExp' (lhs, Token.Plus :: rest) =
                let val (rhs, rest2) = parseTerm rest
                in parseExp' (Syntax.Add (lhs, rhs), rest2) end
            | parseExp' (lhs, Token.Minus :: rest) =
                let val (rhs, rest2) = parseTerm rest
                in parseExp' (Syntax.Sub (lhs, rhs), rest2) end
            | parseExp' (lhs, rest) = (lhs, rest)
          and parseTerm toks =
            let val (lhs, rest) = parseAtom toks
            in parseTerm' (lhs, rest) end
          and parseTerm' (lhs, Token.Times :: rest) =
                let val (rhs, rest2) = parseAtom rest
                in parseTerm' (Syntax.Mul (lhs, rhs), rest2) end
            | parseTerm' (lhs, rest) = (lhs, rest)
          and parseAtom (Token.Num n :: rest) = (Syntax.Lit n, rest)
            | parseAtom (Token.Ident v :: rest) = (Syntax.Var v, rest)
            | parseAtom (Token.LParen :: rest) =
                let val (e, rest2) = parseExp rest
                in (e, expect (Token.RParen, rest2)) end
            | parseAtom (Token.LetK :: Token.Ident v :: Token.Equal
                         :: rest) =
                let val (bound, rest2) = parseExp rest
                    val rest3 = expect (Token.InK, rest2)
                    val (body, rest4) = parseExp rest3
                in (Syntax.Let (v, bound, body),
                    expect (Token.EndK, rest4)) end
            | parseAtom (t :: _) = raise ParseError (Token.describe t)
            | parseAtom nil = raise ParseError "unexpected end"
          fun parse s =
            case parseExp (Lexer.lex s) of
              (e, nil) => e
            | (_, t :: _) =>
                raise ParseError ("trailing " ^ Token.describe t)
        end
    """,
    "eval": """
        structure Eval = struct
          exception Unbound of string
          fun lookup (v, nil) = raise Unbound v
            | lookup (v, (name, value) :: rest) =
                if v = name then value else lookup (v, rest)
          fun eval env (Syntax.Lit n) = n
            | eval env (Syntax.Var v) = lookup (v, env)
            | eval env (Syntax.Add (a, b)) = eval env a + eval env b
            | eval env (Syntax.Sub (a, b)) = eval env a - eval env b
            | eval env (Syntax.Mul (a, b)) = eval env a * eval env b
            | eval env (Syntax.Let (v, bound, body)) =
                eval ((v, eval env bound) :: env) body
          fun run s = eval nil (Parser.parse s)
        end
    """,
}

PROGRAMS = [
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "let x = 5 in x * x end",
    "let a = 2 in let b = a * 10 in b - a end end",
    "10 - 3 - 2",
]


def main() -> None:
    project = Project.from_sources(UNITS)
    builder = CutoffBuilder(project)
    report = builder.build()
    print("build:", report.summary())
    print("dependency order:", " -> ".join(builder.last_graph.order))

    exports = builder.link()
    run = exports["eval"].structures["Eval"].values["run"]
    for program in PROGRAMS:
        print(f"  calc> {program:<45} = {apply_value(run, program)}")

    # Implementation fix in the lexer: nobody else recompiles.
    project.edit("lexer", UNITS["lexer"].replace(
        "if Char.isSpace c then go rest",
        "if Char.isSpace c orelse c = #\",\" then go rest"))
    print("lexer impl fix:", builder.build().summary())

    # Interface extension in Syntax (a new constructor): dependents that
    # match on the datatype must recompile -- and our nonexhaustiveness
    # warnings would flag Parser/Eval if they forgot to handle it.
    project.edit("syntax", UNITS["syntax"].replace(
        "| Let of string * exp * exp",
        "| Let of string * exp * exp\n          | Neg of exp"))
    print("syntax iface edit:", builder.build().summary())

    exports = builder.link()
    run = exports["eval"].structures["Eval"].values["run"]
    print("still works:", apply_value(run, "1 + 2, * 3"))


if __name__ == "__main__":
    main()
