"""A simulated development session comparing the three build managers.

Generates a 30-unit project, performs a realistic sequence of edits, and
shows how many units each manager recompiles at every step:

- make    : timestamps + transitive cascade (the 1994 status quo),
- cutoff  : the paper's intrinsic-pid manager (the IRM),
- smart   : per-exported-name granularity (Tichy-style upper bound).

Run with:  python examples/incremental_dev.py
"""

from repro import CutoffBuilder, SmartBuilder, TimestampBuilder
from repro.workload import generate_workload, random_dag

STEPS = [
    ("fix a comment in the root unit", "edit_comment", "u000"),
    ("rewrite an algorithm (same interface)", "edit_implementation",
     "u000"),
    ("tweak a mid-level helper body", "edit_implementation", "u011"),
    ("add a function to the root's interface", "edit_interface", "u000"),
    ("touch a leaf unit", "edit_comment", "u029"),
]


def run_manager(label: str, builder_class) -> list[int]:
    workload = generate_workload(random_dag(30, 3, seed=77),
                                 helpers_per_unit=4)
    builder = builder_class(workload.project)
    cold = builder.build()
    counts = [len(cold.compiled)]
    for _description, op, unit in STEPS:
        getattr(workload, op)(unit)
        counts.append(len(builder.build().compiled))
    # Everything still links and runs identically.
    builder.link()
    return counts


def main() -> None:
    results = {
        "make": run_manager("make", TimestampBuilder),
        "cutoff": run_manager("cutoff", CutoffBuilder),
        "smart": run_manager("smart", SmartBuilder),
    }

    steps = ["cold build"] + [s[0] for s in STEPS]
    width = max(len(s) for s in steps) + 2
    print(f"{'step'.ljust(width)}  make  cutoff  smart   (units recompiled,"
          f" of 30)")
    print("-" * (width + 40))
    for i, step in enumerate(steps):
        row = "  ".join(
            str(results[m][i]).rjust(len(m)) for m in ("make", "cutoff",
                                                       "smart"))
        print(f"{step.ljust(width)}  {row}")

    total = {m: sum(v[1:]) for m, v in results.items()}
    print("-" * (width + 40))
    print(f"{'total recompilations after edits'.ljust(width)}  "
          f"{total['make']:>4}  {total['cutoff']:>6}  {total['smart']:>5}")


if __name__ == "__main__":
    main()
