"""The read-eval-print loop.

Each input is compiled as a miniature compilation unit against the
current environment pair and executed at once; the resulting bindings are
layered for subsequent inputs ("evaluation of each top level declaration
... augments the environment with new bindings").  Unlike bin-file units,
interactive inputs may contain any declaration, including top-level
``val``s; a bare expression is wrapped as ``val it = <exp>`` in the
SML tradition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.basis import make_basis
from repro.dynamic.evaluate import eval_decs
from repro.dynamic.values import SMLRaise, format_value
from repro.elab.errors import ElabError
from repro.elab.topdec import elaborate_decs
from repro.lang import ast
from repro.lang.errors import SourceError
from repro.lang.parser import parse_expression, parse_program
from repro.semant.format import format_type


@dataclass
class ReplResult:
    """The outcome of one interactive input."""

    ok: bool
    bindings: list[str] = field(default_factory=list)  # rendered lines
    error: str = ""

    def render(self) -> str:
        if not self.ok:
            return self.error
        return "\n".join(self.bindings)


class REPL:
    """An interactive session over a private basis instance."""

    def __init__(self, print_sink=None):
        self._printed: list[str] = []
        sink = print_sink if print_sink is not None else self._printed.append
        self.basis = make_basis(print_sink=sink, fresh=True)
        self.static_env, self.dyn_env = self.basis.child_envs()

    def printed_output(self) -> str:
        """Everything the evaluated programs printed (default sink)."""
        return "".join(self._printed)

    def use(self, builder) -> ReplResult:
        """Bring a compilation manager's project into this session.

        Builds (incrementally) and links the project, then layers every
        unit's static exports and dynamic exports over the session
        environments -- the paper's coexistence of the interactive loop
        and the batch manager.  Returns a result listing what became
        visible.
        """
        report = builder.build()
        exports = builder.link()
        bound: list[str] = []
        order = list(builder._stable_order) + list(builder.last_graph.order)
        dyn_frame = self.dyn_env.child()
        for name in order:
            unit = builder.units[name]
            self.static_env = unit.static_env.atop(self.static_env)
            exports[name].splice_into(dyn_frame)
            for ns in ("structures", "signatures", "functors"):
                for member in getattr(unit.static_env, ns):
                    bound.append(f"{ns[:-1]} {member} (from {name})")
        self.dyn_env = dyn_frame
        return ReplResult(True, bindings=[report.summary()] + bound)

    def eval(self, text: str) -> ReplResult:
        """Process one input line/phrase."""
        try:
            decs = self._parse(text)
        except SourceError as err:
            return ReplResult(False, error=f"syntax error: {err}")

        # Elaborate against a scratch frame so a failed input leaves the
        # session environment untouched.
        try:
            export_env, elaborator = elaborate_decs(decs, self.static_env)
        except ElabError as err:
            return ReplResult(False, error=f"type error: {err}")

        frame = self.dyn_env.child()
        try:
            eval_decs(decs, frame)
        except SMLRaise as raised:
            return ReplResult(
                False, error=f"uncaught exception {raised.packet!r}")
        except RecursionError:
            return ReplResult(False, error="stack overflow (deep "
                              "non-tail recursion)")

        # Commit: layer the new bindings.
        self.static_env = export_env.atop(self.static_env)
        merged = self.dyn_env.child()
        merged.values.update(frame.values)
        merged.structures.update(frame.structures)
        merged.functors.update(frame.functors)
        self.dyn_env = merged

        lines = [f"warning: {message}"
                 for message, _line in elaborator.warnings]
        lines.extend(self._render(export_env, frame))
        return ReplResult(True, bindings=lines)

    def _parse(self, text: str) -> list[ast.Dec]:
        stripped = text.strip().rstrip(";")
        try:
            return parse_program(text)
        except SourceError:
            # Maybe a bare expression: wrap as `val it = <exp>`.
            exp = parse_expression(stripped)
            pat = ast.VarPat("it")
            return [ast.ValDec([], [(pat, exp)])]

    def _render(self, export_env, frame) -> list[str]:
        lines = []
        for name, vb in export_env.values.items():
            if vb.is_constructor():
                continue
            value = frame.values.get(name)
            lines.append(
                f"val {name} = {format_value(value)} : "
                f"{format_type(vb.scheme)}")
        for name in export_env.tycons:
            if name not in frame.values:  # plain type, not a constructor
                lines.append(f"type {name}")
        for name in export_env.structures:
            lines.append(f"structure {name}")
        for name in export_env.signatures:
            lines.append(f"signature {name}")
        for name in export_env.functors:
            lines.append(f"functor {name}")
        return lines


def main() -> None:  # pragma: no cover - manual entry point
    """A tiny console driver: ``python -m repro.interactive.repl``."""
    import sys

    repl = REPL(print_sink=lambda s: print(s, end=""))
    print("Standard ML subset -- separate-compilation reproduction")
    buffer = ""
    for line in sys.stdin:
        buffer += line
        if ";" not in line and line.strip():
            continue
        if buffer.strip():
            print(repl.eval(buffer).render())
        buffer = ""


if __name__ == "__main__":  # pragma: no cover
    main()
