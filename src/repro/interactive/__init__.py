"""The interactive system (§6, §8).

The paper is explicit that "the ML community has long enjoyed the
benefits of an interactive compile-and-execute 'session'" and that the
separate-compilation machinery must coexist with it: the interactive
read-eval-print loop and the batch compilation manager are *both clients
of the same compiler primitives* -- the "Visible Compiler" architecture.

- :class:`repro.interactive.repl.REPL` -- the read-eval-print loop,
  maintaining paired static/dynamic environments across inputs.
- :class:`repro.interactive.visible.VisibleCompiler` -- the compiler as a
  library: compile, execute, hash, dehydrate, rehydrate as first-class
  operations over a session.
"""

from repro.interactive.repl import REPL, ReplResult
from repro.interactive.visible import VisibleCompiler

__all__ = ["REPL", "ReplResult", "VisibleCompiler"]
