"""The Visible Compiler: the compiler as a library (§8).

"We have re-engineered the interface of the SML/NJ compiler to provide
[the primitives] described in this paper" -- compile, execute,
dehydrate/rehydrate, and pid extraction -- "so that a compilation manager
can be layered on top".  :class:`VisibleCompiler` is that interface: the
IRM builders, the REPL, the benchmarks, and user programs (see
``examples/``) are all clients of these same primitives.
"""

from __future__ import annotations

from repro.units.pipeline import (
    compile_unit,
    execute_unit,
    layer_context,
    load_unit,
    source_digest,
)
from repro.units.session import Session
from repro.units.unit import CompiledUnit, DynExport


class VisibleCompiler:
    """First-class access to the compiler primitives over one session.

    Typical metaprogramming use (mirroring the paper's examples: theorem
    provers keeping sources out of files, custom library systems)::

        vc = VisibleCompiler()
        base = vc.compile("base", "structure S = struct ... end", [])
        client = vc.compile("client", "structure T = ...", [base])
        exports = vc.execute_all([base, client])
    """

    def __init__(self, session: Session | None = None):
        self.session = session if session is not None else Session()
        self._dyn: dict[str, DynExport] = {}

    # -- the paper's primitives ---------------------------------------------

    def compile(self, name: str, source: str,
                imports: list[CompiledUnit]) -> CompiledUnit:
        """``compile : source × statenv → codeUnit`` (the statenv is the
        layering of the imports over the pervasive basis)."""
        return compile_unit(name, source, imports, self.session)

    def execute(self, unit: CompiledUnit) -> DynExport:
        """``execute : codeUnit × dynenv → dynenv``.  The imports must
        have been executed through this compiler already."""
        dyn_imports = [self._dyn[i] for i, _pid in unit.imports]
        export = execute_unit(unit, dyn_imports, self.session)
        self._dyn[unit.name] = export
        return export

    def execute_all(self, units: list[CompiledUnit]) -> dict[str, DynExport]:
        for unit in units:
            self.execute(unit)
        return dict(self._dyn)

    def export_pid(self, unit: CompiledUnit) -> str:
        """The unit's intrinsic pid (already computed at compile time)."""
        return unit.export_pid

    def import_pids(self, unit: CompiledUnit) -> list[tuple[str, str]]:
        return list(unit.imports)

    def dehydrate(self, unit: CompiledUnit) -> bytes:
        """The unit's bin-file payload."""
        return unit.payload

    def rehydrate(self, name: str, pid: str, payload: bytes,
                  imports: list[CompiledUnit],
                  source_text: str = "") -> CompiledUnit:
        """Load a bin payload produced earlier (possibly by another
        session over the same sources)."""
        digest = source_digest(source_text) if source_text else ""
        return load_unit(name, pid, imports, payload, self.session, digest)

    def context_env(self, imports: list[CompiledUnit]):
        """The static environment a unit with these imports sees."""
        return layer_context(self.session, imports)
