"""Type-safe linkage (§7).

A classical linker matches imports to exports by *name*; if a makefile
bug let a stale object file survive, the program links and then
miscomputes.  The paper's linker matches by *pid*: because a pid is the
hash of an exported interface, "a consistent set of pids ensures a
type-safe linking process" -- link-time type checking without
re-elaboration.
"""

from repro.linker.link import LinkError, Linker, check_consistency

__all__ = ["LinkError", "Linker", "check_consistency"]
