"""The type-safe linker."""

from __future__ import annotations

from repro.units.pipeline import execute_unit
from repro.units.session import Session
from repro.units.unit import CompiledUnit, DynExport


class LinkError(Exception):
    """An import pid does not match the corresponding export pid.

    This is the paper's "makefile bug" made loud: some unit was compiled
    against an interface that is no longer the one being linked.
    """


def check_consistency(units: list[CompiledUnit]) -> None:
    """Verify that every import pid matches the provider's export pid.

    ``units`` must contain each unit exactly once; providers may appear
    anywhere in the list (order-independent check).
    """
    exports: dict[str, str] = {}
    for unit in units:
        if unit.name in exports:
            raise LinkError(f"duplicate unit {unit.name} at link time")
        exports[unit.name] = unit.export_pid
    for unit in units:
        for import_name, import_pid in unit.imports:
            actual = exports.get(import_name)
            if actual is None:
                raise LinkError(
                    f"unit {unit.name} imports {import_name}, which is not "
                    f"being linked")
            if actual != import_pid:
                raise LinkError(
                    f"unit {unit.name} was compiled against "
                    f"{import_name}@{import_pid[:12]}..., but the linked "
                    f"{import_name} exports {actual[:12]}... "
                    f"(stale compilation -- interface changed)")


class Linker:
    """Links and executes a consistent set of units.

    Execution happens in the given order (which must be a topological
    order of the import graph); each unit's code is applied to the
    dynamic exports of its imports, exactly the paper's
    ``execute : codeUnit × dynenv → dynenv`` chain.
    """

    def __init__(self, session: Session):
        self.session = session
        self.dyn_exports: dict[str, DynExport] = {}

    def link(self, units: list[CompiledUnit],
             verify: bool = True) -> dict[str, DynExport]:
        if verify:
            check_consistency(units)
        for unit in units:
            self.execute(unit)
        return self.dyn_exports

    def execute(self, unit: CompiledUnit) -> DynExport:
        dyn_imports = []
        for import_name, _pid in unit.imports:
            dyn = self.dyn_exports.get(import_name)
            if dyn is None:
                raise LinkError(
                    f"unit {unit.name} executed before its import "
                    f"{import_name}")
            dyn_imports.append(dyn)
        export = execute_unit(unit, dyn_imports, self.session)
        self.dyn_exports[unit.name] = export
        return export
