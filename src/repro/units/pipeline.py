"""The compile / execute / load pipeline over compilation units.

``compile_unit`` is the paper's ``compile : source × statenv →
codeUnit``; ``execute_unit`` is ``execute : codeUnit × dynenv → dynenv``;
``load_unit`` rehydrates a bin payload produced in an earlier session.
"""

from __future__ import annotations

import time

from repro.dynamic.evaluate import eval_decs
from repro.lang.parser import parse_program
from repro.elab.topdec import elaborate_decs
from repro.obs.meter import NULL_METER, BuildMeter
from repro.pickle.pickler import Unpickler, Pickler, context_chain_ids
from repro.pids.crc128 import crc128_hex
from repro.pids.intrinsic import binding_pids, intrinsic_pid
from repro.units.session import Session
from repro.units.unit import CompiledUnit, DynExport, PhaseTimes
from repro.semant.env import Env


def layer_context(session: Session, imports: list[CompiledUnit]) -> Env:
    """Build the compilation context: import environments layered over
    the pervasive basis, in import order (later imports shadow)."""
    env = session.basis.static_env
    for unit in imports:
        env = unit.static_env.atop(env)
    return env


def compile_unit(
    name: str,
    source: str,
    imports: list[CompiledUnit],
    session: Session,
    meter: BuildMeter = NULL_METER,
) -> CompiledUnit:
    """Parse, elaborate, hash and dehydrate one unit.

    ``imports`` are the already-compiled (or loaded) units this source
    depends on, in dependency order.  Registers the unit's exports in the
    session and returns the compiled unit.  ``meter`` observes the four
    phases (and the dehydrated byte count) when tracing is on.
    """
    times = PhaseTimes()

    t0 = time.perf_counter()
    with meter.span("parse", cat="phase", unit=name):
        decs = parse_program(source)
    t1 = time.perf_counter()
    with meter.span("elaborate", cat="phase", unit=name):
        context = layer_context(session, imports).child()
        export_env, elaborator = elaborate_decs(decs, context)
    t2 = time.perf_counter()

    with meter.span("hash", cat="phase", unit=name) as hsp:
        ctx_ids = context_chain_ids(context)
        pid = intrinsic_pid(export_env, elaborator.new_stamps,
                            session.extern, ctx_ids, seed=name)
        # Per-binding slice pids, same canonicalization, one pickler
        # run per exported binding (the smart builder's cutoff data).
        slice_pids = binding_pids(export_env, elaborator.new_stamps,
                                  session.extern, ctx_ids, seed=name)
        hsp.set(bindings=len(slice_pids))
    t3 = time.perf_counter()

    with meter.span("dehydrate", cat="phase", unit=name) as sp:
        pickler = Pickler(
            local_stamp_ids=elaborator.new_stamps,
            extern=session.extern,
            context_env_ids=ctx_ids,
        )
        payload = pickler.run((export_env, decs))
        sp.set(bytes=pickler.bytes_out)
    t4 = time.perf_counter()
    if meter.enabled:
        meter.counter("pickle.bytes_out", pickler.bytes_out)

    times.parse = t1 - t0
    times.elaborate = t2 - t1
    times.hash = t3 - t2
    times.dehydrate = t4 - t3

    unit = CompiledUnit(
        name=name,
        export_pid=pid,
        imports=[(imp.name, imp.export_pid) for imp in imports],
        static_env=export_env,
        code=decs,
        payload=payload,
        export_index=pickler.export_index,
        source_digest=source_digest(source),
        times=times,
        owned_stamp_ids=frozenset(elaborator.new_stamps),
        binding_pids=slice_pids,
    )
    session.register_exports(pid, pickler.export_index)
    return unit


def load_unit(
    name: str,
    export_pid: str,
    imports: list[CompiledUnit],
    payload: bytes,
    session: Session,
    source_digest_value: str = "",
    meter: BuildMeter = NULL_METER,
    binding_pids: dict[str, str] | None = None,
) -> CompiledUnit:
    """Rehydrate a bin payload from an earlier session.

    The unit's imports must already be live (compiled or loaded) so the
    rehydrater can resolve stubs through the session registry.
    ``binding_pids`` carries the record's per-binding slice pids onto
    the live unit (empty for pre-slicing records); rehydration never
    recomputes them.
    """
    times = PhaseTimes()
    t0 = time.perf_counter()
    with meter.span("rehydrate", cat="phase", unit=name,
                    bytes=len(payload)):
        context = layer_context(session, imports).child()
        unpickler = Unpickler(payload, resolve=session.resolve,
                              context_env=context)
        export_env, decs = unpickler.run()
    times.rehydrate = time.perf_counter() - t0
    if meter.enabled:
        meter.counter("pickle.bytes_in", unpickler.bytes_in)

    unit = CompiledUnit(
        name=name,
        export_pid=export_pid,
        imports=[(imp.name, imp.export_pid) for imp in imports],
        static_env=export_env,
        code=decs,
        payload=payload,
        export_index=unpickler.export_index,
        source_digest=source_digest_value,
        times=times,
        owned_stamp_ids=frozenset(
            obj.stamp.id for obj in unpickler.export_index),
        binding_pids=dict(binding_pids or {}),
    )
    session.register_exports(export_pid, unpickler.export_index)
    return unit


def execute_unit(
    unit: CompiledUnit,
    dyn_imports: list[DynExport],
    session: Session,
) -> DynExport:
    """Run a unit's code against its imports' dynamic exports.

    Mirrors ``code : imports -> exports``: the import vector is spliced
    into a fresh frame over the basis dynamic environment, the code runs,
    and the unit's own top-level bindings are its export vector.
    """
    t0 = time.perf_counter()
    env = session.basis.dyn_env.child()
    for dyn in dyn_imports:
        dyn.splice_into(env)
    frame = env.child()
    eval_decs(unit.code, frame)
    unit.times.execute = time.perf_counter() - t0
    return DynExport(unit.name, frame)


def source_digest(source: str) -> str:
    """Digest of the raw source text (make-level currency check)."""
    return crc128_hex(source.encode("utf-8"))
