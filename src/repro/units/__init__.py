"""Compilation units: the paper's core model (§3).

::

    compile : source × statenv → codeUnit
    codeUnit = statenv × code × imports × exports
    execute : codeUnit × dynenv → dynenv

A :class:`CompiledUnit` carries its exported static environment, its
"code" (elaborated AST -- our stand-in for closed machine code), the list
of import pids, and its own export pid.  :class:`Session` is the
process-wide identity registry mapping stamps to (pid, index) pairs and
back -- what the dehydrater and rehydrater plug into.
"""

from repro.units.unit import CompiledUnit, DynExport, PhaseTimes
from repro.units.session import Session
from repro.units.pipeline import compile_unit, execute_unit

__all__ = [
    "CompiledUnit",
    "DynExport",
    "PhaseTimes",
    "Session",
    "compile_unit",
    "execute_unit",
]
