"""Compilation-unit records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dynamic.values import DynEnv, VFunctor, VStruct
from repro.lang import ast
from repro.semant.env import Env


@dataclass
class PhaseTimes:
    """Wall-clock seconds per compilation phase (benchmark T1's data)."""

    parse: float = 0.0
    elaborate: float = 0.0
    hash: float = 0.0
    dehydrate: float = 0.0
    rehydrate: float = 0.0
    execute: float = 0.0

    def compile_total(self) -> float:
        return self.parse + self.elaborate

    def overhead_total(self) -> float:
        return self.hash + self.dehydrate + self.rehydrate


@dataclass
class CompiledUnit:
    """The in-memory form of a compiled (or rehydrated) unit.

    Attributes:
        name: the unit's name (its source file, sans extension).
        export_pid: intrinsic pid of the exported static environment.
        imports: (unit name, export pid) for each unit this one was
            compiled against, in context order.  This is the paper's
            "import pid list" -- the linker checks it, and the cutoff
            manager compares it.
        static_env: the exported static environment (one frame).
        code: the elaborated declarations ("closed machine code").
        payload: the dehydrated (static_env, code) bytes -- the bin-file
            body.
        export_index: locally-owned stamped objects in dehydration order;
            entry *i* is what stubs ``(export_pid, i)`` refer to.
        source_digest: hash of the source text, for make-level currency.
        times: per-phase wall-clock timings.
    """

    name: str
    export_pid: str
    imports: list[tuple[str, str]]
    static_env: Env
    code: list[ast.Dec]
    payload: bytes
    export_index: list[object] = field(default_factory=list)
    source_digest: str = ""
    times: PhaseTimes = field(default_factory=PhaseTimes)
    #: Stamp ids this unit owns (for re-dehydrating pieces of it, e.g.
    #: the per-binding slice pids).
    owned_stamp_ids: frozenset[int] = frozenset()
    #: Per-exported-binding intrinsic pids ("ns:name" -> pid), computed
    #: at compile time (:func:`repro.pids.intrinsic.binding_pids`) and
    #: carried through bin records; empty for units rehydrated from
    #: pre-slicing (v3) records.
    binding_pids: dict[str, str] = field(default_factory=dict)

    def import_pid_of(self, name: str) -> str | None:
        for unit_name, pid in self.imports:
            if unit_name == name:
                return pid
        return None


class DynExport:
    """A unit's dynamic export: its top-level bindings.

    This is the "vector of exported values" of the paper's model; one
    entry per unit, keyed by the unit's pid at link time.
    """

    __slots__ = ("unit_name", "values", "structures", "functors")

    def __init__(self, unit_name: str, frame: DynEnv):
        self.unit_name = unit_name
        self.values: dict[str, object] = dict(frame.values)
        self.structures: dict[str, VStruct] = dict(frame.structures)
        self.functors: dict[str, VFunctor] = dict(frame.functors)

    def splice_into(self, env: DynEnv) -> None:
        env.values.update(self.values)
        env.structures.update(self.structures)
        env.functors.update(self.functors)

    def __repr__(self) -> str:
        return (f"<dynexport {self.unit_name}: {len(self.values)} values, "
                f"{len(self.structures)} structures, "
                f"{len(self.functors)} functors>")
