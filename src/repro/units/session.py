"""The session: process-level identity registry for dehydration.

A session owns the pervasive basis and the two maps the pickler plugs
into:

- ``stamp id -> (pid, export index)`` -- consulted by the dehydrater when
  it meets an object the current unit does not own ("which unit exported
  this, and at what index?");
- ``(pid, export index) -> live object`` -- consulted by the rehydrater
  to turn stubs back into pointers.

The basis registers itself under the reserved ``BASIS_PID`` when the
session is created, by dry-running the dehydrater over the pervasive
environment (deterministic, so every session agrees on basis indices).
"""

from __future__ import annotations

from repro.basis import BASIS_PID, Basis, make_basis
from repro.pickle.pickler import Pickler


class Session:
    """Identity registry + basis for one compilation process."""

    def __init__(self, basis: Basis | None = None):
        self.basis = basis if basis is not None else make_basis()
        self._stamp_to_ref: dict[int, tuple[str, int]] = {}
        self._ref_to_object: dict[tuple[str, int], object] = {}
        self._register_basis()

    def _register_basis(self) -> None:
        pickler = Pickler(local_stamp_ids=self.basis.owned_stamp_ids)
        pickler.run(self.basis.static_env)
        self.register_exports(BASIS_PID, pickler.export_index)

    # -- registration ---------------------------------------------------

    def register_exports(self, pid: str, export_index: list[object]) -> None:
        """Record a unit's exported stamped objects under its pid."""
        for index, obj in enumerate(export_index):
            self._stamp_to_ref.setdefault(obj.stamp.id, (pid, index))
            self._ref_to_object[(pid, index)] = obj

    # -- pickler callbacks -------------------------------------------------

    def extern(self, stamp_id: int) -> tuple[str, int]:
        """Dehydration callback: which (pid, index) owns this stamp?"""
        return self._stamp_to_ref[stamp_id]

    def resolve(self, pid: str, index: int):
        """Rehydration callback: the live object for a stub."""
        return self._ref_to_object[(pid, index)]

    def knows_pid(self, pid: str) -> bool:
        return any(key[0] == pid for key in self._ref_to_object)

    def __repr__(self) -> str:
        return (f"<session {len(self._ref_to_object)} registered objects, "
                f"{len(self._stamp_to_ref)} stamps>")
