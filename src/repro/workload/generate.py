"""Rendering synthetic SML compilation units.

Every generated unit is a real program: a signature, a structure
ascribed to it (transparently, as the paper's Figure 1 style demands),
a generative datatype, functions that *call into* the unit's imports
(so the dependencies are semantic, not just lexical), and filler helper
functions to reach a target size.

Three edit operations change the unit in the three ways the cutoff
experiments distinguish:

- ``edit_comment``      -- text changes only; interface and code identical;
- ``edit_implementation`` -- function bodies change; interface identical;
- ``edit_interface``    -- a new value is added to signature + structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.project import Project


@dataclass
class _UnitParams:
    index: int
    deps: list[int]
    n_helpers: int
    comment_salt: int = 0
    impl_salt: int = 0
    iface_extras: int = 0
    #: When True, the unit's own interface mentions its first import's
    #: type, so an import interface change propagates ("type leakage" --
    #: the transparent-matching phenomenon of the paper's Figure 1).
    leak_types: bool = False


def unit_name(index: int) -> str:
    return f"u{index:03d}"


def _module_name(index: int) -> str:
    return f"M{index:03d}"


def _sig_name(index: int) -> str:
    return f"SIG{index:03d}"


def render_unit(params: _UnitParams) -> str:
    """Render one unit's SML source from its parameters."""
    k = params.index
    module = _module_name(k)
    sig = _sig_name(k)

    lines: list[str] = []
    if params.comment_salt:
        lines.append(f"(* revision comment #{params.comment_salt} *)")
    lines.append(f"(* unit {unit_name(k)}: generated workload module *)")

    # Signature.
    lines.append(f"signature {sig} = sig")
    lines.append("  type t")
    lines.append("  val make : int -> t")
    lines.append("  val value : t -> int")
    lines.append("  val combine : t * t -> t")
    for i in range(params.n_helpers):
        lines.append(f"  val helper_{i} : int -> int")
    for i in range(params.iface_extras):
        lines.append(f"  val extra_{i} : int")
    if params.leak_types and params.deps:
        dep = _module_name(params.deps[0])
        lines.append(f"  val probe : {dep}.t -> int")
    lines.append("end")

    # Structure.
    lines.append(f"structure {module} : {sig} = struct")
    lines.append(f"  datatype t = T{k} of int")
    if params.deps:
        terms = " + ".join(
            f"{_module_name(j)}.value ({_module_name(j)}.make n)"
            for j in params.deps
        )
        lines.append(f"  fun depsum n = {terms}")
    else:
        lines.append("  fun depsum n = n")
    salt = params.impl_salt
    lines.append(f"  fun make n = T{k} (n + depsum n + {salt})")
    lines.append(f"  fun value (T{k} n) = n")
    lines.append("  fun combine (a, b) = make (value a + value b)")
    for i in range(params.n_helpers):
        # Implementation edits perturb helper bodies (not their types).
        lines.append(
            f"  fun helper_{i} x = x * {i + 1} + {salt} "
            f"+ (if x < 0 then 0 - x else x)")
    for i in range(params.iface_extras):
        lines.append(f"  val extra_{i} = {i}")
    if params.leak_types and params.deps:
        dep = _module_name(params.deps[0])
        lines.append(f"  fun probe x = {dep}.value x")
    lines.append("end")
    return "\n".join(lines) + "\n"


@dataclass
class Workload:
    """A generated project plus its regeneration parameters."""

    project: Project
    params: dict[str, _UnitParams] = field(default_factory=dict)
    deps: list[list[int]] = field(default_factory=list)

    # -- edit operations ---------------------------------------------------

    def _rerender(self, name: str) -> None:
        self.project.edit(name, render_unit(self.params[name]))

    def edit_comment(self, name: str) -> None:
        """A comment-only edit: same tokens, same interface."""
        self.params[name].comment_salt += 1
        self._rerender(name)

    def edit_implementation(self, name: str) -> None:
        """Change function bodies without touching any exported type."""
        self.params[name].impl_salt += 1
        self._rerender(name)

    def edit_interface(self, name: str) -> None:
        """Add a new value spec + binding: the exported interface (and
        hence the intrinsic pid) changes."""
        self.params[name].iface_extras += 1
        self._rerender(name)

    # -- queries --------------------------------------------------------

    def names(self) -> list[str]:
        return [unit_name(i) for i in range(len(self.deps))]

    def root_name(self) -> str:
        return unit_name(0)

    def total_lines(self) -> int:
        return self.project.total_lines()


@dataclass
class SlicedWorkload:
    """A hot-interface project for the slicing experiments.

    One provider unit (``iface``) exports ``n_bindings`` independent
    structures; each binding has ``clients_per_binding`` client units
    using exactly that binding and nothing else.  Editing one binding's
    interface flips the provider's whole-unit pid (so cutoff recompiles
    every client) while moving exactly one slice pid (so the sliced
    smart builder recompiles only that binding's clients) -- the shape
    benchmark T5 measures.
    """

    project: Project
    n_bindings: int
    clients_per_binding: int
    impl_salts: list[int] = field(default_factory=list)
    iface_extras: list[int] = field(default_factory=list)

    PROVIDER = "iface"

    @staticmethod
    def binding_name(k: int) -> str:
        return f"B{k:02d}"

    def client_name(self, k: int, j: int) -> str:
        return f"use{k:02d}_{j}"

    def users_of(self, k: int) -> list[str]:
        """The client units that genuinely use binding ``k``."""
        return [self.client_name(k, j)
                for j in range(self.clients_per_binding)]

    def names(self) -> list[str]:
        out = [self.PROVIDER]
        for k in range(self.n_bindings):
            out.extend(self.users_of(k))
        return out

    # -- rendering -------------------------------------------------------

    def _render_provider(self) -> str:
        lines = [f"(* hot interface: {self.n_bindings} independent "
                 f"bindings *)"]
        for k in range(self.n_bindings):
            lines.append(f"structure {self.binding_name(k)} = struct")
            lines.append(f"  fun get x = x + {k} + {self.impl_salts[k]}")
            for i in range(self.iface_extras[k]):
                lines.append(f"  val extra_{i} = {i}")
            lines.append("end")
        return "\n".join(lines) + "\n"

    def _rerender(self) -> None:
        self.project.edit(self.PROVIDER, self._render_provider())

    # -- edit operations -------------------------------------------------

    def edit_binding_interface(self, k: int) -> None:
        """Add a value to binding ``k``: its slice pid (and the
        provider's whole-unit pid) changes; every other slice pid is
        untouched."""
        self.iface_extras[k] += 1
        self._rerender()

    def edit_binding_implementation(self, k: int) -> None:
        """Perturb binding ``k``'s function body.  Function bodies are
        not part of the static interface, so no pid moves -- whole-unit
        or slice -- and every client cuts off at the provider."""
        self.impl_salts[k] += 1
        self._rerender()


def sliced_workload(n_bindings: int = 8,
                    clients_per_binding: int = 1) -> SlicedWorkload:
    """Generate the hot-interface shape (see :class:`SlicedWorkload`)."""
    project = Project()
    workload = SlicedWorkload(
        project=project,
        n_bindings=n_bindings,
        clients_per_binding=clients_per_binding,
        impl_salts=[0] * n_bindings,
        iface_extras=[0] * n_bindings,
    )
    project.add(workload.PROVIDER, workload._render_provider())
    for k in range(n_bindings):
        binding = workload.binding_name(k)
        for j in range(clients_per_binding):
            project.add(
                workload.client_name(k, j),
                f"structure U{k:02d}x{j} = struct\n"
                f"  val v = {binding}.get {j}\n"
                f"end\n")
    return workload


def generate_workload(deps: list[list[int]], helpers_per_unit: int = 6,
                      leak_types: bool = False) -> Workload:
    """Generate a project from a dependency shape.

    Args:
        deps: ``deps[k]`` lists the unit indices unit k imports
            (see :mod:`repro.workload.shapes`).
        helpers_per_unit: filler functions per unit (controls unit size;
            each adds one signature line and one structure line).
        leak_types: make each unit's interface mention its first import's
            type, so interface changes cascade transitively even under
            cutoff (the paper's inter-implementation-dependence regime).
    """
    project = Project()
    workload = Workload(project=project, deps=[list(d) for d in deps])
    for k, unit_deps in enumerate(deps):
        params = _UnitParams(index=k, deps=list(unit_deps),
                             n_helpers=helpers_per_unit,
                             leak_types=leak_types)
        name = unit_name(k)
        workload.params[name] = params
        project.add(name, render_unit(params))
    return workload
