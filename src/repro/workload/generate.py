"""Rendering synthetic SML compilation units.

Every generated unit is a real program: a signature, a structure
ascribed to it (transparently, as the paper's Figure 1 style demands),
a generative datatype, functions that *call into* the unit's imports
(so the dependencies are semantic, not just lexical), and filler helper
functions to reach a target size.

Three edit operations change the unit in the three ways the cutoff
experiments distinguish:

- ``edit_comment``      -- text changes only; interface and code identical;
- ``edit_implementation`` -- function bodies change; interface identical;
- ``edit_interface``    -- a new value is added to signature + structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.project import Project


@dataclass
class _UnitParams:
    index: int
    deps: list[int]
    n_helpers: int
    comment_salt: int = 0
    impl_salt: int = 0
    iface_extras: int = 0
    #: When True, the unit's own interface mentions its first import's
    #: type, so an import interface change propagates ("type leakage" --
    #: the transparent-matching phenomenon of the paper's Figure 1).
    leak_types: bool = False


def unit_name(index: int) -> str:
    return f"u{index:03d}"


def _module_name(index: int) -> str:
    return f"M{index:03d}"


def _sig_name(index: int) -> str:
    return f"SIG{index:03d}"


def render_unit(params: _UnitParams) -> str:
    """Render one unit's SML source from its parameters."""
    k = params.index
    module = _module_name(k)
    sig = _sig_name(k)

    lines: list[str] = []
    if params.comment_salt:
        lines.append(f"(* revision comment #{params.comment_salt} *)")
    lines.append(f"(* unit {unit_name(k)}: generated workload module *)")

    # Signature.
    lines.append(f"signature {sig} = sig")
    lines.append("  type t")
    lines.append("  val make : int -> t")
    lines.append("  val value : t -> int")
    lines.append("  val combine : t * t -> t")
    for i in range(params.n_helpers):
        lines.append(f"  val helper_{i} : int -> int")
    for i in range(params.iface_extras):
        lines.append(f"  val extra_{i} : int")
    if params.leak_types and params.deps:
        dep = _module_name(params.deps[0])
        lines.append(f"  val probe : {dep}.t -> int")
    lines.append("end")

    # Structure.
    lines.append(f"structure {module} : {sig} = struct")
    lines.append(f"  datatype t = T{k} of int")
    if params.deps:
        terms = " + ".join(
            f"{_module_name(j)}.value ({_module_name(j)}.make n)"
            for j in params.deps
        )
        lines.append(f"  fun depsum n = {terms}")
    else:
        lines.append("  fun depsum n = n")
    salt = params.impl_salt
    lines.append(f"  fun make n = T{k} (n + depsum n + {salt})")
    lines.append(f"  fun value (T{k} n) = n")
    lines.append("  fun combine (a, b) = make (value a + value b)")
    for i in range(params.n_helpers):
        # Implementation edits perturb helper bodies (not their types).
        lines.append(
            f"  fun helper_{i} x = x * {i + 1} + {salt} "
            f"+ (if x < 0 then 0 - x else x)")
    for i in range(params.iface_extras):
        lines.append(f"  val extra_{i} = {i}")
    if params.leak_types and params.deps:
        dep = _module_name(params.deps[0])
        lines.append(f"  fun probe x = {dep}.value x")
    lines.append("end")
    return "\n".join(lines) + "\n"


@dataclass
class Workload:
    """A generated project plus its regeneration parameters."""

    project: Project
    params: dict[str, _UnitParams] = field(default_factory=dict)
    deps: list[list[int]] = field(default_factory=list)

    # -- edit operations ---------------------------------------------------

    def _rerender(self, name: str) -> None:
        self.project.edit(name, render_unit(self.params[name]))

    def edit_comment(self, name: str) -> None:
        """A comment-only edit: same tokens, same interface."""
        self.params[name].comment_salt += 1
        self._rerender(name)

    def edit_implementation(self, name: str) -> None:
        """Change function bodies without touching any exported type."""
        self.params[name].impl_salt += 1
        self._rerender(name)

    def edit_interface(self, name: str) -> None:
        """Add a new value spec + binding: the exported interface (and
        hence the intrinsic pid) changes."""
        self.params[name].iface_extras += 1
        self._rerender(name)

    # -- queries --------------------------------------------------------

    def names(self) -> list[str]:
        return [unit_name(i) for i in range(len(self.deps))]

    def root_name(self) -> str:
        return unit_name(0)

    def total_lines(self) -> int:
        return self.project.total_lines()


def generate_workload(deps: list[list[int]], helpers_per_unit: int = 6,
                      leak_types: bool = False) -> Workload:
    """Generate a project from a dependency shape.

    Args:
        deps: ``deps[k]`` lists the unit indices unit k imports
            (see :mod:`repro.workload.shapes`).
        helpers_per_unit: filler functions per unit (controls unit size;
            each adds one signature line and one structure line).
        leak_types: make each unit's interface mention its first import's
            type, so interface changes cascade transitively even under
            cutoff (the paper's inter-implementation-dependence regime).
    """
    project = Project()
    workload = Workload(project=project, deps=[list(d) for d in deps])
    for k, unit_deps in enumerate(deps):
        params = _UnitParams(index=k, deps=list(unit_deps),
                             n_helpers=helpers_per_unit,
                             leak_types=leak_types)
        name = unit_name(k)
        workload.params[name] = params
        project.add(name, render_unit(params))
    return workload
