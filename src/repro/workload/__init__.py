"""Synthetic-project generation for the evaluation.

The paper's measurements ran over SML/NJ itself: "the compiler ... 65,000
lines ... comprising about 200 compilation units".  We cannot ship that
compiler, so the benchmarks run over *generated* SML projects whose shape
(unit count, dependency DAG, unit size) is controlled, which lets every
experiment sweep the variables the paper holds fixed.

- :mod:`repro.workload.shapes` -- dependency-DAG shapes (chain, tree,
  diamond layers, random DAG).
- :mod:`repro.workload.generate` -- rendering units as real SML sources
  and packaging them as a :class:`Workload` with edit operations
  (comment-only / implementation-only / interface) whose classification
  the cutoff experiments rely on.
"""

from repro.workload.generate import (SlicedWorkload, Workload,
                                     generate_workload, sliced_workload)
from repro.workload.shapes import (chain, diamond, fanout, layered,
                                   random_dag, tree)

__all__ = [
    "SlicedWorkload",
    "Workload",
    "generate_workload",
    "sliced_workload",
    "chain",
    "tree",
    "diamond",
    "fanout",
    "layered",
    "random_dag",
]
