"""Dependency-DAG shapes.

Each shape function returns ``deps``: a list where ``deps[k]`` is the
list of unit indices unit *k* imports (all < k, so the list order is
already topological).
"""

from __future__ import annotations

import random


def chain(n: int) -> list[list[int]]:
    """u0 <- u1 <- u2 <- ...: the worst case for cascading rebuilds."""
    return [[] if k == 0 else [k - 1] for k in range(n)]


def tree(depth: int, fanout: int = 2) -> list[list[int]]:
    """A dependency tree: the root (unit 0) is imported by ``fanout``
    children, each of those by ``fanout`` more, down to ``depth`` levels.
    Leaves depend on their parent only."""
    deps: list[list[int]] = [[]]
    frontier = [0]
    for _level in range(depth - 1):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                deps.append([parent])
                next_frontier.append(len(deps) - 1)
        frontier = next_frontier
    return deps


def fanout(width: int) -> list[list[int]]:
    """Wide fan-out: one base unit imported by ``width`` independent
    units, plus one top unit importing them all.  The best case for
    wavefront parallelism (the whole middle layer is one antichain) and
    the worst case for an interface edit to the base."""
    deps: list[list[int]] = [[]]
    deps.extend([0] for _ in range(width))
    deps.append(list(range(1, width + 1)))
    return deps


def diamond(width: int, depth: int) -> list[list[int]]:
    """Layered diamonds: one base unit, ``depth`` layers of ``width``
    units each depending on the whole previous layer, and one top unit
    depending on the last layer.  High fan-in, the shape of library
    stacks."""
    deps: list[list[int]] = [[]]
    previous = [0]
    for _level in range(depth):
        layer = []
        for _ in range(width):
            deps.append(list(previous))
            layer.append(len(deps) - 1)
        previous = layer
    deps.append(list(previous))
    return deps


def layered(layers: list[int], fan_in: int = 2,
            seed: int = 0) -> list[list[int]]:
    """``layers[i]`` units in layer i; each unit imports up to ``fan_in``
    random units of the previous layer."""
    rng = random.Random(seed)
    deps: list[list[int]] = []
    previous: list[int] = []
    for count in layers:
        current = []
        for _ in range(count):
            if previous:
                k = min(fan_in, len(previous))
                chosen = sorted(rng.sample(previous, rng.randint(1, k)))
            else:
                chosen = []
            deps.append(chosen)
            current.append(len(deps) - 1)
        previous = current
    return deps


def random_dag(n: int, max_deps: int = 3, seed: int = 0) -> list[list[int]]:
    """A random DAG: unit k imports up to ``max_deps`` units < k."""
    rng = random.Random(seed)
    deps: list[list[int]] = []
    for k in range(n):
        if k == 0:
            deps.append([])
            continue
        count = rng.randint(0, min(max_deps, k))
        deps.append(sorted(rng.sample(range(k), count)))
    return deps
