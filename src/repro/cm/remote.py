"""The remote store backend: a shared, fleet-wide compilation cache.

Intrinsic pids are content hashes, so bin records are natural keys for
a cache shared across machines: most builds become pure hits on records
some other client compiled.  This module supplies the three pieces:

- :class:`StoreServer` -- the authoritative store, wrapping a local
  :class:`~repro.cm.backend.DirectoryBackend` (flat or sharded) and
  dispatching framed requests under one lock.  The server stores *raw*
  record bytes -- its directory is a perfectly ordinary store that
  ``--fsck`` can check directly.
- Transports -- :class:`LoopbackTransport` calls a server in-process
  (tests, benchmarks); :class:`SocketTransport` speaks the same framed
  protocol over TCP (``rbs://host:port``).  Every frame carries a
  CRC-128, so a truncated or garbled response is a
  :class:`~repro.cm.faults.TransportError` at the codec, never garbage
  handed to the store.
- :class:`RemoteBackend` -- the client: a
  :class:`~repro.cm.backend.StoreBackend` fronting the server with a
  local write-through cache (flat directory + LRU index with a size
  cap) and optional wire compression.

**Failure semantics** (the PR 2 contract, extended over the network):

- *At-rest damage on the server* (a corrupted record file) is fetched
  verbatim and fails the client's checksums exactly as local damage
  would -- same taxonomy, same quarantined miss; ``quarantine=True``
  heals the *server's* files.
- *Transport faults* (drop, timeout, truncation, garbling) trip the
  backend's **offline latch**: the session stops talking to the server,
  the load degrades to whatever the local cache holds, and everything
  else is a clean ``store-miss`` recompile.  A build never sees a
  transport exception, and its outputs are byte-identical to a no-cache
  build.
- *Racing writers* with separate caches converge through the server:
  record puts are atomic per request and the manifest merge is a single
  server-side read-modify-write, so PR 3's merge-save union holds.

Eviction safety: between ``begin_save``/``end_save`` every record the
save writes is pinned -- the LRU can never evict a record dirty in the
current save out from under its own checkpoint.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import struct
import threading
import zlib

from repro.cm.backend import (
    CACHE_INDEX_NAME,
    HEADER_SUFFIX,
    MANIFEST_NAME,
    PAYLOAD_SUFFIX,
    DirectoryBackend,
    ShardedBackend,
    StoreBackend,
    StoreError,
    StoreLock,
    encode_manifest,
    parse_manifest,
)
from repro.cm.faults import (
    REAL_FS,
    FileSystem,
    TransportError,
    TransportTimeout,
)
from repro.pids.crc128 import crc128_hex

#: Frame magic: "repro bin store, framing v1".
_MAGIC = b"RBS1"


# -- the frame codec -----------------------------------------------------


def encode_frame(meta: dict, blob: bytes = b"") -> bytes:
    """``MAGIC + u32(meta_len) + meta + u32(blob_len) + blob + crc``.
    The trailing CRC-128 (hex, 32 bytes) covers everything before it;
    :func:`decode_frame` rejects any frame that fails it, which is how
    wire truncation/garbling becomes a typed transport error instead of
    bytes the store has to guess about."""
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    body = (_MAGIC + struct.pack(">I", len(meta_bytes)) + meta_bytes
            + struct.pack(">I", len(blob)) + blob)
    return body + crc128_hex(body).encode("ascii")


def decode_frame(data: bytes) -> tuple[dict, bytes]:
    """Inverse of :func:`encode_frame`; raises
    :class:`~repro.cm.faults.TransportError` on any framing or
    integrity failure."""
    if len(data) < len(_MAGIC) + 4 + 4 + 32:
        raise TransportError("short frame")
    body, crc = data[:-32], data[-32:]
    if body[:len(_MAGIC)] != _MAGIC:
        raise TransportError("bad frame magic")
    if crc128_hex(body).encode("ascii") != crc:
        raise TransportError("frame integrity check failed")
    off = len(_MAGIC)
    (meta_len,) = struct.unpack_from(">I", body, off)
    off += 4
    meta_bytes = body[off:off + meta_len]
    off += meta_len
    (blob_len,) = struct.unpack_from(">I", body, off)
    off += 4
    blob = body[off:off + blob_len]
    if len(meta_bytes) != meta_len or len(blob) != blob_len:
        raise TransportError("frame length mismatch")
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except ValueError as err:
        raise TransportError(f"unparsable frame meta: {err}") from err
    return meta, blob


# -- the server ----------------------------------------------------------


class StoreServer:
    """The authoritative store behind a remote backend.

    Wraps a local directory backend (``layout="flat"`` or
    ``"sharded"``) and dispatches one framed request at a time under a
    lock, bumping a revision counter on every mutation -- the client's
    cheap change signature.  Ordinary exceptions during an op travel
    back as an ``error`` meta field (the client raises them as
    ``OSError``: io-error damage, a local miss); only the *frame* layer
    produces transport errors.
    """

    def __init__(self, root: str, fs: FileSystem | None = None,
                 layout: str = "flat"):
        cls = ShardedBackend if layout == "sharded" else DirectoryBackend
        self.backend = cls(root, fs=fs)
        self.lock = threading.RLock()
        self.rev = 0
        self.requests = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def handle_bytes(self, request: bytes) -> bytes:
        """Decode, dispatch, encode -- the whole server side of one
        request.  Frame-level damage in the *request* is reported as an
        error meta (the response frame itself is always well-formed)."""
        self.requests += 1
        self.bytes_in += len(request)
        try:
            meta, blob = decode_frame(request)
        except TransportError as err:
            response = encode_frame({"error": f"bad request frame: {err}"})
            self.bytes_out += len(response)
            return response
        if meta.pop("z", 0):
            try:
                blob = zlib.decompress(blob)
            except zlib.error as err:
                meta = {"op": "?"}
                response = encode_frame(
                    {"error": f"bad request compression: {err}"})
                self.bytes_out += len(response)
                return response
        accept_z = bool(meta.pop("az", 0))
        try:
            out_meta, out_blob = self.handle(meta, blob)
        except Exception as err:  # travels back as an op error
            out_meta, out_blob = (
                {"error": f"{type(err).__name__}: {err}"}, b"")
        if accept_z and out_blob:
            packed = zlib.compress(out_blob, 6)
            if len(packed) < len(out_blob):
                out_meta["z"] = 1
                out_blob = packed
        response = encode_frame(out_meta, out_blob)
        self.bytes_out += len(response)
        return response

    def handle(self, meta: dict, blob: bytes) -> tuple[dict, bytes]:
        op = meta.get("op")
        backend = self.backend
        with self.lock:
            if op == "open":
                backend.open()
                self.rev += 1
                return {"ok": True}, b""
            if op == "exists":
                return {"exists": backend.exists()}, b""
            if op == "rev":
                return {"rev": self.rev}, b""
            if op == "list":
                notes: list[str] = []
                headers, payloads = backend.list_pairs(notes=notes)
                return {"headers": sorted(headers),
                        "payloads": sorted(payloads),
                        "notes": notes}, b""
            if op == "fetch":
                stem = meta["stem"]
                header = payload = None
                try:
                    header = backend.read_header(stem)
                except OSError:
                    pass
                try:
                    payload = backend.read_payload(stem)
                except OSError:
                    pass
                out = {"has_header": header is not None,
                       "has_payload": payload is not None,
                       "header_len": len(header or b"")}
                return out, (header or b"") + (payload or b"")
            if op == "put":
                header_len = meta["header_len"]
                backend.open()
                backend.put(meta["stem"], blob[:header_len],
                            blob[header_len:])
                self.rev += 1
                return {"ok": True}, b""
            if op == "delete":
                backend.delete(meta["stem"])
                self.rev += 1
                return {"ok": True}, b""
            if op == "manifest_read":
                data = backend.read_manifest_bytes()
                return {"present": data is not None}, data or b""
            if op == "manifest_write":
                backend.open()
                backend.write_manifest(blob)
                self.rev += 1
                return {"ok": True}, b""
            if op == "manifest_merge":
                backend.open()
                size = backend.merge_manifest(
                    dict(meta["adds"]), set(meta["removes"]))
                self.rev += 1
                return {"size": size}, b""
            if op == "quarantine_ensure":
                return {"qerror": backend.ensure_quarantine_dir()}, b""
            if op == "quarantine_pair":
                moved, err = backend.quarantine_pair(meta["stem"])
                if moved:
                    self.rev += 1
                return {"moved": moved, "qerror": err}, b""
            if op == "sweep_rlocks":
                return {"swept": backend.sweep_dead_record_locks()}, b""
            raise ValueError(f"unknown op {op!r}")


# -- transports ----------------------------------------------------------


class LoopbackTransport:
    """An in-process transport: request bytes straight into a
    :class:`StoreServer`.  Still byte-level -- the frame codec (and a
    wrapping :class:`~repro.cm.faults.FaultyTransport`) sees exactly
    what a socket would carry."""

    def __init__(self, server: StoreServer):
        self.server = server

    def send(self, request: bytes) -> bytes:
        return self.server.handle_bytes(request)

    def close(self) -> None:
        pass


class SocketTransport:
    """The framed protocol over TCP: each direction is
    ``u32(frame_len) + frame``.  One persistent connection, lazily
    opened; any socket failure is a transport error (the client's
    offline latch takes it from there)."""

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as err:
                raise TransportError(
                    f"cannot connect to {self.host}:{self.port}: "
                    f"{err}") from err
        return self._sock

    def send(self, request: bytes) -> bytes:
        with self._lock:
            try:
                sock = self._connect()
                sock.sendall(struct.pack(">I", len(request)) + request)
                raw_len = self._read_exact(sock, 4)
                (length,) = struct.unpack(">I", raw_len)
                return self._read_exact(sock, length)
            except socket.timeout as err:
                self.close()
                raise TransportTimeout(str(err)) from err
            except OSError as err:
                self.close()
                raise TransportError(str(err)) from err

    @staticmethod
    def _read_exact(sock: socket.socket, n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                raise TransportError("connection closed mid-frame")
            buf += chunk
        return buf

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class _SocketHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        sock = self.request
        while True:
            try:
                raw_len = SocketTransport._read_exact(sock, 4)
            except TransportError:
                return  # client hung up between requests
            (length,) = struct.unpack(">I", raw_len)
            request = SocketTransport._read_exact(sock, length)
            response = self.server.store_server.handle_bytes(request)
            sock.sendall(struct.pack(">I", len(response)) + response)


class _ThreadingTCP(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_socket(server: StoreServer, host: str = "127.0.0.1",
                 port: int = 0):
    """Serve a :class:`StoreServer` over TCP in a daemon thread.
    Returns ``(tcp_server, bound_port)``; call ``tcp_server.shutdown()``
    to stop."""
    tcp = _ThreadingTCP((host, port), _SocketHandler)
    tcp.store_server = server
    thread = threading.Thread(target=tcp.serve_forever, daemon=True)
    thread.start()
    return tcp, tcp.server_address[1]


# -- loopback registry (in-process servers addressable by URL) -----------

_LOOPBACK: dict[str, StoreServer] = {}
_LOOPBACK_LOCK = threading.Lock()


def register_loopback(name: str, server: StoreServer) -> str:
    """Make an in-process server addressable as ``loopback://name``
    (so ``--store-url`` and the daemon can reach it in tests)."""
    with _LOOPBACK_LOCK:
        _LOOPBACK[name] = server
    return f"loopback://{name}"


def unregister_loopback(name: str) -> None:
    with _LOOPBACK_LOCK:
        _LOOPBACK.pop(name, None)


def transport_for_url(url: str):
    """A transport for ``loopback://name`` or ``rbs://host:port``."""
    if url.startswith("loopback://"):
        name = url[len("loopback://"):]
        with _LOOPBACK_LOCK:
            server = _LOOPBACK.get(name)
        if server is None:
            raise StoreError(f"no loopback store server named {name!r}")
        return LoopbackTransport(server)
    if url.startswith("rbs://"):
        hostport = url[len("rbs://"):]
        host, _, port = hostport.rpartition(":")
        if not host or not port.isdigit():
            raise StoreError(f"bad store URL {url!r} "
                             f"(want rbs://host:port)")
        return SocketTransport(host, int(port))
    raise StoreError(f"unsupported store URL scheme in {url!r}")


def remote_backend_from_url(url: str, cache_dir: str,
                            fs: FileSystem | None = None,
                            cache_cap_bytes: int | None = None,
                            compress: bool = True) -> "RemoteBackend":
    return RemoteBackend(url, cache_dir, transport_for_url(url), fs=fs,
                         cache_cap_bytes=cache_cap_bytes,
                         compress=compress)


# -- the client backend --------------------------------------------------


class RemoteBackend(StoreBackend):
    """A store backend whose authority is a :class:`StoreServer`,
    fronted by a local flat-directory write-through cache.

    Reads prefetch: ``list_pairs`` pulls every record the cache does
    not already hold (verified against its own header checksum before
    caching -- server-side at-rest damage is *served raw* to the store
    for normal taxonomy classification, never cached).  Writes go to
    the cache first and through to the server; if the server is
    unreachable the **offline latch** trips and the session continues
    purely locally -- every consequence is a note plus a clean local
    miss, never an exception.

    The cache evicts least-recently-used pairs past ``cache_cap_bytes``
    (records written by an in-flight save are pinned), and its manifest
    always names exactly the cached stems, so an offline load of the
    cache is a *healthy* store, just a smaller one.
    """

    kind = "remote"

    def __init__(self, url: str, cache_dir: str, transport,
                 fs: FileSystem | None = None,
                 cache_cap_bytes: int | None = None,
                 compress: bool = True):
        self.fs = fs if fs is not None else REAL_FS
        self.url = url
        self.root = cache_dir
        self.key = url
        self.label = url
        self.transport = transport
        self.cache = DirectoryBackend(cache_dir, fs=self.fs)
        self.cache_cap_bytes = cache_cap_bytes
        self.compress = compress
        self.offline = False
        self.notes: list[str] = []
        #: At-rest-damaged fetches served raw this session (never
        #: cached): stem -> (header bytes | None, payload bytes | None).
        self._raw: dict[str, tuple[bytes | None, bytes | None]] = {}
        #: LRU bookkeeping: stem -> pair byte size, in recency order
        #: (oldest first).  Persisted best-effort to CACHE_INDEX.json.
        self._lru: dict[str, int] | None = None
        self._pinned: set[str] | None = None  # in-flight save's records
        #: Session stats for the fleet benchmark.
        self.cache_hits = 0
        self.remote_fetches = 0
        self.evictions = 0

    # -- the wire ---------------------------------------------------------

    def _call(self, meta: dict, blob: bytes = b"") -> tuple[dict, bytes]:
        """One request/response, with compression and the offline
        latch.  Raises :class:`TransportError` only to `_call` callers,
        all of whom catch it via :meth:`_try_call`."""
        if self.compress:
            meta = dict(meta)
            meta["az"] = 1
            if blob:
                packed = zlib.compress(blob, 6)
                if len(packed) < len(blob):
                    meta["z"] = 1
                    blob = packed
        response = self.transport.send(encode_frame(meta, blob))
        out_meta, out_blob = decode_frame(response)
        if out_meta.pop("z", 0):
            try:
                out_blob = zlib.decompress(out_blob)
            except zlib.error as err:
                raise TransportError(
                    f"bad response compression: {err}") from err
        if "error" in out_meta:
            raise OSError(f"remote store error: {out_meta['error']}")
        return out_meta, out_blob

    def _try_call(self, meta: dict,
                  blob: bytes = b"") -> tuple[dict, bytes] | None:
        """`_call`, degraded: a transport failure trips the offline
        latch and returns None (the caller falls back to the cache)."""
        if self.offline:
            return None
        try:
            return self._call(meta, blob)
        except TransportTimeout as err:
            self._go_offline(meta.get("op", "?"), f"timeout: {err}")
            return None
        except TransportError as err:
            self._go_offline(meta.get("op", "?"), str(err))
            return None

    def _go_offline(self, op: str, why: str) -> None:
        self.offline = True
        self.notes.append(
            f"remote store {self.url} offline after {op!r} ({why}); "
            f"continuing with the local cache")

    # -- LRU index ---------------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.root, CACHE_INDEX_NAME)

    def _load_lru(self) -> dict[str, int]:
        if self._lru is not None:
            return self._lru
        order: list[str] = []
        try:
            data = json.loads(self.fs.read_bytes(self._index_path()))
            if isinstance(data, dict) and isinstance(data.get("order"),
                                                     list):
                order = [s for s in data["order"] if isinstance(s, str)]
        except (OSError, ValueError):
            pass
        lru: dict[str, int] = {}
        try:
            headers, payloads = self.cache.list_pairs()
        except OSError:
            headers, payloads = set(), set()
        present = headers & payloads
        sizes = {}
        for stem in present:
            size = 0
            for suffix in (HEADER_SUFFIX, PAYLOAD_SUFFIX):
                sig = self.fs.stat_signature(
                    self.cache.path_of(stem, suffix))
                size += sig[1] if sig else 0
            sizes[stem] = size
        for stem in order:  # remembered recency first...
            if stem in sizes:
                lru[stem] = sizes.pop(stem)
        for stem in sorted(sizes):  # ...then anything unremembered
            lru[stem] = sizes[stem]
        self._lru = lru
        return lru

    def _save_lru(self) -> None:
        if self._lru is None:
            return
        try:
            self.fs.write_bytes(
                self._index_path(),
                json.dumps({"order": list(self._lru)},
                           indent=1).encode("utf-8"))
        except OSError:
            pass

    def _touch(self, stem: str, size: int) -> None:
        lru = self._load_lru()
        lru.pop(stem, None)
        lru[stem] = size  # dict order = recency order, newest last
        self._evict()

    def _evict(self) -> None:
        cap = self.cache_cap_bytes
        if cap is None:
            return
        lru = self._load_lru()
        total = sum(lru.values())
        evicted: list[str] = []
        for stem in list(lru):
            if total <= cap:
                break
            if self._pinned is not None and stem in self._pinned:
                continue  # dirty in the current save: never evicted
            total -= lru.pop(stem)
            try:
                self.cache.delete(stem)
            except OSError:
                pass
            evicted.append(stem)
            self.evictions += 1
        if evicted:
            try:  # heal the cache manifest: it names cached stems only
                self.cache.merge_manifest({}, set(evicted))
            except (OSError, StoreError):
                pass
            self._save_lru()

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        self.cache.open()
        self._try_call({"op": "open"})

    def exists(self) -> bool:
        got = self._try_call({"op": "exists"})
        if got is not None:
            return bool(got[0].get("exists")) or self.cache.exists()
        return self.cache.exists()

    # -- record pairs ------------------------------------------------------

    def _cached(self, stem: str) -> bool:
        return (self.cache.has_payload(stem)
                and self.fs.exists(self.cache.path_of(stem,
                                                      HEADER_SUFFIX)))

    def _verify_pair(self, header: bytes,
                     payload: bytes) -> tuple[bool, str | None]:
        """Is a fetched pair internally consistent (parsable header
        whose checksum matches the payload)?  Returns
        ``(ok, unit name)``; damaged pairs are served raw, not
        cached."""
        try:
            parsed = json.loads(header.decode("utf-8"))
            if not isinstance(parsed, dict):
                return False, None
            name = parsed.get("name")
            if crc128_hex(payload) != parsed.get("payload_crc"):
                return False, name if isinstance(name, str) else None
            return True, name if isinstance(name, str) else None
        except (ValueError, UnicodeDecodeError):
            return False, None

    def list_pairs(self, notes: list[str] | None = None
                   ) -> tuple[set[str], set[str]]:
        """List the server's records, prefetching uncached pairs into
        the local cache.  Offline (or once a fault latches), the cache
        *is* the store: a smaller, healthy world -- everything absent is
        a clean miss."""
        self._raw.clear()
        got = self._try_call({"op": "list"})
        if got is None:
            headers, payloads = self.cache.list_pairs(notes=notes)
            return headers, payloads
        meta, _ = got
        if notes is not None:
            notes.extend(meta.get("notes", []))
        headers = set(meta.get("headers", []))
        payloads = set(meta.get("payloads", []))
        fresh_names: dict[str, str] = {}
        seen_headers: set[str] = set()
        seen_payloads: set[str] = set()
        for stem in sorted(headers | payloads):
            if self._cached(stem):
                self.cache_hits += 1
                seen_headers.add(stem)
                seen_payloads.add(stem)
                lru = self._load_lru()
                if stem in lru:
                    self._touch(stem, lru[stem])
                continue
            fetched = self._try_call({"op": "fetch", "stem": stem})
            if fetched is None:
                # Mid-prefetch fault: report only what is available
                # locally -- the rest are clean misses.
                break
            fmeta, blob = fetched
            self.remote_fetches += 1
            header = (blob[:fmeta["header_len"]]
                      if fmeta.get("has_header") else None)
            payload = (blob[fmeta["header_len"]:]
                       if fmeta.get("has_payload") else None)
            if header is not None:
                seen_headers.add(stem)
            if payload is not None:
                seen_payloads.add(stem)
            if header is None or payload is None:
                # Orphaned half on the server: raw, for the taxonomy.
                self._raw[stem] = (header, payload)
                continue
            ok, name = self._verify_pair(header, payload)
            if not ok:
                self._raw[stem] = (header, payload)
                continue
            self.cache.open()
            self.cache.put(stem, header, payload)
            if name is not None:
                fresh_names[stem] = name
            self._touch(stem, len(header) + len(payload))
        if fresh_names:
            try:  # keep the cache manifest = exactly the cached stems
                self.cache.merge_manifest(fresh_names, set())
            except (OSError, StoreError):
                pass
        self._save_lru()
        return seen_headers, seen_payloads

    def read_header(self, stem: str) -> bytes:
        if stem in self._raw:
            header = self._raw[stem][0]
            if header is None:
                raise OSError(f"no header for {stem!r}")
            return header
        if self._cached(stem):
            return self.cache.read_header(stem)
        got = self._try_call({"op": "fetch", "stem": stem})
        if got is not None and got[0].get("has_header"):
            self._raw[stem] = (got[1][:got[0]["header_len"]],
                               got[1][got[0]["header_len"]:]
                               if got[0].get("has_payload") else None)
            return self._raw[stem][0]
        raise OSError(f"record {stem!r} not available "
                      f"(remote {'offline' if self.offline else 'miss'})")

    def read_payload(self, stem: str) -> bytes:
        if stem in self._raw:
            payload = self._raw[stem][1]
            if payload is None:
                raise OSError(f"no payload for {stem!r}")
            return payload
        if self._cached(stem):
            return self.cache.read_payload(stem)
        raise OSError(f"record {stem!r} not available "
                      f"(remote {'offline' if self.offline else 'miss'})")

    def has_payload(self, stem: str) -> bool:
        if stem in self._raw:
            return self._raw[stem][1] is not None
        return self.cache.has_payload(stem)

    def put(self, stem: str, header_bytes: bytes, payload: bytes) -> None:
        self.cache.open()
        self.cache.put(stem, header_bytes, payload)
        if self._pinned is not None:
            self._pinned.add(stem)
        self._touch(stem, len(header_bytes) + len(payload))
        self._try_call({"op": "put", "stem": stem,
                        "header_len": len(header_bytes)},
                       header_bytes + payload)

    def delete(self, stem: str) -> None:
        self.cache.delete(stem)
        lru = self._load_lru()
        lru.pop(stem, None)
        self._raw.pop(stem, None)
        self._try_call({"op": "delete", "stem": stem})

    # -- manifest ----------------------------------------------------------

    def manifest_present(self) -> bool:
        got = self._try_call({"op": "manifest_read"})
        if got is not None:
            return bool(got[0].get("present"))
        return self.cache.manifest_present()

    def manifest_label(self) -> str:
        return f"{self.url}/{MANIFEST_NAME}"

    def read_manifest_bytes(self) -> bytes | None:
        got = self._try_call({"op": "manifest_read"})
        if got is not None:
            meta, blob = got
            return blob if meta.get("present") else None
        return self.cache.read_manifest_bytes()

    def _cache_manifest_view(self, records: dict[str, str]) -> None:
        """Write the cache manifest as the cached-stems slice of
        ``records`` -- an offline load of the cache must be a healthy
        (smaller) store, not a wall of missing-record damage."""
        try:
            headers, payloads = self.cache.list_pairs()
            present = headers & payloads
            self.cache.write_manifest(encode_manifest(
                {s: n for s, n in records.items() if s in present}))
        except (OSError, StoreError):
            pass

    def write_manifest(self, data: bytes) -> None:
        try:
            records = parse_manifest(data)
        except ValueError:
            records = {}
        self._cache_manifest_view(records)
        self._try_call({"op": "manifest_write"}, data)

    def merge_manifest(self, adds: dict[str, str],
                       removes: set[str]) -> int:
        got = self._try_call({"op": "manifest_merge", "adds": adds,
                              "removes": sorted(removes)})
        try:
            headers, payloads = self.cache.list_pairs()
            present = headers & payloads
            self.cache.merge_manifest(
                {s: n for s, n in adds.items() if s in present},
                set(removes))
        except (OSError, StoreError):
            pass
        if got is not None:
            return int(got[0].get("size", 0))
        # Offline: report the local merge's size (best effort).
        data = self.cache.read_manifest_bytes()
        return len(data) if data is not None else 0

    # -- locks -------------------------------------------------------------

    def store_lock(self, timeout: float) -> StoreLock:
        # Serializes writers *sharing this cache directory*; clients
        # with separate caches are serialized by the server's op lock
        # (atomic puts + one-op manifest merge).  The store may exist
        # only remotely so far -- make sure the lock has a home.
        self.cache.open()
        return self.cache.store_lock(timeout)

    def record_lock(self, stem: str, timeout: float) -> StoreLock:
        return self.cache.record_lock(stem, timeout)

    # -- maintenance -------------------------------------------------------

    def prune(self, live_stems: set[str]) -> list[str]:
        # Local debris only: the server is shared, and records this
        # client no longer has may be exactly what another client
        # needs.  Server-side GC is an operator action, not a save
        # side effect.
        pruned = self.cache.prune(live_stems)
        lru = self._load_lru()
        for stem in list(lru):
            if stem not in live_stems:
                lru.pop(stem)
        self._save_lru()
        return pruned

    def sweep_dead_record_locks(self) -> list[str]:
        swept = self.cache.sweep_dead_record_locks()
        got = self._try_call({"op": "sweep_rlocks"})
        if got is not None:
            swept.extend(got[0].get("swept", []))
        return swept

    def sweep_stale(self) -> list[str]:
        return self.cache.sweep_stale()

    def ensure_quarantine_dir(self) -> str | None:
        got = self._try_call({"op": "quarantine_ensure"})
        if got is not None:
            return got[0].get("qerror")
        return self.cache.ensure_quarantine_dir()

    def quarantine_pair(self, stem: str) -> tuple[bool, str | None]:
        # Damage seen through this backend is either at-rest on the
        # server (quarantine there, authoritatively) or -- offline --
        # in the cache (quarantine locally).
        got = self._try_call({"op": "quarantine_pair", "stem": stem})
        if got is not None:
            try:  # drop any local copy of the damaged pair
                self.cache.delete(stem)
            except OSError:
                pass
            self._raw.pop(stem, None)
            return bool(got[0].get("moved")), got[0].get("qerror")
        return self.cache.quarantine_pair(stem)

    def signature(self) -> tuple:
        got = self._try_call({"op": "rev"})
        if got is not None:
            return ("remote", self.url, got[0].get("rev"))
        return ("remote-offline",) + self.cache.signature()

    # -- addressing --------------------------------------------------------

    def describe(self, stem: str, suffix: str) -> str:
        return f"{self.url}/{stem}{suffix}"

    # -- save-session hooks ------------------------------------------------

    def begin_save(self) -> None:
        self._pinned = set()

    def end_save(self) -> None:
        self._pinned = None
        self._save_lru()
