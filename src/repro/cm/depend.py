"""Source-level dependency analysis.

"The IRM analyzes dependencies at several levels.  ... it uses the free
structure names to determine which units each unit depends on."  We parse
each unit, collect the module-level names it mentions but does not
define, and resolve them to the units that define them.

Per the paper's footnote 4, the IRM requires separately compiled units to
contain structures, functors and signatures -- not top-level values and
types; :func:`analyze` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.freevars import defined_module_names, module_level_mentions
from repro.lang.parser import parse_program
from repro.cm.project import Project


class DependencyError(Exception):
    """Unresolvable or cyclic inter-unit dependencies, or a unit that
    violates the module-declarations-only rule.

    When the failure is a dependency cycle, ``cycle`` holds one concrete
    closed path (``[A, B, A]``); otherwise it is None.
    """

    def __init__(self, message: str, cycle: list[str] | None = None):
        super().__init__(message)
        self.cycle = cycle


#: Declarations allowed at the top level of a compilation unit.
_MODULE_DECS = (ast.StructureDec, ast.SignatureDec, ast.FunctorDec,
                ast.LocalDec, ast.FixityDec)


@dataclass
class DepGraph:
    """The project's dependency structure.

    Attributes:
        deps: unit -> sorted list of units it imports.
        dependents: unit -> sorted list of units importing it.
        order: a topological order (imports before importers).
        parsed: unit -> parsed declarations (reused by builders to avoid
            a second parse; note builders re-parse at compile time anyway
            to keep per-unit timings honest).
    """

    deps: dict[str, list[str]] = field(default_factory=dict)
    dependents: dict[str, list[str]] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    parsed: dict[str, list[ast.Dec]] = field(default_factory=dict)
    #: unit -> provider unit -> the "ns:name" keys it mentions; the smart
    #: builder's per-name dependency data.
    uses: dict[str, dict[str, set[str]]] = field(default_factory=dict)

    def transitive_dependents(self, name: str) -> set[str]:
        out: set[str] = set()
        frontier = [name]
        while frontier:
            node = frontier.pop()
            for dep in self.dependents.get(node, ()):  # direct importers
                if dep not in out:
                    out.add(dep)
                    frontier.append(dep)
        return out


def analyze(project: Project, restrict: list[str] | None = None,
            visible: dict[str, set[str]] | None = None,
            cache: dict | None = None,
            extra_providers: dict[str, str] | None = None) -> DepGraph:
    """Build the dependency graph of ``project``.

    Args:
        project: the sources.
        restrict: consider only these units (used by group builds).
        visible: optional map unit -> set of units it may import; an edge
            outside the set is a :class:`DependencyError` (group/library
            visibility enforcement).
        cache: optional per-builder dictionary; parse results and
            name-mention analyses are memoized by source digest, so a
            rebuild only re-analyzes edited files ("the dependency
            information for each of the library's files [is] computed and
            cached", §9).
        extra_providers: module name -> providing unit, for units that
            exist outside the project's sources (stable libraries); edges
            to them appear in ``deps`` but not in the build ``order``.
    """
    # Imported lazily: repro.analysis.context imports this module, so a
    # top-level import of the analysis package would be circular.
    from repro.analysis.scopes import uses_from_mentions

    names = restrict if restrict is not None else project.names()
    graph = DepGraph()

    #: module name -> defining unit
    providers: dict[str, str] = dict(extra_providers or {})
    external_units = set(providers.values())
    mentions: dict[str, object] = {}
    for name in names:
        source = project.source(name)
        cached = cache.get(name) if cache is not None else None
        if cached is not None and cached[0] == source:
            _src, decs, defined, mentioned = cached
            graph.parsed[name] = decs
            mentions[name] = mentioned
            for _ns, module_names in defined.items():
                for module_name in module_names:
                    other = providers.get(module_name)
                    if other is not None and other != name:
                        raise DependencyError(
                            f"module {module_name} is defined by both "
                            f"{other} and {name}")
                    providers[module_name] = name
            continue
        decs = parse_program(source)
        _check_module_only(name, decs)
        graph.parsed[name] = decs
        defined = defined_module_names(decs)
        for _ns, module_names in defined.items():
            for module_name in module_names:
                other = providers.get(module_name)
                if other is not None and other != name:
                    raise DependencyError(
                        f"module {module_name} is defined by both {other} "
                        f"and {name}")
                providers[module_name] = name
        mentioned = module_level_mentions(decs)
        mentions[name] = mentioned
        if cache is not None:
            cache[name] = (source, decs, defined, mentioned)

    for name in names:
        # The shared use-set computation (repro.analysis.scopes): the
        # per-binding keys double as the dependency edges.
        uses = uses_from_mentions(mentions[name], providers, name)
        deps = set(uses)
        graph.uses[name] = uses
        if visible is not None:
            bad = deps - visible.get(name, set()) - external_units
            if bad:
                raise DependencyError(
                    f"unit {name} imports {sorted(bad)} outside its "
                    f"group's visibility")
        graph.deps[name] = sorted(deps)
        graph.dependents.setdefault(name, [])

    for name in names:
        for dep in graph.deps[name]:
            graph.dependents.setdefault(dep, []).append(name)
    for name in graph.dependents:
        graph.dependents[name].sort()

    graph.order = _topo_order(names, graph.deps)
    return graph


def _check_module_only(name: str, decs: list[ast.Dec]) -> None:
    for dec in decs:
        if not isinstance(dec, _MODULE_DECS):
            raise DependencyError(
                f"unit {name}: separately compiled units may contain only "
                f"structure/signature/functor declarations, found "
                f"{type(dec).__name__}")
        if isinstance(dec, ast.LocalDec):
            _check_module_only(name, dec.public)


def _topo_order(names: list[str], deps: dict[str, list[str]]) -> list[str]:
    """Stable topological sort (alphabetical among ready units).

    Dependencies outside ``names`` (stable-library units, already live)
    do not gate ordering.
    """
    name_set = set(names)
    remaining = {
        name: {d for d in deps[name] if d in name_set} for name in names
    }
    order: list[str] = []
    ready = sorted(name for name, d in remaining.items() if not d)
    while ready:
        node = ready.pop(0)
        order.append(node)
        del remaining[node]
        newly = []
        for name, d in remaining.items():
            d.discard(node)
            if not d and name not in ready:
                newly.append(name)
        if newly:
            ready = sorted(ready + newly)
    if remaining:
        cycle = find_cycle(remaining)
        raise DependencyError(
            f"dependency cycle among units: {format_cycle(cycle)}",
            cycle=cycle)
    return order


def find_cycle(deps: dict[str, "set[str] | list[str]"]) -> list[str]:
    """One concrete closed dependency path in ``deps``.

    ``deps`` maps node -> nodes it depends on; every node must have at
    least one dependency inside ``deps`` (true for the stuck set of a
    topological sort, where every remaining unit waits on a remaining
    unit).  Returns ``[A, B, ..., A]``; deterministic (smallest names
    first).
    """
    start = min(deps)
    path = [start]
    index = {start: 0}
    node = start
    while True:
        node = min(d for d in deps[node] if d in deps)
        if node in index:
            return path[index[node]:] + [node]
        index[node] = len(path)
        path.append(node)


def format_cycle(cycle: list[str]) -> str:
    """Render a closed path the way every cycle report should:
    ``A -> B -> A``."""
    return " -> ".join(cycle)
