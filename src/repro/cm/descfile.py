"""Group description files -- the §9 "makefile" surface of the IRM.

"The simplest--highest level--interface of this is a simple 'makefile'
system ... The makefile lists the names of source files ... and the
names of other makefiles (for the libraries it uses)."

The format (one directive per line, ``--`` comments)::

    group calculator
    members
      token.sml
      lexer.sml
      parser.sml
    imports
      ../stdlib/stdlib.cm

Member paths are relative to the description file; imported ``.cm``
files are loaded recursively (diamonds are shared, cycles rejected).
:func:`load_group_file` returns a :class:`repro.cm.group.Group` plus a
:class:`repro.cm.project.Project` holding every reachable source.
"""

from __future__ import annotations

import os

from repro.cm.group import Group
from repro.cm.project import Project


class DescFileError(Exception):
    """A malformed or cyclic group description."""


def parse_desc(text: str, origin: str = "<string>"):
    """Parse a description file's text.

    Returns (group name, member file names, imported .cm paths).
    """
    name: str | None = None
    members: list[str] = []
    imports: list[str] = []
    section: str | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("--", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("group"):
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise DescFileError(
                    f"{origin}:{lineno}: 'group' needs a name")
            if name is not None:
                raise DescFileError(
                    f"{origin}:{lineno}: duplicate 'group' directive")
            name = parts[1].strip()
        elif lowered == "members":
            section = "members"
        elif lowered == "imports":
            section = "imports"
        elif section == "members":
            members.append(line)
        elif section == "imports":
            imports.append(line)
        else:
            raise DescFileError(
                f"{origin}:{lineno}: unexpected line {line!r} before a "
                f"'members'/'imports' section")
    if name is None:
        raise DescFileError(f"{origin}: missing 'group <name>' directive")
    return name, members, imports


def load_group_file(path: str, project: Project | None = None,
                    _loading: dict | None = None) -> tuple[Group, Project]:
    """Load a ``.cm`` description file and everything it imports.

    All sources land in one shared :class:`Project` (member unit names
    are the source files' base names); the returned :class:`Group`
    mirrors the import hierarchy.
    """
    if project is None:
        project = Project()
    if _loading is None:
        _loading = {}

    path = os.path.abspath(path)
    state = _loading.get(path)
    if state == "in-progress":
        raise DescFileError(f"group import cycle through {path}")
    if isinstance(state, Group):
        return state, project

    _loading[path] = "in-progress"
    with open(path) as f:
        name, members, imports = parse_desc(f.read(), origin=path)

    base_dir = os.path.dirname(path)
    subgroups = []
    for import_path in imports:
        subgroup, _ = load_group_file(
            os.path.join(base_dir, import_path), project, _loading)
        subgroups.append(subgroup)

    member_units = []
    for member in members:
        member_path = os.path.join(base_dir, member)
        if not os.path.exists(member_path):
            raise DescFileError(
                f"{path}: member {member} does not exist")
        unit_name = os.path.splitext(os.path.basename(member))[0]
        with open(member_path) as f:
            source = f.read()
        if unit_name in project:
            if project.source(unit_name) != source:
                raise DescFileError(
                    f"{path}: unit name collision on {unit_name}")
        else:
            project.add(unit_name, source)
        member_units.append(unit_name)

    group = Group(name, member_units, imports=subgroups)
    _loading[path] = group
    return group, project
