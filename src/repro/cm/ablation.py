"""Ablation builder: recompilation keyed on *source digests* instead of
intrinsic interface pids.

This is the strawman between timestamps and intrinsic pids: smarter than
``make`` (touching a file without changing it does nothing) but blind to
the interface/implementation distinction -- any textual change to an
import, including a comment, cascades to all transitive dependents.
Benchmarked against the real cutoff builder in
``benchmarks/test_bench_ablations.py``.
"""

from __future__ import annotations

from repro.cm.base import BaseBuilder
from repro.cm.depend import DepGraph
from repro.cm.store import BinRecord
from repro.units.unit import CompiledUnit


class SourceDigestBuilder(BaseBuilder):
    """Cutoff structure, but the 'pid' compared is the import's source
    digest rather than its interface hash."""

    def make_record(self, name: str, unit: CompiledUnit) -> BinRecord:
        record = super().make_record(name, unit)
        record.extra["import_source_digests"] = [
            (imp_name, self.units[imp_name].source_digest)
            for imp_name, _pid in unit.imports
        ]
        return record

    def decide(self, name: str, graph: DepGraph,
               imports: list[CompiledUnit],
               record: BinRecord | None) -> tuple[str, str]:
        if record is None:
            return "compile", "no bin file"
        if not self.source_current(name, record):
            return "compile", "source changed"
        recorded = record.extra.get("import_source_digests", [])
        current = [(u.name, u.source_digest) for u in imports]
        if recorded != current:
            return "compile", "an imported *source* changed"
        if self.is_live_and_current(name, record):
            return "cached", ""
        return "load", ""
