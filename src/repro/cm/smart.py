"""Smart recompilation at per-exported-binding granularity.

The paper situates cutoff between classical recompilation and Tichy's
*smart* / Schwanke-Kaiser *smartest* recompilation (§2): smarter schemes
examine which pieces of an interface a dependent actually uses.  This
builder implements the smart point of that spectrum on *interface
slices*:

- every compiled unit carries a per-exported-binding pid table
  (:func:`repro.pids.intrinsic.binding_pids`, computed in the pipeline's
  hash phase alongside the whole-interface pid);
- every bin record carries, per import, exactly the bindings this unit
  mentions -- the use-set of the shared
  :class:`repro.analysis.scopes.UseDefAnalysis`, pinned to the
  provider's binding pids at compile time;
- a dependent is recompiled only if a binding it *uses* changed -- an
  interface change in a binding it never mentions is invisible to it.

The slice checks only run for imports whose whole-interface pid moved:
an import with a stable pid has, by construction, no changed bindings.
That makes the sliced builder's reuse a superset of cutoff's -- it can
never recompile more -- and it degrades gracefully: a record with no
slice data (a pre-slicing v3 bin, or a provider without binding pids)
falls back to the conservative whole-pid answer.

Strictly fewer recompilations than cutoff (benchmark T2 and
``benchmarks/test_bench_slicing.py`` quantify the gap), at the cost of
per-binding bookkeeping.  The paper chose cutoff because it falls out
of pids "for free"; this is the v2 the paper's §2 points at.
"""

from __future__ import annotations

from repro.cm.base import BaseBuilder
from repro.cm.depend import DepGraph
from repro.cm.store import BinRecord
from repro.units.unit import CompiledUnit


class SmartBuilder(BaseBuilder):
    """Per-binding smart recompilation over interface slices."""

    def decide(self, name: str, graph: DepGraph,
               imports: list[CompiledUnit],
               record: BinRecord | None) -> tuple[str, str]:
        if record is None:
            return "compile", "no bin file"
        if not self.source_current(name, record):
            return "compile", "source changed"
        if not self.imports_current(record, imports):
            # Some import's whole pid moved: consult the slices.
            stale = self._stale_use(record, imports)
            if stale is not None:
                return "compile", stale
            # Slices stable: reuse, but by *rehydrating* against the
            # new import interfaces -- a cached live unit would still
            # carry the old import pids and statenvs, which the linker
            # rightly rejects.  Rehydration rebinds by name.
            return "load", ""
        if self.is_live_and_current(name, record):
            return "cached", ""
        return "load", ""

    # -- the slice check ---------------------------------------------------

    def _stale_use(self, record: BinRecord,
                   imports: list[CompiledUnit]) -> str | None:
        """Why the record is stale at slice granularity, or None when
        every binding this unit uses is unchanged.

        Only imports whose whole-interface pid differs from the record
        are examined (a stable pid means no binding of it moved, so
        sliced reuse can never be narrower than cutoff reuse).  Missing
        slice data -- a changed edge absent from ``used_bindings``, or
        an empty recorded binding pid -- is conservative: recompile.
        """
        if [n for n, _ in record.imports] != [u.name for u in imports]:
            return "import set changed"
        prior_pids = dict(record.imports)
        for unit in imports:
            if prior_pids[unit.name] == unit.export_pid:
                continue  # whole pid stable: none of its bindings moved
            used = record.used_bindings.get(unit.name)
            if not used:
                return (f"{unit.name} changed "
                        f"(no slice data, whole-pid fallback)")
            provider_record = self.store.get(unit.name)
            live_pids = (provider_record.binding_pids
                         if provider_record is not None
                         else unit.binding_pids)
            for key in sorted(used):
                old_pid = used[key]
                if not old_pid:
                    return (f"{unit.name} changed "
                            f"(no slice data, whole-pid fallback)")
                if live_pids.get(key, "") != old_pid:
                    _ns, _, binding_name = key.partition(":")
                    return (f"used binding changed: "
                            f"{unit.name}.{binding_name}")
        return None
