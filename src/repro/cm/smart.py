"""Smart recompilation at per-exported-name granularity.

The paper situates cutoff between classical recompilation and Tichy's
*smart* / Schwanke-Kaiser *smartest* recompilation (§2): smarter schemes
examine which pieces of an interface a dependent actually uses.  This
builder implements the smart point of that spectrum:

- after compiling a unit, every exported module-level binding gets its
  own hash (a dehydration-based digest of just that binding);
- each dependent records, at compile time, the hashes of exactly the
  bindings it mentions;
- a dependent is recompiled only if one of *those* hashes changed --
  an interface change in a binding it never uses is invisible to it.

Strictly fewer recompilations than cutoff (it can skip a dependent even
when the provider's whole-interface pid changed), at the cost of
per-name bookkeeping.  The paper chose cutoff because it falls out of
pids "for free"; benchmark T2 quantifies the gap.
"""

from __future__ import annotations

from repro.cm.base import BaseBuilder
from repro.cm.depend import DepGraph
from repro.cm.store import BinRecord
from repro.pickle.pickler import Pickler
from repro.pids.crc128 import CRC128
from repro.units.unit import CompiledUnit


class SmartBuilder(BaseBuilder):
    """Per-name smart recompilation."""

    def decide(self, name: str, graph: DepGraph,
               imports: list[CompiledUnit],
               record: BinRecord | None) -> tuple[str, str]:
        if record is None:
            return "compile", "no bin file"
        if not self.source_current(name, record):
            return "compile", "source changed"
        stale = self._stale_use(record, graph, name)
        if stale is not None:
            return "compile", f"used binding changed: {stale}"
        if self.is_live_and_current(name, record):
            return "cached", ""
        return "load", ""

    # -- decision ---------------------------------------------------------

    def _stale_use(self, record: BinRecord, graph: DepGraph,
                   name: str) -> str | None:
        """The first used binding whose provider-side hash changed, or
        None if every used binding is unchanged."""
        used: dict[str, dict[str, str]] = record.extra.get("used", {})
        for provider_name in graph.deps[name]:
            provider_record = self.store.get(provider_name)
            if provider_record is None:
                return f"{provider_name} (no bin)"
            provider_hashes = provider_record.extra.get("member_hashes", {})
            mine = used.get(provider_name)
            if mine is None:
                # The dependency edge is new since this bin was written.
                return f"{provider_name} (new dependency)"
            for key, old_hash in mine.items():
                if provider_hashes.get(key) != old_hash:
                    return f"{provider_name}.{key}"
        return None

    # -- actions ----------------------------------------------------------

    def on_compiled(self, name: str, graph: DepGraph) -> None:
        # Member hashes are computed over the *live* unit; for a unit
        # compiled on a worker the live unit is its rehydration, whose
        # hashes are identical (the dehydration is alpha-converted and
        # line-normalized, so hashes survive the round trip).
        record = self.store.get(name)
        unit = self.units[name]
        with self.meter.span("member-hashes", cat="phase", unit=name) as sp:
            hashes = member_hashes(unit, self.session)
            sp.set(members=len(hashes))
        record.extra["member_hashes"] = hashes
        record.extra["used"] = self._record_uses(name, graph)

    def _record_uses(self, name: str, graph: DepGraph) -> dict:
        used: dict[str, dict[str, str]] = {}
        for provider_name, keys in graph.uses.get(name, {}).items():
            provider_record = self.store.get(provider_name)
            hashes = (provider_record.extra.get("member_hashes", {})
                      if provider_record else {})
            used[provider_name] = {
                key: hashes.get(key, "") for key in sorted(keys)
            }
        return used


def member_hashes(unit: CompiledUnit, session) -> dict[str, str]:
    """Hash each exported module-level binding independently.

    Key format "namespace:name"; value is a CRC-128 over the binding's
    canonical (alpha-converted, line-normalized) dehydration.
    """
    out: dict[str, str] = {}
    env = unit.static_env
    for ns in ("structures", "signatures", "functors"):
        for member_name, obj in getattr(env, ns).items():
            pickler = Pickler(
                local_stamp_ids=unit.owned_stamp_ids,
                extern=session.extern,
                normalize_lines=True,
            )
            data = pickler.run(obj)
            out[f"{ns}:{member_name}"] = CRC128().update(data).hexdigest()
    return out
