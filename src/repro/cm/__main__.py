"""Command-line build driver: ``python -m repro.cm <srcdir>``.

A miniature `sml-build`: compiles every ``*.sml`` unit in a directory
with the cutoff manager, reusing (and refreshing) bin files in
``<srcdir>/.bin``, then type-safely links and optionally prints a
binding.

Options:
    --manager {cutoff,make,smart}   recompilation strategy (default cutoff)
    --print STRUCTURE.NAME          after linking, print this binding
    --no-link                       stop after building
    --stats                         per-phase timing summary
    --analyze                       run the static analyzer after building
                                    (reuses the build's dependency cache)
    --strict                        with --analyze: exit 1 on warnings
    --fsck                          check the bin store's health instead of
                                    building: exit 0 healthy, 1 damaged
    --json                          with --fsck: machine-readable report
    --explain [UNIT]                print the cutoff-explanation ledger:
                                    why each unit (or one unit) was
                                    recompiled or reused
    --explain-diff [UNIT]           diff this build's decisions against
                                    the previous recorded build profile:
                                    what changed since last time and why
    --trace                         print the span-tree trace report and
                                    the critical path after building
    --trace-out FILE                write a trace file after building
                                    (chrome://tracing / ui.perfetto.dev,
                                    or OTLP/JSON with --trace-format)
    --trace-format {chrome,otlp}    trace file format for --trace-out
                                    (default chrome)
    --trace-sample N                without --trace/--trace-out: record
                                    full spans for 1-in-N builds and
                                    cheap counters for the rest
    --priority {name,longest-first} with --schedule ready: order ready
                                    units by name, or longest compile
                                    first using recorded build profiles
                                    (same store bytes either way)
    --retries N                     supervised build: retry transient
                                    worker failures up to N times per unit
    --timeout SECONDS               supervised build: per-attempt wall
                                    clock; hung workers are rescheduled
    --resume                        continue a killed build from the bin
                                    store + journal checkpoint
    --quarantine                    with --fsck: move damaged record files
                                    aside into .bin/quarantine/
    --schedule {wavefront,ready}    with --jobs: wave barriers or
                                    per-unit ready-set dispatch (same
                                    bytes either way)
    --serve                         run as a resident build daemon:
                                    JSON-lines requests on stdin, one
                                    JSON response per line on stdout
                                    (see repro.cm.daemon)
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cm import (
    BinStore,
    CutoffBuilder,
    Project,
    SmartBuilder,
    StoreLockedError,
    TimestampBuilder,
)
from repro.dynamic.values import format_value

MANAGERS = {
    "cutoff": CutoffBuilder,
    "make": TimestampBuilder,
    "smart": SmartBuilder,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cm",
        description="Build a directory of SML compilation units, or a "
                    ".cm group description file.")
    parser.add_argument("srcdir", nargs="?", default=None,
                        help="directory containing *.sml units, or a .cm "
                             "group description file (optional with "
                             "--serve: requests may name their group)")
    parser.add_argument("--manager", choices=sorted(MANAGERS),
                        default="cutoff")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="compile up to N independent units "
                             "concurrently (DAG wavefronts; results are "
                             "byte-identical to a serial build)")
    parser.add_argument("--pool", choices=["process", "thread"],
                        default="process",
                        help="worker pool kind for --jobs > 1 (process "
                             "pools degrade to threads where "
                             "unavailable)")
    parser.add_argument("--print", dest="print_path", metavar="S.NAME",
                        help="print a structure binding after linking")
    parser.add_argument("--no-link", action="store_true")
    parser.add_argument("--stats", action="store_true")
    parser.add_argument("--analyze", action="store_true",
                        help="run the static analyzer over the project "
                             "after building (no extra parse pass)")
    parser.add_argument("--strict", action="store_true",
                        help="with --analyze: exit 1 when the analyzer "
                             "reports warnings or errors")
    parser.add_argument("--fsck", action="store_true",
                        help="check the bin store's health instead of "
                             "building (exit 0 healthy, 1 damaged)")
    parser.add_argument("--json", action="store_true",
                        help="with --fsck: print the health report as "
                             "JSON")
    parser.add_argument("--explain", nargs="?", const="*", default=None,
                        metavar="UNIT",
                        help="print why each unit (or just UNIT) was "
                             "recompiled or reused")
    parser.add_argument("--explain-diff", dest="explain_diff",
                        nargs="?", const="*", default=None,
                        metavar="UNIT",
                        help="diff this build's decisions against the "
                             "previous recorded build profile: which "
                             "units' verdicts or culprit imports "
                             "changed since last time")
    parser.add_argument("--trace", action="store_true",
                        help="print the span-tree trace report and the "
                             "critical path after building")
    parser.add_argument("--trace-out", dest="trace_out", metavar="FILE",
                        help="write a trace file (Chrome trace_event "
                             "JSON embedding the decision ledger and "
                             "critical path, or OTLP with "
                             "--trace-format otlp)")
    parser.add_argument("--trace-format", dest="trace_format",
                        choices=["chrome", "otlp"], default="chrome",
                        help="file format for --trace-out: Chrome "
                             "trace_event JSON (default) or an "
                             "OTLP/JSON ExportTraceServiceRequest "
                             "with span links from recompiled units "
                             "to their culprit imports")
    parser.add_argument("--trace-sample", dest="trace_sample",
                        type=int, default=0, metavar="N",
                        help="sampled always-on tracing: record full "
                             "spans for 1-in-N builds (by profile "
                             "sequence) and cheap counters otherwise; "
                             "ignored when --trace/--trace-out force "
                             "a full tracer")
    parser.add_argument("--priority", choices=["name", "longest-first"],
                        default="name",
                        help="with --schedule ready: offer ready units "
                             "by name order (default) or longest "
                             "compile first, using per-unit times from "
                             "recorded build profiles; store bytes are "
                             "identical either way")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="supervise the build: retry transient "
                             "worker failures up to N times per unit "
                             "(capped exponential backoff); poison "
                             "units skip only their dependents")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="supervise the build: per-attempt wall "
                             "clock; a hung worker is abandoned and "
                             "its unit rescheduled")
    parser.add_argument("--resume", action="store_true",
                        help="continue a previously killed supervised "
                             "build from the bin store and its "
                             "BUILD_JOURNAL.json (completed units are "
                             "not recompiled)")
    parser.add_argument("--quarantine", action="store_true",
                        help="with --fsck: move damaged record files "
                             "aside into .bin/quarantine/ so the next "
                             "load starts clean")
    parser.add_argument("--schedule", choices=["wavefront", "ready"],
                        default="wavefront",
                        help="how --jobs orders compiles: wave barriers "
                             "(default) or per-unit ready-set dispatch; "
                             "store bytes are identical either way")
    parser.add_argument("--serve", action="store_true",
                        help="run as a resident build daemon serving "
                             "JSON-lines requests on stdin (one JSON "
                             "response per line on stdout; ops: build, "
                             "ping, explain, explain-diff, stats, "
                             "shutdown)")
    parser.add_argument("--store-backend", dest="store_backend",
                        choices=["auto", "flat", "sharded", "remote"],
                        default="auto",
                        help="bin store layout: flat directory, "
                             "sharded-by-pid-prefix directories, or a "
                             "remote cache server (needs --store-url); "
                             "auto detects an existing local layout")
    parser.add_argument("--store-url", dest="store_url", metavar="URL",
                        default=None,
                        help="remote store server (rbs://host:port or "
                             "loopback://name); the local .bin "
                             "directory becomes its write-through "
                             "cache")
    args = parser.parse_args(argv)

    if args.serve:
        return _run_serve(args)
    if args.srcdir is None:
        parser.error("srcdir is required unless --serve is given")

    if args.fsck:
        return _run_fsck(args)

    tracer = None
    if args.trace or args.trace_out:
        from repro.obs.tracer import Tracer
        tracer = Tracer()

    if os.path.isfile(args.srcdir) and args.srcdir.endswith(".cm"):
        return _build_group_file(args, tracer)
    if not os.path.isdir(args.srcdir):
        print(f"error: {args.srcdir} is not a directory or .cm file",
              file=sys.stderr)
        return 2

    meter = tracer
    if meter is None and args.trace_sample > 0:
        meter = _sampled_meter(args)

    if meter is None:
        rc, _builder, _report = _build_directory(args, None)
        return rc
    with meter.span("run", cat="build", srcdir=args.srcdir):
        rc, builder, report = _build_directory(args, meter)
    if tracer is not None:
        trace_rc = _emit_trace(args, tracer, builder, report)
        return rc or trace_rc
    return rc


def _sampled_meter(args):
    """The ``--trace-sample N`` meter for this batch build: a full
    tracer when the next profile sequence number lands on the 1-in-N
    sample grid (builds 1, N+1, 2N+1, ...), cheap counters otherwise."""
    from repro.obs.history import BuildHistory
    from repro.obs.sampling import CounterMeter

    history = BuildHistory(os.path.join(args.srcdir, ".bin"))
    if (history.next_seq() - 1) % args.trace_sample == 0:
        from repro.obs.tracer import Tracer
        return Tracer()
    return CounterMeter()


def _store_backend_for(args, bin_dir):
    """The configured store backend for ``bin_dir``, or None when the
    defaults apply (auto-detected local layout, no URL)."""
    from repro.cm.backend import make_backend

    if args.store_backend == "auto" and not args.store_url:
        return None
    return make_backend(args.store_backend, bin_dir, url=args.store_url)


def _build_directory(args, tracer):
    """Build a source directory; returns ``(exit code, builder, report)``
    so trace emission can consult the ledger and dependency graph."""
    from repro.obs.meter import NULL_METER

    meter = tracer if tracer is not None else NULL_METER
    bin_dir = os.path.join(args.srcdir, ".bin")
    backend = _store_backend_for(args, bin_dir)
    if backend is not None:
        store = BinStore.load_directory(bin_dir, meter=meter,
                                        backend=backend)
    else:
        store = (BinStore.load_directory(bin_dir, meter=meter)
                 if os.path.isdir(bin_dir) else BinStore())
    if not store.health.ok:
        damaged = store.health.quarantined()
        print(f"warning: quarantined {len(store.health.corrupt)} damaged "
              f"bin record(s)"
              + (f" ({', '.join(sorted(damaged))})" if damaged else "")
              + "; they will be recompiled", file=sys.stderr)

    project = Project.from_directory(args.srcdir)
    if not len(project):
        print(f"error: no .sml files in {args.srcdir}", file=sys.stderr)
        return 2, None, None
    builder = MANAGERS[args.manager](project, store=store, meter=tracer)

    # Build history: the prior profile is the --explain-diff baseline
    # and feeds --priority longest-first; this build's profile is
    # recorded after a successful store save.
    from repro.obs.history import (
        BuildHistory,
        longest_first_key,
        profile_from_report,
    )
    history = BuildHistory(bin_dir, fs=store.fs)
    prior_profile = history.latest(args.manager)
    offer_key = None
    if args.priority == "longest-first":
        offer_key = longest_first_key(
            history.compile_seconds(args.manager))

    supervised = (args.retries is not None or args.timeout is not None
                  or args.resume)
    try:
        if supervised:
            from repro.cm.supervise import SupervisePolicy
            policy = SupervisePolicy(
                retries=args.retries if args.retries is not None else 2,
                timeout=args.timeout)
            report = builder.build(jobs=max(1, args.jobs),
                                   pool=args.pool, policy=policy,
                                   resume=args.resume,
                                   checkpoint_dir=bin_dir,
                                   schedule=args.schedule,
                                   offer_key=offer_key)
        else:
            report = builder.build(jobs=max(1, args.jobs),
                                   pool=args.pool,
                                   schedule=args.schedule,
                                   offer_key=offer_key)
    except Exception as err:  # ElabError, DependencyError, ParseError...
        print(f"error: {err}", file=sys.stderr)
        return 1, builder, None

    for outcome in report.outcomes:
        print(f"  [{outcome.action:>8}] {outcome.name}"
              + (f"  ({outcome.reason})" if outcome.reason else ""))
    if report.jobs > 1:
        print(f"parallel build: {report.jobs} jobs ({report.pool} pool)")
    print(report.summary())
    if args.explain is not None:
        unit = None if args.explain == "*" else args.explain
        print(builder.ledger.render_text(unit))
    if args.explain_diff is not None:
        from repro.obs.diff import diff_against_profile
        unit = None if args.explain_diff == "*" else args.explain_diff
        diff = diff_against_profile(builder.ledger, prior_profile)
        print(diff.render_text(unit))
    try:
        store.save_directory(bin_dir)  # self-instruments via store.meter
    except StoreLockedError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1, builder, report
    history.record(profile_from_report(
        report, ledger=builder.ledger,
        export_pids={name: unit.export_pid
                     for name, unit in builder.units.items()},
        group=args.srcdir, manager=args.manager))

    if report.failed or report.skipped:
        # A supervised build finished what it could; the casualties
        # are in the ledger (--explain) and the exit code says so.
        print(f"build incomplete: {len(report.failed)} unit(s) failed, "
              f"{len(report.skipped)} skipped (see --explain)",
              file=sys.stderr)
        return 1, builder, report

    if args.stats:
        times = [(o.name, o.times) for o in report.outcomes]
        total = sum(t.compile_total() + t.overhead_total()
                    for _n, t in times)
        print(f"total build time: {total:.3f}s "
              f"(compile {sum(t.compile_total() for _n, t in times):.3f}s, "
              f"hash+pickle {sum(t.overhead_total() for _n, t in times):.3f}s)")

    if args.analyze:
        rc = _run_analysis(project, builder.last_graph,
                           builder._dep_cache, args.strict)
        if rc:
            return rc, builder, report

    if args.no_link:
        return 0, builder, report

    try:
        exports = builder.link()
    except Exception as err:
        print(f"link error: {err}", file=sys.stderr)
        return 1, builder, report
    print(f"linked {len(exports)} units")

    if args.print_path:
        try:
            struct_name, member = args.print_path.split(".", 1)
        except ValueError:
            print("error: --print takes STRUCTURE.NAME", file=sys.stderr)
            return 2, builder, report
        for export in exports.values():
            struct = export.structures.get(struct_name)
            if struct is not None and member in struct.values:
                print(f"{args.print_path} = "
                      f"{format_value(struct.values[member])}")
                return 0, builder, report
        print(f"error: {args.print_path} not found", file=sys.stderr)
        return 1, builder, report
    return 0, builder, report


def _emit_trace(args, tracer, builder, report) -> int:
    """Render/write trace artifacts after the run span has closed."""
    import json as json_mod

    from repro.obs.critical import critical_path, phase_rollup
    from repro.cm.report import PHASES

    graph = getattr(builder, "last_graph", None) if builder else None
    chain: list[str] = []
    chain_seconds = 0.0
    if report is not None and graph is not None:
        durations = {
            o.name: sum(getattr(o.times, p) for p in PHASES)
            for o in report.outcomes
        }
        chain, chain_seconds = critical_path(graph.order, graph.deps,
                                             durations)

    if args.trace:
        print(tracer.render_tree())
        if chain:
            print(f"critical path ({chain_seconds * 1e3:.1f} ms): "
                  + " -> ".join(chain))

    if args.trace_out:
        if getattr(args, "trace_format", "chrome") == "otlp":
            payload = _otlp_payload(args, tracer, builder)
        else:
            extra = {
                "wallSeconds": round(tracer.wall(), 6),
                "criticalPath": {
                    "chain": chain,
                    "seconds": round(chain_seconds, 6),
                },
                "phaseRollup": phase_rollup(tracer),
            }
            if report is not None:
                extra["phaseTotals"] = report.phase_totals()
                extra["buildStats"] = report.stats()
            if builder is not None and builder.ledger is not None:
                extra["buildDecisions"] = builder.ledger.to_json()
            payload = tracer.to_chrome_trace(extra)
        try:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json_mod.dump(payload, fh, indent=1, sort_keys=True)
                fh.write("\n")
        except OSError as err:
            print(f"error: cannot write {args.trace_out}: {err}",
                  file=sys.stderr)
            return 1
        print(f"trace written to {args.trace_out}")
    return 0


def _otlp_payload(args, tracer, builder) -> dict:
    """The OTLP/JSON export for ``--trace-format otlp``: spans with
    resource attributes identifying the build, plus span links from
    each recompiled unit to its culprit imports."""
    import time

    from repro.obs.export import to_otlp

    resource = {
        "build.group": args.srcdir,
        "build.manager": args.manager,
        "build.schedule": args.schedule,
        "build.jobs": max(1, args.jobs),
    }
    ledger = builder.ledger if builder is not None else None
    base = max(0, time.time_ns() - int(tracer.wall() * 1e9))
    return to_otlp(tracer, resource=resource, ledger=ledger,
                   base_unix_nano=base)


def _run_serve(args) -> int:
    """Run the resident build daemon over stdin/stdout (see
    :mod:`repro.cm.daemon` for the wire protocol)."""
    from repro.cm.daemon import BuildDaemon, serve

    daemon = BuildDaemon(manager=args.manager, jobs=max(1, args.jobs),
                         pool=args.pool, schedule="ready",
                         store_backend=args.store_backend,
                         store_url=args.store_url,
                         priority=args.priority,
                         trace_sample=max(0, args.trace_sample))
    default_group = args.srcdir if args.srcdir \
        and os.path.isdir(args.srcdir) else None
    return serve(daemon, sys.stdin, sys.stdout,
                 default_group=default_group)


def _run_fsck(args) -> int:
    """Check the bin store's health; exit 0 healthy, 1 damaged.

    Never raises: any unexpected failure is itself reported as a
    diagnostic with a non-zero exit."""
    import json as json_mod

    try:
        target = args.srcdir
        if os.path.basename(os.path.normpath(target)) == ".bin":
            bin_dir = target
        else:
            bin_dir = os.path.join(target, ".bin")
        # Backend-aware: a sharded layout is detected from the
        # directory, and --store-url checks the remote store (damage is
        # fetched, classified with the same taxonomy, and -- with
        # --quarantine -- healed on the server).
        backend = _store_backend_for(args, bin_dir)
        report = BinStore.fsck(bin_dir, quarantine=args.quarantine,
                               backend=backend)
        if args.json:
            print(json_mod.dumps(report.to_json(), indent=1,
                                 sort_keys=True))
        else:
            print(report.render_text())
        return 0 if report.ok else 1
    except Exception as err:
        print(f"fsck error: {type(err).__name__}: {err}", file=sys.stderr)
        return 1


def _run_analysis(project, graph, cache, strict: bool) -> int:
    """Run the static analyzer after a build, reusing the builder's
    dependency graph and cache (no extra parse pass)."""
    from repro.analysis import Severity, analyze_project, render_text

    result = analyze_project(project, graph=graph, cache=cache)
    print(render_text(result.diagnostics, result.cascade))
    if result.failed:
        return 1
    if strict and result.gate(Severity.WARNING):
        return 1
    return 0


def _build_group_file(args, tracer=None) -> int:
    from repro.cm.descfile import DescFileError, load_group_file
    from repro.cm.group import GroupBuilder

    from contextlib import nullcontext

    run_span = (tracer.span("run", cat="build", group=args.srcdir)
                if tracer is not None else nullcontext())
    with run_span:
        try:
            group, project = load_group_file(args.srcdir)
        except DescFileError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        gb = GroupBuilder(project, builder_class=MANAGERS[args.manager],
                          meter=tracer)
        try:
            reports = gb.build(group)
        except Exception as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    for group_name, report in reports.items():
        print(f"group {group_name}: {report.summary()}")
    if args.explain is not None and gb.ledger is not None:
        unit = None if args.explain == "*" else args.explain
        print(gb.ledger.render_text(unit))
    if tracer is not None:
        rc = _emit_trace(args, tracer, gb._builder, None)
        if rc:
            return rc
    if args.analyze:
        rc = _run_analysis(project, None, None, args.strict)
        if rc:
            return rc
    if args.no_link:
        return 0
    try:
        exports = gb.link()
    except Exception as err:
        print(f"link error: {err}", file=sys.stderr)
        return 1
    print(f"linked {len(exports)} units")
    if args.print_path:
        try:
            struct_name, member = args.print_path.split(".", 1)
        except ValueError:
            print("error: --print takes STRUCTURE.NAME", file=sys.stderr)
            return 2
        for export in exports.values():
            struct = export.structures.get(struct_name)
            if struct is not None and member in struct.values:
                print(f"{args.print_path} = "
                      f"{format_value(struct.values[member])}")
                return 0
        print(f"error: {args.print_path} not found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
