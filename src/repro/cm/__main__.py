"""Command-line build driver: ``python -m repro.cm <srcdir>``.

A miniature `sml-build`: compiles every ``*.sml`` unit in a directory
with the cutoff manager, reusing (and refreshing) bin files in
``<srcdir>/.bin``, then type-safely links and optionally prints a
binding.

Options:
    --manager {cutoff,make,smart}   recompilation strategy (default cutoff)
    --print STRUCTURE.NAME          after linking, print this binding
    --no-link                       stop after building
    --stats                         per-phase timing summary
    --analyze                       run the static analyzer after building
                                    (reuses the build's dependency cache)
    --strict                        with --analyze: exit 1 on warnings
    --fsck                          check the bin store's health instead of
                                    building: exit 0 healthy, 1 damaged
    --json                          with --fsck: machine-readable report
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cm import (
    BinStore,
    CutoffBuilder,
    Project,
    SmartBuilder,
    StoreLockedError,
    TimestampBuilder,
)
from repro.dynamic.values import format_value

MANAGERS = {
    "cutoff": CutoffBuilder,
    "make": TimestampBuilder,
    "smart": SmartBuilder,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cm",
        description="Build a directory of SML compilation units, or a "
                    ".cm group description file.")
    parser.add_argument("srcdir",
                        help="directory containing *.sml units, or a .cm "
                             "group description file")
    parser.add_argument("--manager", choices=sorted(MANAGERS),
                        default="cutoff")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="compile up to N independent units "
                             "concurrently (DAG wavefronts; results are "
                             "byte-identical to a serial build)")
    parser.add_argument("--pool", choices=["process", "thread"],
                        default="process",
                        help="worker pool kind for --jobs > 1 (process "
                             "pools degrade to threads where "
                             "unavailable)")
    parser.add_argument("--print", dest="print_path", metavar="S.NAME",
                        help="print a structure binding after linking")
    parser.add_argument("--no-link", action="store_true")
    parser.add_argument("--stats", action="store_true")
    parser.add_argument("--analyze", action="store_true",
                        help="run the static analyzer over the project "
                             "after building (no extra parse pass)")
    parser.add_argument("--strict", action="store_true",
                        help="with --analyze: exit 1 when the analyzer "
                             "reports warnings or errors")
    parser.add_argument("--fsck", action="store_true",
                        help="check the bin store's health instead of "
                             "building (exit 0 healthy, 1 damaged)")
    parser.add_argument("--json", action="store_true",
                        help="with --fsck: print the health report as "
                             "JSON")
    args = parser.parse_args(argv)

    if args.fsck:
        return _run_fsck(args)

    if os.path.isfile(args.srcdir) and args.srcdir.endswith(".cm"):
        return _build_group_file(args)
    if not os.path.isdir(args.srcdir):
        print(f"error: {args.srcdir} is not a directory or .cm file",
              file=sys.stderr)
        return 2

    bin_dir = os.path.join(args.srcdir, ".bin")
    store = (BinStore.load_directory(bin_dir)
             if os.path.isdir(bin_dir) else BinStore())
    if not store.health.ok:
        damaged = store.health.quarantined()
        print(f"warning: quarantined {len(store.health.corrupt)} damaged "
              f"bin record(s)"
              + (f" ({', '.join(sorted(damaged))})" if damaged else "")
              + "; they will be recompiled", file=sys.stderr)

    project = Project.from_directory(args.srcdir)
    if not len(project):
        print(f"error: no .sml files in {args.srcdir}", file=sys.stderr)
        return 2
    builder = MANAGERS[args.manager](project, store=store)

    try:
        report = builder.build(jobs=max(1, args.jobs), pool=args.pool)
    except Exception as err:  # ElabError, DependencyError, ParseError...
        print(f"error: {err}", file=sys.stderr)
        return 1

    for outcome in report.outcomes:
        print(f"  [{outcome.action:>8}] {outcome.name}"
              + (f"  ({outcome.reason})" if outcome.reason else ""))
    if report.jobs > 1:
        print(f"parallel build: {report.jobs} jobs ({report.pool} pool)")
    print(report.summary())
    try:
        store.save_directory(bin_dir)
    except StoreLockedError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    if args.stats:
        times = [(o.name, o.times) for o in report.outcomes]
        total = sum(t.compile_total() + t.overhead_total()
                    for _n, t in times)
        print(f"total build time: {total:.3f}s "
              f"(compile {sum(t.compile_total() for _n, t in times):.3f}s, "
              f"hash+pickle {sum(t.overhead_total() for _n, t in times):.3f}s)")

    if args.analyze:
        rc = _run_analysis(project, builder.last_graph,
                           builder._dep_cache, args.strict)
        if rc:
            return rc

    if args.no_link:
        return 0

    try:
        exports = builder.link()
    except Exception as err:
        print(f"link error: {err}", file=sys.stderr)
        return 1
    print(f"linked {len(exports)} units")

    if args.print_path:
        try:
            struct_name, member = args.print_path.split(".", 1)
        except ValueError:
            print("error: --print takes STRUCTURE.NAME", file=sys.stderr)
            return 2
        for export in exports.values():
            struct = export.structures.get(struct_name)
            if struct is not None and member in struct.values:
                print(f"{args.print_path} = "
                      f"{format_value(struct.values[member])}")
                return 0
        print(f"error: {args.print_path} not found", file=sys.stderr)
        return 1
    return 0


def _run_fsck(args) -> int:
    """Check the bin store's health; exit 0 healthy, 1 damaged.

    Never raises: any unexpected failure is itself reported as a
    diagnostic with a non-zero exit."""
    import json as json_mod

    try:
        target = args.srcdir
        if os.path.basename(os.path.normpath(target)) == ".bin":
            bin_dir = target
        else:
            bin_dir = os.path.join(target, ".bin")
        report = BinStore.fsck(bin_dir)
        if args.json:
            print(json_mod.dumps(report.to_json(), indent=1))
        else:
            print(report.render_text())
        return 0 if report.ok else 1
    except Exception as err:
        print(f"fsck error: {type(err).__name__}: {err}", file=sys.stderr)
        return 1


def _run_analysis(project, graph, cache, strict: bool) -> int:
    """Run the static analyzer after a build, reusing the builder's
    dependency graph and cache (no extra parse pass)."""
    from repro.analysis import Severity, analyze_project, render_text

    result = analyze_project(project, graph=graph, cache=cache)
    print(render_text(result.diagnostics, result.cascade))
    if result.failed:
        return 1
    if strict and result.gate(Severity.WARNING):
        return 1
    return 0


def _build_group_file(args) -> int:
    from repro.cm.descfile import DescFileError, load_group_file
    from repro.cm.group import GroupBuilder

    try:
        group, project = load_group_file(args.srcdir)
    except DescFileError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    gb = GroupBuilder(project, builder_class=MANAGERS[args.manager])
    try:
        reports = gb.build(group)
    except Exception as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    for group_name, report in reports.items():
        print(f"group {group_name}: {report.summary()}")
    if args.analyze:
        rc = _run_analysis(project, None, None, args.strict)
        if rc:
            return rc
    if args.no_link:
        return 0
    try:
        exports = gb.link()
    except Exception as err:
        print(f"link error: {err}", file=sys.stderr)
        return 1
    print(f"linked {len(exports)} units")
    if args.print_path:
        try:
            struct_name, member = args.print_path.split(".", 1)
        except ValueError:
            print("error: --print takes STRUCTURE.NAME", file=sys.stderr)
            return 2
        for export in exports.values():
            struct = export.structures.get(struct_name)
            if struct is not None and member in struct.values:
                print(f"{args.print_path} = "
                      f"{format_value(struct.values[member])}")
                return 0
        print(f"error: {args.print_path} not found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
