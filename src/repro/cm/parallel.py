"""Wavefront-parallel builds.

The cutoff model makes units independent once the pids of their imports
are fixed (§5): a unit's compilation reads only its source text and the
statenvs of the units it imports.  Every *antichain* of the dependency
DAG can therefore compile concurrently, and the build becomes a sequence
of **wavefronts** -- wave *k* holds the units whose longest import chain
has length *k*, so all of a unit's imports live in strictly earlier
waves.

Determinism proof sketch (why ``--jobs N`` is byte-identical to serial):

1. A worker compiles a unit *hermetically*: it builds a fresh session,
   rehydrates the unit's transitive imports from their dehydrated
   payloads (in dependency order), and runs the same
   :func:`~repro.units.pipeline.compile_unit` the serial builder runs.
2. Export pids are *intrinsic*: stamps are alpha-converted and extern
   references are named by ``(pid, export index)``, so neither the pid
   nor the payload bytes depend on session history, process identity,
   or the order in which other units were compiled.
3. The parent applies each wave's results in sorted unit order --
   rehydrating the worker's payload into its own session, writing the
   same :class:`~repro.cm.store.BinRecord` a serial compile would write.

Hence statenv, store contents and export pids are equal for every jobs
count and every scheduling interleaving; the differential determinism
matrix in ``tests/cm/test_parallel_determinism.py`` checks this
byte-for-byte, under fault injection.

Scheduling machinery: :func:`wavefronts` partitions a
:class:`~repro.cm.depend.DepGraph` into wave barriers;
:class:`ReadySet` is the barrier-free alternative -- a unit becomes
dispatchable the moment its last in-graph import completes, so a slow
unit stalls only its own dependent cone, not the whole wave.
:func:`parallel_build` drives any :class:`~repro.cm.base.BaseBuilder`
(its ``decide`` seam supplies the recompilation policy) over a
:class:`ProcessPoolExecutor`, falling back to threads where process
pools are unavailable, under either schedule (``schedule="wavefront"``
or ``"ready"`` -- same bytes either way, because record bytes are
intrinsic per unit and providers always complete before dependents).
:class:`WorkerFaults` is the deterministic fault seam used by the
crash-mid-wave tests.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro.cm.depend import DepGraph
from repro.cm.report import BuildReport, UnitOutcome
from repro.obs.meter import NULL_METER
from repro.units.pipeline import compile_unit, load_unit
from repro.units.unit import PhaseTimes


class ParallelBuildError(Exception):
    """A worker failed compiling a unit.

    Worker exceptions are shipped back as (type name, message) rather
    than pickled exception objects, so a compile error on a process pool
    surfaces identically to one on a thread pool.  ``name`` and ``wave``
    identify the failing unit and the wavefront it was dispatched in
    (``wave`` is -1 when unknown), so thread- and process-pool failures
    alike point at the exact task that died.
    """

    def __init__(self, name: str, exc_type: str, message: str,
                 wave: int = -1):
        where = f"{name} (wave {wave})" if wave >= 0 else name
        super().__init__(f"{where}: {exc_type}: {message}")
        self.name = name
        self.exc_type = exc_type
        self.message = message
        self.wave = wave


@dataclass(frozen=True)
class WorkerFaults:
    """Deterministic fault plan for parallel builds (test seam).

    A worker compiling a unit in ``crash_units`` dies with
    :class:`~repro.cm.faults.InjectedCrash`; one compiling a unit in
    ``slow_units`` stalls for ``delay`` seconds first (slow-IO shape:
    the work completes late, it does not fail).

    Faults are *attempt-aware* so the supervisor's retries can be
    exercised deterministically: a crash/stall fires only while the
    task's attempt number is below ``crash_attempts``/``slow_attempts``
    (the defaults reproduce the original always-fire behaviour under
    the unsupervised single-attempt build).  Units in ``poison_units``
    crash on *every* attempt -- the retry-budget-exhausted shape.  The
    attempt number rides inside the :class:`CompileTask` itself, so the
    plan works unchanged on process pools (no shared mutable state).
    """

    crash_units: frozenset = frozenset()
    slow_units: frozenset = frozenset()
    delay: float = 0.0
    crash_attempts: int = 1
    slow_attempts: int = 1
    poison_units: frozenset = frozenset()


# -- wavefront schedule --------------------------------------------------


def wavefronts(graph: DepGraph) -> list[list[str]]:
    """Partition ``graph.order`` into antichains.

    ``wave(u) = 1 + max(wave(d) for in-graph imports d)``; imports
    outside the graph (stable-library units, already live) do not gate.
    Each wave is sorted, every unit's imports land in strictly earlier
    waves, and every unit in wave k > 0 has an import in wave k-1 (the
    partition is tight: no unit could run earlier).
    """
    index: dict[str, int] = {}
    waves: list[list[str]] = []
    for name in graph.order:
        wave = 0
        for dep in graph.deps.get(name, ()):
            if dep in index:
                wave = max(wave, index[dep] + 1)
        index[name] = wave
        if wave == len(waves):
            waves.append([])
        waves[wave].append(name)
    return [sorted(wave) for wave in waves]


# -- ready-set schedule --------------------------------------------------


class ReadySet:
    """Barrier-free scheduling state over a :class:`DepGraph`.

    Tracks, per unit, how many of its *in-graph* imports have not yet
    completed (imports outside the graph -- stable-library units,
    already live -- do not gate, matching :func:`wavefronts`).  A unit
    with zero outstanding imports is *ready*; :meth:`take` drains the
    ready units in sorted name order (each offered exactly once) and
    :meth:`complete` retires a finished unit, releasing any dependents
    it was the last gate for.

    The dispatch sequence this induces is always a linear extension of
    the graph: a unit is offered only after ``complete`` was called for
    every in-graph import.  Completion means "this unit's fate is
    settled" -- compiled, loaded, cached, failed or skipped all count,
    which is how the supervisor propagates poison through the ready set
    without deadlocking.

    ``key`` overrides the offer order *within* the ready units (e.g.
    :func:`repro.obs.history.longest_first_key`: longest prior compile
    time first).  The order is pure scheduling: any offer order yields
    a linear extension, and record bytes are intrinsic per unit, so
    every key produces byte-identical stores
    (``tests/property/test_priority.py`` holds it to that).
    """

    def __init__(self, graph: DepGraph, key=None):
        self._graph = graph
        self._key = key
        in_graph = set(graph.order)
        #: unit -> number of in-graph imports not yet completed.
        self._waiting: dict[str, int] = {
            name: sum(1 for dep in graph.deps.get(name, ())
                      if dep in in_graph)
            for name in graph.order
        }
        self._ready: list[str] = self._sorted(
            name for name, gates in self._waiting.items() if gates == 0)
        self._offered: set[str] = set()
        self._done: set[str] = set()

    def _sorted(self, names) -> list[str]:
        return sorted(names, key=self._key) if self._key is not None \
            else sorted(names)

    def take(self) -> list[str]:
        """Drain the currently ready units (offer order; offered
        once)."""
        out, self._ready = self._ready, []
        self._offered.update(out)
        return out

    def complete(self, name: str) -> list[str]:
        """Retire ``name``; returns the units this made ready (offer
        order).  The newly ready units also join the next
        :meth:`take`."""
        if name in self._done:
            return []
        self._done.add(name)
        released = []
        for dependent in self._graph.dependents.get(name, ()):
            gates = self._waiting.get(dependent)
            if gates is None:
                continue
            self._waiting[dependent] = gates - 1
            if gates - 1 == 0:
                released.append(dependent)
        released = self._sorted(released)
        self._ready = self._sorted(self._ready + released)
        return released

    def has_ready(self) -> bool:
        return bool(self._ready)

    def outstanding(self) -> int:
        """Units not yet completed."""
        return len(self._waiting) - len(self._done)

    def all_done(self) -> bool:
        return not self.outstanding()


# -- the worker ----------------------------------------------------------
#
# Workers are hermetic: each carries its own Session and a cache of
# rehydrated units keyed by (name, pid), so repeated waves do not re-pay
# rehydration.  State is thread-local, which covers both pool kinds: a
# process-pool worker is a single thread, a thread-pool worker must not
# share a session (stamp registries are not thread-safe) with siblings.


@dataclass(frozen=True)
class ClosureUnit:
    """One transitive import shipped to a worker: enough to rehydrate."""

    name: str
    pid: str
    deps: tuple[str, ...]  # direct import names, dependency order
    payload: bytes
    source_digest: str


@dataclass(frozen=True)
class CompileTask:
    name: str
    source: str
    imports: tuple[str, ...]  # direct import names, dependency order
    closure: tuple[ClosureUnit, ...]  # transitive imports, topo order
    faults: WorkerFaults | None = None
    #: Which attempt this dispatch is (0 = first try); consulted by the
    #: attempt-aware fault plan, echoed into the result for staleness
    #: checks by the supervisor.
    attempt: int = 0


@dataclass
class CompileResult:
    name: str
    export_pid: str = ""
    payload: bytes = b""
    source_digest: str = ""
    times: PhaseTimes = field(default_factory=PhaseTimes)
    #: Per-binding slice pids computed in the worker's hash phase
    #: (intrinsic, so identical to what a serial compile produces).
    binding_pids: dict = field(default_factory=dict)
    error: tuple[str, str] | None = None  # (exception type, message)
    #: Worker-side occupancy data: when the task ran (perf_counter
    #: domain, comparable across processes on this host) and on which
    #: worker ("pid/thread-ident").
    started: float = 0.0
    ended: float = 0.0
    worker: str = ""
    #: Echo of the task's attempt number (supervisor staleness checks).
    attempt: int = 0


_tls = threading.local()


def _worker_state():
    if getattr(_tls, "session", None) is None:
        from repro.units.session import Session

        _tls.session = Session()
        _tls.units = {}
    return _tls.session, _tls.units


def compile_task(task: CompileTask) -> CompileResult:
    """Compile one unit in a hermetic worker session.

    Never raises: failures (including injected ones) come back as
    ``result.error`` so a process pool and a thread pool report them
    the same way.
    """
    started = time.perf_counter()
    worker = f"w{os.getpid()}/{threading.get_ident()}"
    try:
        if task.faults is not None:
            plan = task.faults
            if (task.name in plan.slow_units
                    and task.attempt < plan.slow_attempts):
                time.sleep(plan.delay)
            if task.name in plan.poison_units or (
                    task.name in plan.crash_units
                    and task.attempt < plan.crash_attempts):
                from repro.cm.faults import InjectedCrash

                raise InjectedCrash(
                    f"worker killed compiling {task.name} "
                    f"(attempt {task.attempt})")
        session, cache = _worker_state()
        live = {}
        for dep in task.closure:
            unit = cache.get((dep.name, dep.pid))
            if unit is None:
                unit = load_unit(dep.name, dep.pid,
                                 [live[d] for d in dep.deps],
                                 dep.payload, session, dep.source_digest)
                cache[(dep.name, dep.pid)] = unit
            live[dep.name] = unit
        imports = [live[d] for d in task.imports]
        unit = compile_unit(task.name, task.source, imports, session)
        return CompileResult(task.name, unit.export_pid, unit.payload,
                             unit.source_digest, unit.times,
                             binding_pids=unit.binding_pids,
                             started=started,
                             ended=time.perf_counter(), worker=worker,
                             attempt=task.attempt)
    except Exception as err:
        return CompileResult(task.name,
                             error=(type(err).__name__, str(err)),
                             started=started,
                             ended=time.perf_counter(), worker=worker,
                             attempt=task.attempt)


def _probe() -> int:
    return 42


# -- executors -----------------------------------------------------------


def make_executor(jobs: int, pool: str = "process"):
    """An executor for ``jobs`` workers, or ``(None, "inline")``.

    ``pool`` is ``"process"`` (the default; probed, because process
    pools fail on platforms without working semaphores or fork/spawn),
    ``"thread"``, or ``"inline"`` (run tasks synchronously in the
    caller -- the jobs=1 path through the worker code).  Process-pool
    failure degrades to threads, never to an error.
    """
    if pool == "inline" or jobs <= 1:
        return None, "inline"
    if pool == "process":
        executor = None
        try:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(max_workers=jobs)
            executor.submit(_probe).result(timeout=60)
            return executor, "process"
        except Exception:
            if executor is not None:
                # Don't leak the broken pool's workers when degrading.
                executor.shutdown(wait=False, cancel_futures=True)
            pool = "thread"
    if pool == "thread":
        return ThreadPoolExecutor(max_workers=jobs), "thread"
    raise ValueError(f"unknown pool kind {pool!r}")


# -- the parallel build loop ----------------------------------------------


def parallel_build(builder, jobs: int = 2, pool: str = "process",
                   faults: WorkerFaults | None = None,
                   schedule: str = "wavefront",
                   offer_key=None) -> BuildReport:
    """Bring ``builder``'s project up to date on a worker pool.

    ``schedule="wavefront"`` (the default) runs wave barriers: per
    wave, ask the builder's ``decide`` seam what each unit needs
    (cached / load / compile), rehydrate loads in the parent (cheap),
    dispatch compiles to the pool, then apply results in sorted unit
    order.  ``schedule="ready"`` drops the barrier: each unit is
    decided and dispatched the moment its last in-graph import lands,
    and results are applied as they complete.  Both leave a store
    byte-identical to a serial build's regardless of jobs count or
    completion order -- record bytes are intrinsic per unit, a unit's
    providers always complete before it is decided, and the on-disk
    layout (one file pair per unit plus a sorted manifest) does not
    depend on application order.

    ``offer_key`` (ready schedule only) reorders the ready set's
    offers -- e.g. longest-prior-compile-first from a build profile
    (:func:`repro.obs.history.longest_first_key`); None keeps sorted
    name order.  Purely a scheduling hint: store bytes are identical
    for every key.

    A worker failure raises :class:`ParallelBuildError` after every
    already-landed result was fully applied; the in-memory store then
    holds exactly a valid prefix of the build, and saving it degrades
    to the store's ordinary crash-safety guarantees.
    """
    if schedule not in ("wavefront", "ready"):
        raise ValueError(f"unknown schedule {schedule!r} "
                         f"(want 'wavefront' or 'ready')")
    meter = getattr(builder, "meter", NULL_METER)
    t0 = time.perf_counter()
    report = BuildReport(jobs=jobs, schedule=schedule)
    with meter.span("build", cat="build",
                    manager=type(builder).__name__, jobs=jobs,
                    schedule=schedule) as bsp:
        builder._begin_build()
        builder._load_pending_stables(report)
        with meter.span("analyze", cat="build"):
            graph = builder.analyze()
        executor, using = make_executor(jobs, pool)
        report.pool = using
        bsp.set(pool=using, units=len(graph.order))
        try:
            if schedule == "ready":
                _run_ready(builder, graph, executor, faults, report,
                           meter, offer_key=offer_key)
            else:
                for wave_index, wave in enumerate(wavefronts(graph)):
                    with meter.span("wave", cat="wave", index=wave_index,
                                    size=len(wave)) as wsp:
                        _run_wave(builder, graph, wave, wave_index,
                                  executor, faults, report, meter, wsp)
            report.wall_seconds = time.perf_counter() - t0
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
    builder._finish_report(report)
    return report


def _run_wave(builder, graph: DepGraph, wave: list[str], wave_index: int,
              executor, faults: WorkerFaults | None, report: BuildReport,
              meter, wsp) -> None:
    """Decide, dispatch and apply one wavefront."""
    pending: list[tuple[str, str]] = []
    for name in wave:
        report.dispatch_order.append(name)
        record = builder.store.get(name)
        imports = [builder.units[d] for d in graph.deps[name]]
        action, reason = builder.decide(name, graph, imports, record)
        builder.explain(name, action, reason, record, imports)
        if action == "cached":
            report.add(UnitOutcome(name, "cached", "up to date"))
        elif action == "load":
            outcome = builder.load(name, record, imports)
            if outcome.action == "compiled":
                # Unreadable payload degraded to a recompile.
                builder.explain(name, "compile", outcome.reason, None,
                                imports)
                builder.on_compiled(name, graph)
            report.add(outcome)
        else:
            pending.append((name, reason))
    wsp.set(dispatched=len(pending))
    if not pending:
        return
    results: dict[str, CompileResult] = {}
    if executor is None:
        for name, _reason in pending:
            results[name] = compile_task(
                _make_task(builder, graph, name, faults))
    else:
        futures = {}
        try:
            for name, _reason in pending:
                if meter.enabled:
                    meter.event("dispatch", cat="sched", unit=name,
                                wave=wave_index)
                futures[name] = executor.submit(
                    compile_task,
                    _make_task(builder, graph, name, faults))
            for name, future in futures.items():
                results[name] = future.result()
        except BaseException:
            # A submit or collection failure must not leak in-flight
            # tasks: cancel everything still queued before unwinding
            # (parallel_build's ``finally`` then joins the workers).
            executor.shutdown(wait=False, cancel_futures=True)
            raise
    for name, reason in pending:  # wave is sorted: deterministic
        result = results[name]
        if meter.enabled and result.worker:
            # Occupancy: when and where the worker actually ran, on
            # its own track (perf_counter is host-wide on this
            # platform, so process-pool times line up too).
            meter.complete_span("worker-compile", result.started,
                                result.ended, cat="worker",
                                track=result.worker, unit=name,
                                wave=wave_index)
        if result.error is not None:
            if executor is not None:
                # The wave is aborting: cancel any queued siblings so
                # a failed wave cannot leak orphaned in-flight tasks.
                executor.shutdown(wait=False, cancel_futures=True)
            raise ParallelBuildError(name, *result.error,
                                     wave=wave_index)
        with meter.span("apply", cat="unit", unit=name):
            report.add(_apply_result(builder, graph, name, reason,
                                     result))


def _run_ready(builder, graph: DepGraph, executor,
               faults: WorkerFaults | None, report: BuildReport,
               meter, offer_key=None) -> None:
    """Per-unit ready-set dispatch: decide each unit the moment its
    last in-graph import completes, apply worker results as they land.

    Landed results are applied under the landing loop, in sorted name
    order within each completion batch -- the order does not matter for
    store bytes (intrinsic pids, per-unit file pairs, sorted manifest)
    but keeping it sorted makes traces reproducible for a fixed
    completion pattern.
    """
    ready = ReadySet(graph, key=offer_key)
    active: dict[str, object] = {}  # name -> future
    reasons: dict[str, str] = {}

    def land(name: str, result: CompileResult) -> None:
        if meter.enabled and result.worker:
            meter.complete_span("worker-compile", result.started,
                                result.ended, cat="worker",
                                track=result.worker, unit=name)
        if result.error is not None:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            raise ParallelBuildError(name, *result.error)
        with meter.span("apply", cat="unit", unit=name):
            report.add(_apply_result(builder, graph, name,
                                     reasons.pop(name, ""), result))
        ready.complete(name)

    while True:
        for name in ready.take():
            report.dispatch_order.append(name)
            record = builder.store.get(name)
            imports = [builder.units[d] for d in graph.deps[name]]
            action, reason = builder.decide(name, graph, imports, record)
            builder.explain(name, action, reason, record, imports)
            if action == "cached":
                report.add(UnitOutcome(name, "cached", "up to date"))
                ready.complete(name)
            elif action == "load":
                outcome = builder.load(name, record, imports)
                if outcome.action == "compiled":
                    # Unreadable payload degraded to a recompile.
                    builder.explain(name, "compile", outcome.reason,
                                    None, imports)
                    builder.on_compiled(name, graph)
                report.add(outcome)
                ready.complete(name)
            else:
                if meter.enabled:
                    meter.event("dispatch", cat="sched", unit=name,
                                seq=len(report.dispatch_order))
                reasons[name] = reason
                if executor is None:
                    land(name, compile_task(
                        _make_task(builder, graph, name, faults)))
                else:
                    try:
                        active[name] = executor.submit(
                            compile_task,
                            _make_task(builder, graph, name, faults))
                    except BaseException:
                        executor.shutdown(wait=False,
                                          cancel_futures=True)
                        raise
        if ready.has_ready():
            continue  # completions above released more units
        if not active:
            break
        finished, _ = wait(active.values(),
                           return_when=FIRST_COMPLETED)
        for name in sorted(n for n, f in active.items()
                           if f in finished):
            future = active.pop(name)
            try:
                result = future.result()
            except BaseException:
                executor.shutdown(wait=False, cancel_futures=True)
                raise
            land(name, result)


def _make_task(builder, graph: DepGraph, name: str,
               faults: WorkerFaults | None,
               attempt: int = 0) -> CompileTask:
    """Package one unit's compile: its source plus the dehydrated
    transitive import closure (stable-library units included)."""
    closure_names = _import_closure(builder, graph.deps[name])
    closure = tuple(
        ClosureUnit(
            name=dep,
            pid=builder.units[dep].export_pid,
            deps=tuple(n for n, _pid in builder.units[dep].imports),
            payload=builder.units[dep].payload,
            source_digest=builder.units[dep].source_digest,
        )
        for dep in closure_names
    )
    return CompileTask(name=name, source=builder.project.source(name),
                       imports=tuple(graph.deps[name]), closure=closure,
                       faults=faults, attempt=attempt)


def _import_closure(builder, roots: list[str]) -> list[str]:
    """Transitive imports of ``roots`` in dependency order (imports
    before importers), walking the live units' recorded import lists --
    which, unlike the project graph, also cover stable-library units."""
    order: list[str] = []
    seen: set[str] = set()
    stack: list[tuple[str, bool]] = [(r, False) for r in reversed(roots)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        for dep_name, _pid in reversed(builder.units[node].imports):
            if dep_name not in seen:
                stack.append((dep_name, False))
    return order


def _apply_result(builder, graph: DepGraph, name: str, reason: str,
                  result: CompileResult) -> UnitOutcome:
    """Land a worker's compile in the parent, exactly as a serial
    compile would have: rehydrate the payload into the parent session,
    write the record, run the builder's post-compile hook."""
    imports = [builder.units[d] for d in graph.deps[name]]
    unit = load_unit(name, result.export_pid, imports, result.payload,
                     builder.session, result.source_digest,
                     binding_pids=result.binding_pids)
    unit.times = result.times  # report the worker's compile timings
    previous = builder.store.get(name)
    pid_changed = (previous is None
                   or previous.export_pid != result.export_pid)
    builder.units[name] = unit
    builder.store.put(builder.make_record(name, unit))
    builder.on_compiled(name, graph)
    return UnitOutcome(name, "compiled", reason, pid_changed,
                       result.times)
