"""Supervised wavefront builds: fault tolerance as a scheduling policy.

:func:`parallel_build` treats the first worker failure as fatal -- fine
for a developer's desk, wrong for an unattended build service.  This
module wraps the same wavefront machinery (same ``decide`` seam, same
hermetic workers, same sorted-order application, hence the same
byte-identical stores) in a :class:`Supervisor` that treats failure as
an *event to schedule around*:

- **Retry with backoff.**  A failed attempt whose exception type is in
  the policy's ``retryable`` set is resubmitted after a capped
  exponential backoff, up to ``retries`` extra attempts per unit and
  ``retry_total`` across the whole build (the *typed retry budget*:
  deterministic compile errors are not retried at all).
- **Timeouts.**  With ``timeout`` set, an attempt that exceeds its
  wall-clock deadline is abandoned -- the hung worker keeps its slot
  until it dies on its own, but its eventual result is ignored as
  *stale* -- and the unit is rescheduled like any other failure.
- **Graceful degradation.**  A unit that exhausts its budget is
  *poisoned*: it is recorded as ``failed``, its dependents are
  ``skipped`` (ledger cause ``poison-import``, naming the culprit), and
  every independent subgraph builds to completion.  A dying pool
  degrades process -> thread -> inline instead of aborting.
- **Resume.**  With a ``checkpoint_dir``, the store is saved and a
  :class:`BuildJournal` of completed units written after every wave, so
  a killed build's next run (``resume=True``) reuses everything that
  finished -- the crash-safe store carries the artifacts, the journal
  proves which units completed and feeds the report's ``resumed``
  count.

Everything the supervisor does is observable: ``retry`` / ``timeout`` /
``degrade`` / ``poison`` / ``skip`` events and ``retry-backoff`` spans
flow through the builder's meter, and every casualty gets a typed
ledger decision (``--explain`` says exactly why a unit was skipped).

Determinism: retries re-run the same hermetic compile, and export pids
are intrinsic, so a build that survives any number of transient faults
still produces byte-identical store contents to a clean serial build
(``tests/cm/test_supervise.py`` and the hypothesis property in
``tests/property/test_supervised.py`` check this).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field

from repro.cm.depend import DepGraph
from repro.cm.faults import FileSystem
from repro.cm.parallel import (
    CompileResult,
    ReadySet,
    WorkerFaults,
    _apply_result,
    _make_task,
    compile_task,
    make_executor,
    wavefronts,
)
from repro.cm.report import BuildReport, UnitOutcome
from repro.cm.store import JOURNAL_NAME, TMP_SUFFIX, StoreError
from repro.obs.ledger import explain_skip
from repro.obs.meter import NULL_METER

#: Exception *type names* retried by default: the transient family
#: (injected crashes, IO errors, timeouts, pool plumbing failures).
#: Deterministic compile errors -- parse/elaboration failures -- are
#: absent on purpose: retrying them burns budget to learn nothing.
DEFAULT_RETRYABLE = (
    "InjectedCrash", "TimeoutError", "OSError", "IOError",
    "BrokenProcessPool", "BrokenThreadPool", "BrokenExecutor",
    "ConnectionError", "ConnectionResetError", "EOFError",
)


@dataclass(frozen=True)
class SupervisePolicy:
    """How hard the supervisor fights for a build.

    ``retries`` is *extra attempts per unit* (0 = one attempt, no
    retry); ``retry_total`` caps retries across the whole build so a
    systemically-failing environment converges instead of thrashing.
    ``backoff_base * 2**attempt`` seconds, capped at ``backoff_cap``,
    separates attempts.  ``timeout`` (pooled builds only; the inline
    tier cannot preempt) is the per-attempt wall-clock deadline.
    ``retryable`` is the typed budget: exception *type names* worth
    retrying.
    """

    retries: int = 2
    retry_total: int = 16
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    timeout: float | None = None
    retryable: tuple = DEFAULT_RETRYABLE


class BuildJournal:
    """The resume journal: which units a (possibly killed) supervised
    build completed, and with what export pid.

    Rides as ``BUILD_JOURNAL.json`` inside the checkpoint/store
    directory (the store's load/prune paths know to leave it alone).
    All IO is best-effort through the store's ``FileSystem`` seam: a
    journal that cannot be written costs resumability, never the build.
    """

    def __init__(self, directory: str, fs: FileSystem):
        self.directory = directory
        self.fs = fs
        self.path = os.path.join(directory, JOURNAL_NAME)
        self.completed: dict[str, str] = {}  # unit name -> export pid

    @classmethod
    def load(cls, directory: str, fs: FileSystem) -> "BuildJournal":
        """Read a prior run's journal; damage or absence = empty."""
        journal = cls(directory, fs)
        try:
            data = json.loads(fs.read_bytes(journal.path).decode("utf-8"))
            completed = data["completed"]
            if data.get("format") == 1 and isinstance(completed, dict):
                journal.completed = {
                    str(k): str(v) for k, v in completed.items()}
        except Exception:
            pass  # no journal / torn journal: resume from the store alone
        return journal

    def mark(self, names, store) -> None:
        for name in names:
            record = store.get(name)
            self.completed[name] = (record.export_pid
                                    if record is not None else "")

    def write(self) -> bool:
        """Persist atomically (tmp + rename); False on failure."""
        payload = json.dumps(
            {"format": 1, "completed": dict(sorted(self.completed.items()))},
            indent=1, sort_keys=True).encode("utf-8")
        try:
            self.fs.write_bytes(self.path + TMP_SUFFIX, payload)
            self.fs.replace(self.path + TMP_SUFFIX, self.path)
            return True
        except OSError:
            return False

    def clear(self) -> None:
        """Remove the journal (the build completed; nothing to resume)."""
        try:
            self.fs.remove(self.path)
        except OSError:
            pass


#: The degradation ladder a dying pool walks down.
_NEXT_POOL = {"process": "thread", "thread": "inline", "inline": "inline"}


class Supervisor:
    """Drives one fault-tolerant wavefront build (see module docstring).

    ``executor_factory`` is a test seam with :func:`make_executor`'s
    signature; ``max_waves`` stops the build after N checkpointed waves
    -- the deterministic stand-in for ``kill -9`` in the resume tests.
    """

    def __init__(self, jobs: int = 2, pool: str = "process",
                 faults: WorkerFaults | None = None,
                 policy: SupervisePolicy | None = None,
                 resume: bool = False, checkpoint_dir: str | None = None,
                 max_waves: int | None = None,
                 executor_factory=make_executor,
                 schedule: str = "wavefront",
                 keep_executor: bool = False,
                 offer_key=None):
        if schedule not in ("wavefront", "ready"):
            raise ValueError(f"unknown schedule {schedule!r} "
                             f"(want 'wavefront' or 'ready')")
        self.jobs = jobs
        self.pool = pool
        self.faults = faults
        self.policy = policy if policy is not None else SupervisePolicy()
        self.resume = resume
        self.checkpoint_dir = checkpoint_dir
        self.max_waves = max_waves
        self.executor_factory = executor_factory
        self.schedule = schedule
        #: Ready-set offer order override (e.g. longest-first from a
        #: build profile); None keeps sorted name order.  Scheduling
        #: only -- store bytes are identical for every key.
        self.offer_key = offer_key
        #: When True the executor outlives the build -- the daemon's
        #: warm-pool seam (:mod:`repro.cm.daemon` hands a cached
        #: executor in via ``executor_factory`` and shuts it down at
        #: daemon shutdown).  A pool degradation flips this back off:
        #: the replacement pool belongs to this supervisor, not the
        #: caller, and the caller's cached pool is already dead.
        self.keep_executor = keep_executor
        self.executor = None
        self.using = "inline"
        #: unit -> the *root* poisoned unit whose failure took it down
        #: (a poisoned unit maps to itself).
        self.dead: dict[str, str] = {}
        self.retry_spent = 0
        self.report = BuildReport(jobs=jobs, schedule=schedule)
        self.journal: BuildJournal | None = None
        self.meter = NULL_METER

    # -- the build loop ---------------------------------------------------

    def build(self, builder) -> BuildReport:
        meter = self.meter = getattr(builder, "meter", NULL_METER)
        t0 = time.perf_counter()
        report = self.report
        with meter.span("build", cat="build",
                        manager=type(builder).__name__, jobs=self.jobs,
                        supervised=True, schedule=self.schedule) as bsp:
            builder._begin_build()
            builder._load_pending_stables(report)
            with meter.span("analyze", cat="build"):
                graph = builder.analyze()
            self.executor, self.using = self.executor_factory(
                self.jobs, self.pool)
            report.pool = self.using
            bsp.set(pool=self.using, units=len(graph.order))
            if self.checkpoint_dir is not None:
                if self.resume:
                    self.journal = BuildJournal.load(
                        self.checkpoint_dir, builder.store.fs)
                else:
                    self.journal = BuildJournal(self.checkpoint_dir,
                                                builder.store.fs)
            killed = False
            try:
                if self.schedule == "ready":
                    killed = self._run_ready_build(builder, graph)
                else:
                    for wave_index, wave in enumerate(wavefronts(graph)):
                        with meter.span("wave", cat="wave",
                                        index=wave_index,
                                        size=len(wave)) as wsp:
                            done = self._run_wave(builder, graph, wave,
                                                  wave_index, wsp)
                        self._checkpoint(builder, done)
                        if self.max_waves is not None \
                                and wave_index + 1 >= self.max_waves:
                            killed = True  # simulated kill (test seam)
                            break
                report.wall_seconds = time.perf_counter() - t0
            finally:
                if self.executor is not None and not self.keep_executor:
                    self.executor.shutdown(wait=True, cancel_futures=True)
            if self.journal is not None and not killed \
                    and not report.failed and not report.skipped:
                self.journal.clear()
            bsp.set(retries=report.retries, timeouts=report.timeouts,
                    degraded=report.degraded, failed=len(report.failed),
                    skipped=len(report.skipped), resumed=report.resumed)
        builder._finish_report(report)
        if meter.enabled:
            for key in ("retries", "timeouts", "degraded", "resumed"):
                value = getattr(report, key)
                if value:
                    meter.counter(f"supervise.{key}", value)
        return report

    # -- one wave ---------------------------------------------------------

    def _run_wave(self, builder, graph: DepGraph, wave: list[str],
                  wave_index: int, wsp) -> list[str]:
        """Decide, dispatch-with-supervision, apply.  Returns the units
        that are up to date after this wave (for the journal)."""
        meter = self.meter
        report = self.report
        done: list[str] = []
        pending: list[tuple[str, str]] = []
        for name in wave:
            culprit = self._poisoned_import(graph, name)
            if culprit is not None:
                self._skip(builder, name, culprit)
                continue
            record = builder.store.get(name)
            imports = [builder.units[d] for d in graph.deps[name]]
            action, reason = builder.decide(name, graph, imports, record)
            builder.explain(name, action, reason, record, imports)
            if action == "cached":
                report.add(UnitOutcome(name, "cached", "up to date"))
                self._count_resumed(name)
                done.append(name)
            elif action == "load":
                outcome = builder.load(name, record, imports)
                if outcome.action == "compiled":
                    # Unreadable payload degraded to a recompile.
                    builder.explain(name, "compile", outcome.reason,
                                    None, imports)
                    builder.on_compiled(name, graph)
                else:
                    self._count_resumed(name)
                report.add(outcome)
                done.append(name)
            else:
                pending.append((name, reason))
        wsp.set(dispatched=len(pending))
        if not pending:
            return done
        results = self._execute(builder, graph, pending, wave_index)
        for name, reason in pending:  # wave is sorted: deterministic
            got = results.get(name)
            if got is None:
                continue  # poisoned: already reported
            result = got
            if meter.enabled and result.worker:
                meter.complete_span("worker-compile", result.started,
                                    result.ended, cat="worker",
                                    track=result.worker, unit=name,
                                    wave=wave_index,
                                    attempt=result.attempt)
            with meter.span("apply", cat="unit", unit=name):
                report.add(_apply_result(builder, graph, name, reason,
                                         result))
            done.append(name)
        return done

    def _poisoned_import(self, graph: DepGraph, name: str) -> str | None:
        for dep in graph.deps.get(name, ()):
            if dep in self.dead:
                return self.dead[dep]
        return None

    def _count_resumed(self, name: str) -> None:
        if self.resume and self.journal is not None \
                and name in self.journal.completed:
            self.report.resumed += 1

    # -- supervised ready-set dispatch ------------------------------------

    def _run_ready_build(self, builder, graph: DepGraph) -> bool:
        """The whole build as one supervised ready-set pump.

        A unit is *admitted* (decided, then dispatched / settled
        inline) the moment its last in-graph import completes; every
        fate -- applied, cached, loaded, failed, skipped -- completes
        the unit in the :class:`~repro.cm.parallel.ReadySet`, so poison
        flows through the graph exactly as it does wave-by-wave:
        dependents of a poisoned unit become ready, are admitted, and
        are skipped with a ledger entry naming the culprit.

        Checkpointing happens at *quiet points*: whenever the admit
        queue drains and at least one unit finished since the last
        checkpoint.  ``max_waves`` counts those checkpoints -- the same
        simulated-kill seam the resume tests use for wave builds.
        Returns True when the kill seam fired.
        """
        meter = self.meter
        policy = self.policy
        report = self.report
        ready = ReadySet(graph, key=self.offer_key)
        active: dict[str, tuple] = {}  # name -> (future, attempt, deadline, reason)
        queue: list[tuple] = []  # (resume_at, name, attempt, reason)
        admit_queue: deque[str] = deque()
        done_since_checkpoint: list[str] = []
        checkpoints = 0

        def finish(name: str) -> None:
            admit_queue.extend(ready.complete(name))

        def settle(name: str, attempt: int, reason: str,
                   result: CompileResult) -> None:
            if result.error is None:
                if meter.enabled and result.worker:
                    meter.complete_span("worker-compile", result.started,
                                        result.ended, cat="worker",
                                        track=result.worker, unit=name,
                                        attempt=result.attempt)
                with meter.span("apply", cat="unit", unit=name):
                    report.add(_apply_result(builder, graph, name,
                                             reason, result))
                done_since_checkpoint.append(name)
                finish(name)
                return
            exc_type, message = result.error
            retryable = exc_type in policy.retryable
            if retryable and attempt < policy.retries \
                    and self.retry_spent < policy.retry_total:
                self.retry_spent += 1
                report.retries += 1
                delay = min(policy.backoff_cap,
                            policy.backoff_base * (2 ** attempt))
                t = time.perf_counter()
                if meter.enabled:
                    meter.event("retry", cat="supervise", unit=name,
                                attempt=attempt + 1, kind=exc_type)
                    meter.complete_span("retry-backoff", t, t + delay,
                                        cat="supervise",
                                        track="supervisor", unit=name,
                                        attempt=attempt + 1,
                                        kind=exc_type)
                queue.append((t + delay, name, attempt + 1, reason))
            else:
                self._poison(builder, name, exc_type, message, attempt,
                             retryable)
                finish(name)

        def launch(name: str, attempt: int, reason: str) -> None:
            if self.executor is None:
                settle(name, attempt, reason, compile_task(
                    _make_task(builder, graph, name, self.faults,
                               attempt=attempt)))
                return
            deadline = (time.perf_counter() + policy.timeout
                        if policy.timeout is not None else None)
            while self.executor is not None:
                try:
                    future = self.executor.submit(
                        compile_task,
                        _make_task(builder, graph, name, self.faults,
                                   attempt=attempt))
                    active[name] = (future, attempt, deadline, reason)
                    return
                except BaseException as err:
                    self._degrade(f"submit failed: "
                                  f"{type(err).__name__}: {err}")
            # Degraded all the way to inline: run it here.
            settle(name, attempt, reason, compile_task(
                _make_task(builder, graph, name, self.faults,
                           attempt=attempt)))

        def admit(name: str) -> None:
            report.dispatch_order.append(name)
            culprit = self._poisoned_import(graph, name)
            if culprit is not None:
                self._skip(builder, name, culprit)
                finish(name)
                return
            record = builder.store.get(name)
            imports = [builder.units[d] for d in graph.deps[name]]
            action, reason = builder.decide(name, graph, imports, record)
            builder.explain(name, action, reason, record, imports)
            if action == "cached":
                report.add(UnitOutcome(name, "cached", "up to date"))
                self._count_resumed(name)
                done_since_checkpoint.append(name)
                finish(name)
            elif action == "load":
                outcome = builder.load(name, record, imports)
                if outcome.action == "compiled":
                    # Unreadable payload degraded to a recompile.
                    builder.explain(name, "compile", outcome.reason,
                                    None, imports)
                    builder.on_compiled(name, graph)
                else:
                    self._count_resumed(name)
                report.add(outcome)
                done_since_checkpoint.append(name)
                finish(name)
            else:
                if meter.enabled:
                    meter.event("dispatch", cat="sched", unit=name,
                                seq=len(report.dispatch_order))
                launch(name, 0, reason)

        admit_queue.extend(ready.take())
        while True:
            while admit_queue:
                admit(admit_queue.popleft())
            if done_since_checkpoint:
                self._checkpoint(builder, done_since_checkpoint)
                done_since_checkpoint = []
                checkpoints += 1
                if self.max_waves is not None \
                        and checkpoints >= self.max_waves:
                    return True  # simulated kill (test seam)
            if not active and not queue:
                return False
            t = time.perf_counter()
            due = [item for item in queue if item[0] <= t]
            if due:
                queue[:] = [item for item in queue if item[0] > t]
                for _at, name, attempt, reason in due:
                    launch(name, attempt, reason)
                continue
            if not active:
                time.sleep(max(0.0, min(
                    min(item[0] for item in queue) - t, 0.05)))
                continue
            if self.executor is None:
                # Degraded to inline mid-build: drain synchronously.
                for name in sorted(active):
                    _future, attempt, _deadline, reason = \
                        active.pop(name)
                    settle(name, attempt, reason, compile_task(
                        _make_task(builder, graph, name, self.faults,
                                   attempt=attempt)))
                continue
            deadlines = [entry[2] for entry in active.values()
                         if entry[2] is not None]
            timeout = 0.05
            if deadlines:
                timeout = max(0.0, min(min(deadlines) - t, timeout))
            finished, _ = wait([entry[0] for entry in active.values()],
                               timeout=timeout,
                               return_when=FIRST_COMPLETED)
            t = time.perf_counter()
            for name in sorted(active):
                future, attempt, deadline, reason = active[name]
                if future in finished:
                    del active[name]
                    try:
                        result = future.result()
                    except BaseException as err:
                        # The pool itself died mid-flight: degrade the
                        # tier and rerun this very attempt (not charged
                        # to the unit's retry budget).
                        self._degrade(f"{type(err).__name__}: {err}")
                        launch(name, attempt, reason)
                        continue
                    settle(name, attempt, reason, result)
                elif deadline is not None and t >= deadline:
                    # A hung worker: abandon the attempt (stale result
                    # ignored) and schedule the unit like a failure.
                    del active[name]
                    future.cancel()
                    report.timeouts += 1
                    if meter.enabled:
                        meter.event("timeout", cat="supervise",
                                    unit=name, attempt=attempt,
                                    deadline=policy.timeout)
                    settle(name, attempt, reason, CompileResult(
                        name, error=(
                            "TimeoutError",
                            f"attempt {attempt} exceeded "
                            f"{policy.timeout:.3f}s wall clock"),
                        attempt=attempt))

    # -- supervised execution of one wave's compiles ----------------------

    def _execute(self, builder, graph: DepGraph,
                 pending: list[tuple[str, str]],
                 wave_index: int) -> dict[str, CompileResult]:
        """Run every pending compile to success or poison.

        The scheduling state is small: ``active`` holds in-flight
        futures (with their attempt number and deadline), ``queue``
        holds attempts sleeping out a backoff.  Abandoned (timed-out)
        futures simply leave ``active``; if the hung worker eventually
        finishes, its result is never read -- stale attempts cannot
        corrupt the build because the *applied* result is always the
        one the supervisor settled on, and all attempts produce
        identical intrinsic bytes anyway.
        """
        meter = self.meter
        policy = self.policy
        results: dict[str, CompileResult] = {}
        active: dict[str, tuple] = {}  # name -> (future, attempt, deadline, reason)
        queue: list[tuple] = []  # (resume_at, name, attempt, reason)

        def settle(name: str, attempt: int, reason: str,
                   result: CompileResult) -> None:
            if result.error is None:
                results[name] = result
                return
            exc_type, message = result.error
            retryable = exc_type in policy.retryable
            if retryable and attempt < policy.retries \
                    and self.retry_spent < policy.retry_total:
                self.retry_spent += 1
                self.report.retries += 1
                delay = min(policy.backoff_cap,
                            policy.backoff_base * (2 ** attempt))
                t = time.perf_counter()
                if meter.enabled:
                    meter.event("retry", cat="supervise", unit=name,
                                attempt=attempt + 1, kind=exc_type,
                                wave=wave_index)
                    meter.complete_span("retry-backoff", t, t + delay,
                                        cat="supervise",
                                        track="supervisor", unit=name,
                                        attempt=attempt + 1,
                                        kind=exc_type)
                queue.append((t + delay, name, attempt + 1, reason))
            else:
                self._poison(builder, name, exc_type, message, attempt,
                             retryable)

        def launch(name: str, attempt: int, reason: str) -> None:
            if self.executor is None:
                settle(name, attempt, reason, compile_task(
                    _make_task(builder, graph, name, self.faults,
                               attempt=attempt)))
                return
            deadline = (time.perf_counter() + policy.timeout
                        if policy.timeout is not None else None)
            while self.executor is not None:
                try:
                    future = self.executor.submit(
                        compile_task,
                        _make_task(builder, graph, name, self.faults,
                                   attempt=attempt))
                    active[name] = (future, attempt, deadline, reason)
                    return
                except BaseException as err:
                    self._degrade(f"submit failed: "
                                  f"{type(err).__name__}: {err}")
            # Degraded all the way to inline: run it here.
            settle(name, attempt, reason, compile_task(
                _make_task(builder, graph, name, self.faults,
                           attempt=attempt)))

        for name, reason in pending:
            if meter.enabled:
                meter.event("dispatch", cat="sched", unit=name,
                            wave=wave_index)
            launch(name, 0, reason)

        while active or queue:
            t = time.perf_counter()
            due = [item for item in queue if item[0] <= t]
            if due:
                queue[:] = [item for item in queue if item[0] > t]
                for _at, name, attempt, reason in due:
                    launch(name, attempt, reason)
                continue
            if not active:
                time.sleep(max(0.0, min(
                    min(item[0] for item in queue) - t, 0.05)))
                continue
            if self.executor is None:
                # Degraded to inline mid-wave: drain synchronously.
                for name in sorted(active):
                    _future, attempt, _deadline, reason = active.pop(name)
                    settle(name, attempt, reason, compile_task(
                        _make_task(builder, graph, name, self.faults,
                                   attempt=attempt)))
                continue
            deadlines = [entry[2] for entry in active.values()
                         if entry[2] is not None]
            timeout = 0.05
            if deadlines:
                timeout = max(0.0, min(min(deadlines) - t, timeout))
            finished, _ = wait([entry[0] for entry in active.values()],
                               timeout=timeout,
                               return_when=FIRST_COMPLETED)
            t = time.perf_counter()
            for name in list(active):
                future, attempt, deadline, reason = active[name]
                if future in finished:
                    del active[name]
                    try:
                        result = future.result()
                    except BaseException as err:
                        # The pool itself died mid-flight: degrade the
                        # tier and rerun this very attempt (not charged
                        # to the unit's retry budget -- the unit never
                        # got to fail).
                        self._degrade(f"{type(err).__name__}: {err}")
                        launch(name, attempt, reason)
                        continue
                    settle(name, attempt, reason, result)
                elif deadline is not None and t >= deadline:
                    # A hung worker: abandon the attempt (stale result
                    # ignored) and schedule the unit like a failure.
                    del active[name]
                    future.cancel()
                    self.report.timeouts += 1
                    if meter.enabled:
                        meter.event("timeout", cat="supervise",
                                    unit=name, attempt=attempt,
                                    wave=wave_index,
                                    deadline=policy.timeout)
                    settle(name, attempt, reason, CompileResult(
                        name, error=(
                            "TimeoutError",
                            f"attempt {attempt} exceeded "
                            f"{policy.timeout:.3f}s wall clock"),
                        attempt=attempt))
        return results

    # -- casualties -------------------------------------------------------

    def _poison(self, builder, name: str, exc_type: str, message: str,
                attempt: int, retryable: bool) -> None:
        self.dead[name] = name
        why = ("retry budget exhausted" if retryable
               else "not a retryable failure")
        detail = (f"{exc_type}: {message} "
                  f"({why} after {attempt + 1} attempt(s))")
        builder.ledger.record(
            explain_skip(name, "failed-after-retries", detail=detail))
        self.report.add(UnitOutcome(name, "failed", detail))
        if self.meter.enabled:
            self.meter.event("poison", cat="supervise", unit=name,
                             kind=exc_type, attempts=attempt + 1)

    def _skip(self, builder, name: str, culprit: str) -> None:
        self.dead[name] = culprit
        detail = (f"an import chain leads to poisoned unit {culprit}; "
                  f"never attempted")
        builder.ledger.record(
            explain_skip(name, "poison-import", detail=detail,
                         culprit=culprit))
        self.report.add(UnitOutcome(name, "skipped", detail))
        if self.meter.enabled:
            self.meter.event("skip", cat="supervise", unit=name,
                             culprit=culprit)

    # -- pool degradation -------------------------------------------------

    def _degrade(self, why: str) -> None:
        """Walk one rung down the pool ladder (process -> thread ->
        inline), shutting the dying pool down without waiting."""
        old, old_kind = self.executor, self.using
        next_kind = _NEXT_POOL[old_kind]
        if old is not None:
            try:
                old.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        if next_kind == "inline" or old_kind == "inline":
            self.executor, self.using = None, "inline"
        else:
            self.executor, self.using = make_executor(self.jobs,
                                                      next_kind)
        # Any replacement pool is ours to shut down, and a caller's
        # cached pool (daemon warm pool) is already dead.
        self.keep_executor = False
        self.report.degraded += 1
        self.report.pool = self.using
        if self.meter.enabled:
            self.meter.event("degrade", cat="supervise",
                             from_pool=old_kind, to_pool=self.using,
                             why=why)

    # -- checkpointing ----------------------------------------------------

    def _checkpoint(self, builder, done: list[str]) -> None:
        """Persist the wave: store save + journal update.  Best effort
        -- a full disk costs resumability, never the build."""
        if self.checkpoint_dir is None or self.journal is None:
            return
        try:
            builder.store.save_directory(self.checkpoint_dir)
        except StoreError as err:
            builder.health.notes.append(
                f"checkpoint save failed ({type(err).__name__}): {err}")
            if self.meter.enabled:
                self.meter.event("checkpoint-failed", cat="supervise",
                                 kind=type(err).__name__)
            return
        self.journal.mark(done, builder.store)
        if not self.journal.write():
            builder.health.notes.append(
                "checkpoint journal write failed; resume will fall "
                "back to the store alone")


def supervised_build(builder, jobs: int = 2, pool: str = "process",
                     faults: WorkerFaults | None = None,
                     policy: SupervisePolicy | None = None,
                     resume: bool = False,
                     checkpoint_dir: str | None = None,
                     max_waves: int | None = None,
                     executor_factory=make_executor,
                     schedule: str = "wavefront",
                     offer_key=None) -> BuildReport:
    """Bring ``builder``'s project up to date under supervision.

    The fault-tolerant sibling of
    :func:`repro.cm.parallel.parallel_build`: same schedules
    (``"wavefront"`` barriers or per-unit ``"ready"`` dispatch), same
    decide seam, same byte-identical results -- but worker failures
    retry with backoff, hung workers time out and reschedule, poison
    units take down only their dependents, a dying pool degrades
    instead of aborting, and (with a ``checkpoint_dir``) the build is
    resumable after a kill.
    """
    supervisor = Supervisor(jobs=jobs, pool=pool, faults=faults,
                            policy=policy, resume=resume,
                            checkpoint_dir=checkpoint_dir,
                            max_waves=max_waves,
                            executor_factory=executor_factory,
                            schedule=schedule, offer_key=offer_key)
    return supervisor.build(builder)
