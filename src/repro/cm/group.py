"""Groups and libraries (§9).

"A group of files forms the fundamental unit of the IRM ... Because the
dependency information for each of the library's files [is] computed and
cached, it is not time-consuming to do large builds."  A
:class:`Group` names a set of member units plus the groups it imports;
a member may only depend on units visible to its group -- its siblings
and the members of directly imported groups.

:class:`GroupBuilder` builds a group hierarchy bottom-up over a single
shared session and bin store, so a library is compiled once no matter
how many client groups import it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.base import BaseBuilder
from repro.cm.manager import CutoffBuilder
from repro.cm.project import Project
from repro.cm.report import BuildReport
from repro.cm.store import BinStore
from repro.units.session import Session


@dataclass
class Group:
    """A build group: members (unit names) plus imported groups."""

    name: str
    members: list[str]
    imports: list["Group"] = field(default_factory=list)

    def closure(self) -> list["Group"]:
        """This group and everything it transitively imports, imports
        first (a post-order without duplicates)."""
        seen: dict[str, Group] = {}

        def visit(group: Group) -> None:
            if group.name in seen:
                return
            for sub in group.imports:
                visit(sub)
            seen[group.name] = group

        visit(self)
        return list(seen.values())

    def visible_units(self) -> set[str]:
        """Units a member of this group may import: siblings plus the
        members of directly imported groups."""
        out = set(self.members)
        for sub in self.imports:
            out.update(sub.members)
        return out


class GroupBuilder:
    """Builds a group hierarchy with visibility enforcement.

    One session and one bin store are shared by every group, so shared
    libraries compile once; per-group reports are returned keyed by group
    name.
    """

    def __init__(self, project: Project, builder_class=CutoffBuilder,
                 store: BinStore | None = None,
                 session: Session | None = None,
                 meter=None):
        self.project = project
        self.builder_class = builder_class
        self.store = store if store is not None else BinStore()
        self.session = session if session is not None else Session()
        self.meter = meter
        #: unit name -> live compiled unit, shared across group builds.
        self._builder: BaseBuilder | None = None
        self._stable_archives: list[bytes] = []

    def add_stable_archive(self, blob: bytes) -> None:
        """Make a stable library available to the group build."""
        self._stable_archives.append(blob)

    def build(self, root: Group) -> dict[str, BuildReport]:
        """Build ``root`` and everything it imports, bottom-up."""
        groups = root.closure()
        all_units: list[str] = []
        visibility: dict[str, set[str]] = {}
        group_of: dict[str, str] = {}
        for group in groups:
            for member in group.members:
                if member in group_of:
                    raise ValueError(
                        f"unit {member} belongs to both "
                        f"{group_of[member]} and {group.name}")
                group_of[member] = group.name
                all_units.append(member)
                visible = set(group.visible_units())
                visible.discard(member)
                visibility[member] = visible

        builder = self.builder_class(
            self.project, store=self.store, session=self.session,
            restrict=all_units, visible=visibility, meter=self.meter)
        for blob in self._stable_archives:
            builder.add_stable_archive(blob)
        self._builder = builder
        report = builder.build()

        by_group: dict[str, BuildReport] = {
            group.name: BuildReport() for group in groups
        }
        for outcome in report.outcomes:
            bucket = group_of.get(outcome.name, "(stable)")
            by_group.setdefault(bucket, BuildReport()).add(outcome)
        return by_group

    @property
    def units(self):
        return self._builder.units if self._builder else {}

    @property
    def ledger(self):
        """The underlying builder's cutoff-explanation ledger."""
        return self._builder.ledger if self._builder else None

    def link(self):
        if self._builder is None:
            raise RuntimeError("build a group first")
        return self._builder.link()
