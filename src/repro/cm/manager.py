"""The IRM's cutoff builder -- the paper's contribution (§5, §8).

Decision per unit, in dependency order:

1. *make level*: is the bin file current with respect to the source
   text?  (We use a source digest rather than an mtime so that ``touch``
   without change is already harmless at this level.)
2. *cutoff level*: do the live import pids equal the pids recorded in
   the bin file?  Because pids are intrinsic interface hashes, a
   dependency that was recompiled **without changing its interface**
   leaves its pid unchanged, and this test passes: the cascade stops.

Only if one of the tests fails is the unit recompiled.  Whether its own
pid changed is recorded, feeding the same test for its dependents.
"""

from __future__ import annotations

from repro.cm.base import BaseBuilder
from repro.cm.depend import DepGraph
from repro.cm.store import BinRecord
from repro.units.unit import CompiledUnit


class CutoffBuilder(BaseBuilder):
    """The Incremental Recompilation Manager's cutoff algorithm."""

    def decide(self, name: str, graph: DepGraph,
               imports: list[CompiledUnit],
               record: BinRecord | None) -> tuple[str, str]:
        if record is None:
            # Distinguish a unit that never had a bin file from one
            # whose bin file was quarantined as damaged at store load.
            kinds = self.health.kinds_for(name)
            reason = (f"bin file quarantined ({kinds[0]})" if kinds
                      else "no bin file")
            return "compile", reason
        if not self.source_current(name, record):
            return "compile", "source changed"
        if not self.imports_current(record, imports):
            return "compile", "an imported interface (pid) changed"
        if self.is_live_and_current(name, record):
            return "cached", ""
        return "load", ""
