"""Stable libraries: a built group frozen into one archive.

Section 9 describes libraries whose "dependency information ... [is]
computed and cached, [so] it is not time-consuming to do large builds";
SML/NJ's CM later took this to its conclusion with *stable libraries* --
a whole library packed, post-build, into a single file that clients load
without ever seeing the library's sources.  This module implements that:

- :func:`stabilize` packs named units out of a built builder into one
  archive: per-unit header (name, export pid, import pids, the module
  names it provides) plus the dehydrated payloads, in dependency order.
- :meth:`repro.cm.base.BaseBuilder.add_stable_archive` registers an
  archive with a builder; its units are rehydrated on the next build and
  act as providers for source units, no sources required.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

MAGIC = b"SMLSTABLE1\n"


@dataclass
class StableUnit:
    name: str
    export_pid: str
    imports: list[tuple[str, str]]
    provides: list[str]
    payload: bytes


def stabilize(builder, names: list[str]) -> bytes:
    """Pack the named (already built) units into a stable archive.

    Units are written in the builder's dependency order; every import of
    a packed unit must itself be packed (stable libraries are closed).
    """
    graph = builder.last_graph
    if graph is None:
        raise ValueError("build before stabilizing")
    chosen = set(names)
    ordered = [n for n in graph.order if n in chosen]
    missing = chosen - set(ordered)
    if missing:
        raise ValueError(f"units not built: {sorted(missing)}")
    entries = []
    payloads = []
    from repro.lang.freevars import defined_module_names

    for name in ordered:
        unit = builder.units[name]
        for import_name, _pid in unit.imports:
            if import_name not in chosen:
                raise ValueError(
                    f"stable archive not closed: {name} imports "
                    f"{import_name}, which is outside the archive")
        defined = defined_module_names(unit.code)
        provides = sorted(
            set().union(*defined.values())) if defined else []
        entries.append({
            "name": name,
            "export_pid": unit.export_pid,
            "imports": unit.imports,
            "provides": provides,
            "payload_len": len(unit.payload),
        })
        payloads.append(unit.payload)
    header = json.dumps({"version": 1, "units": entries}).encode()
    out = bytearray(MAGIC)
    out.extend(len(header).to_bytes(8, "big"))
    out.extend(header)
    for payload in payloads:
        out.extend(payload)
    return bytes(out)


def parse_archive(blob: bytes) -> list[StableUnit]:
    if not blob.startswith(MAGIC):
        raise ValueError("not a stable archive")
    offset = len(MAGIC)
    header_len = int.from_bytes(blob[offset:offset + 8], "big")
    offset += 8
    header = json.loads(blob[offset:offset + header_len])
    offset += header_len
    if header.get("version") != 1:
        raise ValueError("unsupported stable-archive version")
    units = []
    for entry in header["units"]:
        payload = blob[offset:offset + entry["payload_len"]]
        offset += entry["payload_len"]
        units.append(StableUnit(
            name=entry["name"],
            export_pid=entry["export_pid"],
            imports=[tuple(pair) for pair in entry["imports"]],
            provides=list(entry["provides"]),
            payload=payload,
        ))
    if offset != len(blob):
        raise ValueError("trailing bytes in stable archive")
    return units
