"""Stable libraries: a built group frozen into one archive.

Section 9 describes libraries whose "dependency information ... [is]
computed and cached, [so] it is not time-consuming to do large builds";
SML/NJ's CM later took this to its conclusion with *stable libraries* --
a whole library packed, post-build, into a single file that clients load
without ever seeing the library's sources.  This module implements that:

- :func:`stabilize` packs named units out of a built builder into one
  archive: per-unit header (name, export pid, import pids, the module
  names it provides) plus the dehydrated payloads, in dependency order.
- :meth:`repro.cm.base.BaseBuilder.add_stable_archive` registers an
  archive with a builder; its units are rehydrated on the next build and
  act as providers for source units, no sources required.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.pids.crc128 import crc128_hex

MAGIC = b"SMLSTABLE1\n"

#: Archive format version.  Version 2 added per-unit payload checksums
#: and a trailing whole-archive digest; other versions are rejected with
#: a typed error (clients recompile from sources when they have them).
ARCHIVE_VERSION = 2


class StableArchiveError(ValueError):
    """A stable archive is damaged (bad magic, truncation, checksum or
    digest mismatch, unsupported version, unparsable header)."""


@dataclass
class StableUnit:
    name: str
    export_pid: str
    imports: list[tuple[str, str]]
    provides: list[str]
    payload: bytes


def stabilize(builder, names: list[str]) -> bytes:
    """Pack the named (already built) units into a stable archive.

    Units are written in the builder's dependency order; every import of
    a packed unit must itself be packed (stable libraries are closed).
    """
    graph = builder.last_graph
    if graph is None:
        raise ValueError("build before stabilizing")
    chosen = set(names)
    ordered = [n for n in graph.order if n in chosen]
    missing = chosen - set(ordered)
    if missing:
        raise ValueError(f"units not built: {sorted(missing)}")
    entries = []
    payloads = []
    from repro.lang.freevars import defined_module_names

    for name in ordered:
        unit = builder.units[name]
        for import_name, _pid in unit.imports:
            if import_name not in chosen:
                raise ValueError(
                    f"stable archive not closed: {name} imports "
                    f"{import_name}, which is outside the archive")
        defined = defined_module_names(unit.code)
        provides = sorted(
            set().union(*defined.values())) if defined else []
        entries.append({
            "name": name,
            "export_pid": unit.export_pid,
            "imports": unit.imports,
            "provides": provides,
            "payload_len": len(unit.payload),
            "payload_crc": crc128_hex(unit.payload),
        })
        payloads.append(unit.payload)
    header = json.dumps(
        {"version": ARCHIVE_VERSION, "units": entries}).encode()
    out = bytearray(MAGIC)
    out.extend(len(header).to_bytes(8, "big"))
    out.extend(header)
    for payload in payloads:
        out.extend(payload)
    # Whole-archive digest: anyone truncating or flipping a byte
    # anywhere in the file is caught even if the damage lands between
    # the per-unit checksums.
    out.extend(bytes.fromhex(crc128_hex(bytes(out))))
    return bytes(out)


def parse_archive(blob: bytes) -> list[StableUnit]:
    """Parse and verify a stable archive.

    Raises :class:`StableArchiveError` -- never anything rawer -- on any
    damage: bad magic, truncation at any offset, unparsable header,
    unsupported version, per-unit checksum or whole-archive digest
    mismatch, trailing bytes.
    """
    if not blob.startswith(MAGIC):
        raise StableArchiveError("not a stable archive")
    if len(blob) < len(MAGIC) + 8 + 16:
        raise StableArchiveError("truncated stable archive (no header)")
    digest = blob[-16:].hex()
    body = blob[:-16]
    if crc128_hex(body) != digest:
        raise StableArchiveError(
            "stable-archive digest mismatch (truncated or corrupted)")
    offset = len(MAGIC)
    header_len = int.from_bytes(body[offset:offset + 8], "big")
    offset += 8
    if offset + header_len > len(body):
        raise StableArchiveError("truncated stable archive (header)")
    try:
        header = json.loads(body[offset:offset + header_len])
    except (ValueError, UnicodeDecodeError) as err:
        raise StableArchiveError(
            f"corrupt stable-archive header: {err}") from None
    offset += header_len
    if not isinstance(header, dict) or \
            header.get("version") != ARCHIVE_VERSION:
        raise StableArchiveError("unsupported stable-archive version")
    units = []
    try:
        entries = header["units"]
        for entry in entries:
            length = entry["payload_len"]
            if not isinstance(length, int) or length < 0 or \
                    offset + length > len(body):
                raise StableArchiveError(
                    f"truncated stable archive (payload of "
                    f"{entry.get('name', '?')!r})")
            payload = body[offset:offset + length]
            offset += length
            if crc128_hex(payload) != entry["payload_crc"]:
                raise StableArchiveError(
                    f"checksum mismatch in stable unit "
                    f"{entry.get('name', '?')!r}")
            units.append(StableUnit(
                name=entry["name"],
                export_pid=entry["export_pid"],
                imports=[tuple(pair) for pair in entry["imports"]],
                provides=list(entry["provides"]),
                payload=payload,
            ))
    except StableArchiveError:
        raise
    except (KeyError, TypeError, ValueError) as err:
        raise StableArchiveError(
            f"malformed stable-archive header: "
            f"{type(err).__name__}: {err}") from None
    if offset != len(body):
        raise StableArchiveError("trailing bytes in stable archive")
    return units
