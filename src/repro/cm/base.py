"""Shared machinery for the three builders."""

from __future__ import annotations

import time

from repro.cm.depend import DepGraph, analyze
from repro.cm.project import Project
from repro.cm.report import BuildReport, UnitOutcome
from repro.cm.store import BinRecord, BinStore
from repro.linker.link import Linker
from repro.obs.ledger import ExplanationLedger, explain_decision
from repro.obs.meter import NULL_METER, BuildMeter
from repro.units.pipeline import compile_unit, load_unit, source_digest
from repro.units.session import Session
from repro.units.unit import CompiledUnit, DynExport


class BaseBuilder:
    """A builder = project + bin store + session + live units.

    A *builder instance* models one compiler session; passing an existing
    :class:`BinStore` to a fresh builder models starting a new session
    over a previous session's bin files (the cross-session reuse the
    paper's dehydration exists for).
    """

    def __init__(self, project: Project, store: BinStore | None = None,
                 session: Session | None = None,
                 restrict: list[str] | None = None,
                 visible: dict[str, set[str]] | None = None,
                 meter: BuildMeter | None = None):
        self.project = project
        self.store = store if store is not None else BinStore()
        #: The telemetry seam: a no-op by default, a
        #: :class:`repro.obs.Tracer` when the build is being traced.
        self.meter = meter if meter is not None else NULL_METER
        if meter is not None:
            # The builder drives the store, so it observes it too.
            self.store.meter = meter
        #: Why each unit was recompiled or reused, decided this pass
        #: (:mod:`repro.obs.ledger`; re-created at every build start).
        self.ledger = ExplanationLedger()
        #: Damage found loading the store plus anything quarantined
        #: while building (unreadable bin payloads, damaged stable
        #: archives).  Shared with the store's own report.
        self.health = self.store.health
        self.session = session if session is not None else Session()
        self.units: dict[str, CompiledUnit] = {}
        self.last_graph: DepGraph | None = None
        self.restrict = restrict
        self.visible = visible
        #: Dependency-analysis memo, keyed by unit and source text (§9:
        #: the IRM caches per-file dependency information).
        self._dep_cache: dict = {}
        #: Stable-library archives pending load, and the module-provider
        #: map of every stable unit already loaded.
        self._stable_pending: list[bytes] = []
        self._stable_providers: dict[str, str] = {}
        self.stable_names: set[str] = set()
        self._stable_order: list[str] = []

    # -- the build loop -----------------------------------------------------

    def build(self, jobs: int = 1, pool: str = "process",
              supervise: bool = False, policy=None, resume: bool = False,
              checkpoint_dir: str | None = None,
              schedule: str = "wavefront",
              offer_key=None) -> BuildReport:
        """Bring every unit up to date; returns what was done.

        With ``jobs > 1`` ready units are compiled on a worker pool
        (:mod:`repro.cm.parallel`) under either ``schedule`` --
        ``"wavefront"`` antichain barriers or per-unit ``"ready"``
        dispatch; the resulting statenv, bin store contents and export
        pids are byte-identical to a serial build either way.
        ``offer_key`` (ready schedule only) reorders the ready set's
        offers, e.g. longest-prior-compile-first from a build profile
        (:func:`repro.obs.history.longest_first_key`) -- a pure
        scheduling hint, same bytes for every key.

        ``supervise=True`` (implied by ``policy``, ``resume`` or
        ``checkpoint_dir``) routes through the fault-tolerant
        :mod:`repro.cm.supervise` scheduler: worker failures retry with
        backoff, hung workers time out and reschedule, poison units
        skip only their dependents, and with a ``checkpoint_dir`` the
        build checkpoints every wave and can ``resume`` after a kill.
        """
        if supervise or policy is not None or resume \
                or checkpoint_dir is not None:
            from repro.cm.supervise import supervised_build
            return supervised_build(self, jobs=jobs, pool=pool,
                                    policy=policy, resume=resume,
                                    checkpoint_dir=checkpoint_dir,
                                    schedule=schedule,
                                    offer_key=offer_key)
        if jobs != 1 or schedule == "ready":
            from repro.cm.parallel import parallel_build
            return parallel_build(self, jobs=jobs, pool=pool,
                                  schedule=schedule,
                                  offer_key=offer_key)
        meter = self.meter
        t0 = time.perf_counter()
        report = BuildReport()
        with meter.span("build", cat="build",
                        manager=type(self).__name__, jobs=1) as sp:
            self._begin_build()
            if self._stable_pending:
                with meter.span("stable-load", cat="build"):
                    self._load_pending_stables(report)
            else:
                self._load_pending_stables(report)
            with meter.span("analyze", cat="build"):
                graph = self.analyze()
            for name in graph.order:
                imports = [self.units[dep] for dep in graph.deps[name]]
                report.add(self.process(name, graph, imports))
            sp.set(units=len(graph.order))
        report.wall_seconds = time.perf_counter() - t0
        self._finish_report(report)
        return report

    def analyze(self) -> DepGraph:
        graph = analyze(self.project, restrict=self.restrict,
                        visible=self.visible, cache=self._dep_cache,
                        extra_providers=self._stable_providers)
        self.last_graph = graph
        return graph

    # -- stable libraries ---------------------------------------------------

    def add_stable_archive(self, blob: bytes) -> None:
        """Register a stable-library archive; its units are rehydrated on
        the next build and serve as providers without sources."""
        self._stable_pending.append(blob)

    def _load_pending_stables(self, report: BuildReport) -> None:
        """Rehydrate pending stable archives, quarantining damage.

        A damaged archive (or a single unreadable unit inside one) never
        aborts the build: the failure is recorded in :attr:`health`, the
        affected units are skipped, and -- because they then register no
        providers -- the build falls back to compiling them from sources
        when the project has them.
        """
        from repro.cm.stable import StableArchiveError, parse_archive
        from repro.pickle import UnpickleError
        from repro.units.pipeline import load_unit

        for blob in self._stable_pending:
            try:
                stables = parse_archive(blob)
            except StableArchiveError as err:
                self.health.add("", "stable-archive", detail=str(err))
                report.add(UnitOutcome("(stable-archive)", "skipped",
                                       f"damaged stable archive: {err}"))
                continue
            failed: set[str] = set()
            for stable in stables:
                if any(i_name in failed or i_name not in self.units
                       for i_name, _pid in stable.imports):
                    failed.add(stable.name)
                    self.health.add(stable.name, "stable-unit-skipped",
                                    detail="an imported stable unit "
                                           "failed to load")
                    report.add(UnitOutcome(stable.name, "skipped",
                                           "stable import unavailable"))
                    continue
                imports = [self.units[i_name]
                           for i_name, _pid in stable.imports]
                try:
                    unit = load_unit(stable.name, stable.export_pid,
                                     imports, stable.payload, self.session)
                except UnpickleError as err:
                    failed.add(stable.name)
                    self.health.add(stable.name,
                                    "stable-rehydrate-failed",
                                    detail=str(err))
                    report.add(UnitOutcome(stable.name, "skipped",
                                           f"stable unit unreadable: "
                                           f"{err}"))
                    continue
                self.units[stable.name] = unit
                self.stable_names.add(stable.name)
                self._stable_order.append(stable.name)
                for module_name in stable.provides:
                    self._stable_providers[module_name] = stable.name
                report.add(UnitOutcome(stable.name, "loaded",
                                       "stable library", False,
                                       unit.times))
        self._stable_pending.clear()

    # -- the decision seam -----------------------------------------------
    #
    # ``process`` drives one unit through decide -> act -> hook.  Builders
    # implement :meth:`decide` (a pure judgement over the record, the live
    # import pids and the builder's own bookkeeping) and optionally
    # :meth:`on_compiled` / :meth:`_begin_build`.  Splitting the decision
    # from the action is what lets the parallel scheduler reuse every
    # builder's recompilation policy unchanged: it asks ``decide`` in
    # wavefront order and runs the compiles on a worker pool.

    def process(self, name: str, graph: DepGraph,
                imports: list[CompiledUnit]) -> UnitOutcome:
        record = self.store.get(name)
        action, reason = self.decide(name, graph, imports, record)
        self.explain(name, action, reason, record, imports)
        if action == "cached":
            return UnitOutcome(name, "cached", "up to date")
        with self.meter.span("unit", cat="unit", unit=name,
                             action=action) as sp:
            if action == "load":
                outcome = self.load(name, record, imports)
                if outcome.action == "compiled":
                    # The load degraded to a recompile (unreadable
                    # payload): the ledger must say so.
                    self.explain(name, "compile", outcome.reason, None,
                                 imports)
            else:
                outcome = self.compile(name, imports, reason)
            sp.set(action=outcome.action, reason=outcome.reason)
        if outcome.action == "compiled":
            self.on_compiled(name, graph)
        return outcome

    def explain(self, name: str, action: str, reason: str,
                record: BinRecord | None,
                imports: list[CompiledUnit]) -> None:
        """Record the typed :class:`~repro.obs.ledger.BuildDecision`
        behind a ``decide`` verdict.  Structural: causes come from the
        prior record and live pids, not from the reason string.  The
        source digest is only computed for recompiles (reuse decisions
        never need it), so the always-on ledger stays cheap.  When the
        record carries interface slices, the decision also gets
        per-binding checks -- the prior used-binding pids against the
        providers' current ones (providers are processed earlier in
        dependency order, so their records are up to date here)."""
        source_changed = None
        if action == "compile" and record is not None:
            source_changed = not self.source_current(name, record)
        live_binding_pids = {}
        if record is not None and record.used_bindings:
            for provider_name in record.used_bindings:
                provider_record = self.store.get(provider_name)
                if provider_record is not None:
                    live_binding_pids[provider_name] = \
                        provider_record.binding_pids
        decision = explain_decision(
            unit=name,
            action={"compile": "compiled", "load": "loaded",
                    "cached": "cached"}[action],
            reason=reason,
            had_record=record is not None,
            prior_imports=tuple(tuple(pair) for pair in record.imports)
            if record is not None else (),
            live_imports=tuple((u.name, u.export_pid) for u in imports),
            source_changed=source_changed,
            quarantine_kinds=tuple(self.health.kinds_for(name))
            if record is None else (),
            used_bindings=record.used_bindings
            if record is not None else None,
            live_binding_pids=live_binding_pids,
        )
        self.ledger.record(decision)
        if self.meter.enabled:
            self.meter.event("decision", cat="ledger", unit=name,
                             verdict=decision.verdict,
                             cause=decision.cause)

    def _finish_report(self, report: BuildReport) -> None:
        """Attach the ledger and emit the build's rollup counters."""
        report.ledger = self.ledger
        if self.meter.enabled:
            self.meter.counter("units.compiled", len(report.compiled))
            self.meter.counter("units.loaded", len(report.loaded))
            self.meter.counter("units.cached", len(report.cached))
            self.meter.counter("cutoff.stops", len(report.cutoffs()))
            self.meter.counter(
                "cutoff.false-rebuilds",
                sum(1 for d in self.ledger if d.cause == "policy"))

    def decide(self, name: str, graph: DepGraph,
               imports: list[CompiledUnit],
               record: BinRecord | None) -> tuple[str, str]:
        """What should happen to ``name``: ``("compile", reason)``,
        ``("load", "")`` or ``("cached", "")``.  Must not mutate builder
        state (the scheduler may call it ahead of the actions)."""
        raise NotImplementedError

    def on_compiled(self, name: str, graph: DepGraph) -> None:
        """Hook run after ``name`` was (re)compiled -- serially or on a
        worker -- with the unit live and its record in the store.

        The default records the unit's interface slice usage: for every
        import edge, which of the provider's bindings this unit
        mentions, pinned to the provider's *current* binding pids
        (providers were processed earlier in dependency order, so their
        records are fresh here).  An empty pid marks a provider with no
        slice data (e.g. loaded from a pre-slicing record); the smart
        builder treats those conservatively.  Iteration is sorted so
        the header bytes are identical across serial and parallel
        builds.  Overrides should call ``super().on_compiled(...)`` to
        keep the slice data flowing."""
        record = self.store.get(name)
        if record is None:
            return
        used: dict[str, dict[str, str]] = {}
        for provider in sorted(graph.uses.get(name, {})):
            provider_record = self.store.get(provider)
            pids = (provider_record.binding_pids
                    if provider_record is not None else {})
            if provider_record is None:
                live = self.units.get(provider)
                pids = live.binding_pids if live is not None else {}
            used[provider] = {key: pids.get(key, "")
                              for key in sorted(graph.uses[name][provider])}
        record.used_bindings = used
        self.store.put(record)

    def _begin_build(self) -> None:
        """Hook run at the start of every build pass.  Overrides must
        call ``super()._begin_build()``: the explanation ledger is
        per-pass."""
        self.ledger = ExplanationLedger()

    # -- shared actions --------------------------------------------------

    def compile(self, name: str, imports: list[CompiledUnit],
                reason: str) -> UnitOutcome:
        source = self.project.source(name)
        unit = compile_unit(name, source, imports, self.session,
                            meter=self.meter)
        previous = self.store.get(name)
        pid_changed = previous is None or previous.export_pid != unit.export_pid
        self.units[name] = unit
        self.store.put(self.make_record(name, unit))
        return UnitOutcome(name, "compiled", reason, pid_changed, unit.times)

    def make_record(self, name: str, unit: CompiledUnit) -> BinRecord:
        return BinRecord(
            name=name,
            source_digest=unit.source_digest,
            export_pid=unit.export_pid,
            imports=list(unit.imports),
            payload=unit.payload,
            built_at=self.project.clock,
            binding_pids=dict(unit.binding_pids),
        )

    def load(self, name: str, record: BinRecord,
             imports: list[CompiledUnit]) -> UnitOutcome:
        from repro.pickle import UnpickleError

        try:
            unit = load_unit(name, record.export_pid, imports,
                             record.payload, self.session,
                             record.source_digest, meter=self.meter,
                             binding_pids=record.binding_pids)
        except UnpickleError as err:
            # A stale-format or corrupt bin file is a cache miss, not a
            # build failure -- but it is damage the checksums should
            # have caught earlier, so put it on the health report too.
            self.health.add(name, "rehydrate-failed", detail=str(err))
            return self.compile(name, imports, "bin file unreadable")
        self.units[name] = unit
        return UnitOutcome(name, "loaded", "bin file current", False,
                           unit.times)

    def source_current(self, name: str, record: BinRecord | None) -> bool:
        return (record is not None
                and record.source_digest
                == source_digest(self.project.source(name)))

    def imports_current(self, record: BinRecord,
                        imports: list[CompiledUnit]) -> bool:
        """The cutoff test: do the live import pids match the ones this
        bin was compiled against?"""
        return record.imports == [(u.name, u.export_pid) for u in imports]

    def is_live_and_current(self, name: str, record: BinRecord) -> bool:
        live = self.units.get(name)
        return live is not None and live.export_pid == record.export_pid

    # -- linking and running -------------------------------------------------

    def link(self, verify: bool = True) -> dict[str, DynExport]:
        """Type-safe link + execute of all live units (stable libraries
        first) in dependency order."""
        graph = self.last_graph if self.last_graph is not None else self.analyze()
        linker = Linker(self.session)
        ordered = [self.units[name] for name in self._stable_order]
        ordered.extend(self.units[name] for name in graph.order)
        with self.meter.span("link", cat="build", units=len(ordered)):
            return linker.link(ordered, verify=verify)

    def build_and_run(self) -> tuple[BuildReport, dict[str, DynExport]]:
        report = self.build()
        return report, self.link()
