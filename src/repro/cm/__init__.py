"""The compilation manager (the paper's IRM, §8-9).

The IRM sits *above* the compiler primitives (compile, execute,
dehydrate, rehydrate, import/export pid extraction) and *below* the user:
it scans sources for dependencies, decides what to recompile, maintains
the bin-file cache, and drives type-safe linking.

Three builders implement the recompilation spectrum the paper discusses:

- :class:`repro.cm.make.TimestampBuilder` -- classical ``make``:
  timestamps plus transitive cascade.  The baseline.
- :class:`repro.cm.manager.CutoffBuilder` -- the paper's contribution:
  recompile a unit only when its own source changed or an *imported
  interface pid* changed; an interface-preserving recompilation of an
  import stops the cascade ("cutoff recompilation").
- :class:`repro.cm.smart.SmartBuilder` -- Tichy-style smart
  recompilation at per-exported-name granularity, the upper bound the
  paper positions cutoff against.
"""

from repro.cm.project import Project
from repro.cm.depend import DependencyError, DepGraph, analyze
from repro.cm.backend import (
    DirectoryBackend,
    ShardedBackend,
    StoreBackend,
    detect_dir_backend,
    make_backend,
)
from repro.cm.store import (
    BinRecord,
    BinStore,
    CorruptRecord,
    SaveStats,
    StoreError,
    StoreFullError,
    StoreHealthReport,
    StoreLockedError,
    sweep_stale_artifacts,
)
from repro.cm.remote import (
    RemoteBackend,
    StoreServer,
    register_loopback,
    serve_socket,
    unregister_loopback,
)
from repro.cm.report import BuildReport, UnitOutcome
from repro.cm.make import TimestampBuilder
from repro.cm.manager import CutoffBuilder
from repro.cm.smart import SmartBuilder
from repro.cm.parallel import (
    ParallelBuildError,
    ReadySet,
    WorkerFaults,
    parallel_build,
    wavefronts,
)
from repro.cm.supervise import (
    BuildJournal,
    SupervisePolicy,
    Supervisor,
    supervised_build,
)
from repro.cm.daemon import (
    BuildDaemon,
    DaemonError,
    DaemonReply,
    serve,
)
from repro.cm.group import Group, GroupBuilder
from repro.cm.descfile import DescFileError, load_group_file
from repro.cm.stable import StableArchiveError, parse_archive, stabilize

__all__ = [
    "Project",
    "DepGraph",
    "DependencyError",
    "analyze",
    "BinRecord",
    "BinStore",
    "StoreBackend",
    "DirectoryBackend",
    "ShardedBackend",
    "RemoteBackend",
    "StoreServer",
    "detect_dir_backend",
    "make_backend",
    "register_loopback",
    "unregister_loopback",
    "serve_socket",
    "CorruptRecord",
    "SaveStats",
    "StoreError",
    "StoreFullError",
    "StoreHealthReport",
    "StoreLockedError",
    "BuildReport",
    "UnitOutcome",
    "TimestampBuilder",
    "CutoffBuilder",
    "SmartBuilder",
    "ParallelBuildError",
    "ReadySet",
    "WorkerFaults",
    "parallel_build",
    "wavefronts",
    "BuildJournal",
    "SupervisePolicy",
    "Supervisor",
    "supervised_build",
    "sweep_stale_artifacts",
    "BuildDaemon",
    "DaemonError",
    "DaemonReply",
    "serve",
    "Group",
    "GroupBuilder",
    "DescFileError",
    "load_group_file",
    "StableArchiveError",
    "stabilize",
    "parse_archive",
]
