"""The build daemon: a resident compilation service.

The paper's Visible Compiler thesis is that the compiler is a library
any client can drive.  Batch ``python -m repro.cm`` drives it once and
exits, paying a cold start every run: fresh sessions, a full store
load, dependency re-analysis from scratch.  :class:`BuildDaemon` keeps
all of that warm across requests:

- **Warm builders.**  One builder (session + live units + dep cache)
  per (group, manager) survives between requests, so an unchanged unit
  is a ``cached`` verdict -- no store read, no rehydration.  Worker
  pools persist too (``Supervisor``'s ``keep_executor`` seam), which
  keeps the workers' own thread-local sessions and rehydrated import
  closures warm (:func:`repro.cm.parallel.compile_task`'s
  ``(name, pid)``-keyed cache).
- **Incremental refresh.**  Sources are re-read only when their
  ``(mtime_ns, size)`` signature moved
  (:meth:`~repro.cm.faults.FileSystem.stat_signature`); the store is
  reloaded only when its on-disk
  :meth:`~repro.cm.store.BinStore.disk_signature` moved (another
  process wrote it).  A *touch* -- new mtime, identical text -- leaves
  the in-memory project untouched, exactly as a batch run would see no
  digest change.
- **Byte identity.**  Daemon-served builds leave the same store bytes
  (records, manifest, export pids) a fresh batch build would.  The
  one non-obvious part is the record header's ``built_at`` logical
  clock: on any real text change the daemon rebuilds a *fresh*
  :class:`~repro.cm.project.Project` from the current sources instead
  of ticking the old one, so its clock always equals what
  ``Project.from_directory`` would produce.  The differential matrix
  in ``tests/cm/test_daemon_determinism.py`` holds the daemon to this
  byte-for-byte.
- **Ready-set dispatch.**  Requests build under
  ``schedule="ready"`` by default (per-unit dispatch, no wave
  barriers) on the supervised scheduler, so retries, timeouts, poison
  quarantine, checkpoints/``--resume`` and the explanation ledger all
  work for daemon-served builds.
- **Coalescing.**  Duplicate in-flight requests -- same group, same
  manager/jobs/pool -- join the build already running and get its
  report; disjoint groups build concurrently under per-group locks.
- **Startup sweep.**  First contact with a group's store sweeps a
  killed prior run's debris (stale ``BUILD_JOURNAL.json``, orphaned
  ``.rlock``s with dead owners) via
  :func:`repro.cm.store.sweep_stale_artifacts`.

The stdio front end (``python -m repro.cm --serve``) speaks
newline-delimited JSON, one request object in, one ``sort_keys``
response object out (see :func:`serve`); the wire format is golden
tested in ``tests/cm/test_daemon_requests.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.cm.manager import CutoffBuilder
from repro.cm.make import TimestampBuilder
from repro.cm.parallel import WorkerFaults, make_executor
from repro.cm.project import Project
from repro.cm.report import BuildReport
from repro.cm.smart import SmartBuilder
from repro.cm.store import BinStore, sweep_stale_artifacts
from repro.cm.supervise import SupervisePolicy, Supervisor
from repro.obs.diff import diff_against_profile
from repro.obs.history import (
    BuildHistory,
    longest_first_key,
    profile_from_report,
)
from repro.obs.meter import NULL_METER

#: The manager table the CLI and the daemon share.
MANAGERS = {
    "cutoff": CutoffBuilder,
    "make": TimestampBuilder,
    "smart": SmartBuilder,
}

#: Wire-protocol version spoken by :func:`serve` (bumped on any
#: incompatible change to the request/response shapes).
PROTOCOL_VERSION = 1

SOURCE_SUFFIX = ".sml"


class DaemonError(Exception):
    """A request the daemon cannot serve (bad group, bad manager,
    daemon already shut down).  Build *failures* are not errors: they
    come back inside the report like any supervised build."""


@dataclass
class DaemonReply:
    """One request's answer: the group it was for, the build report
    (the coalesced joiners share the leader's report object), and how
    the daemon got there."""

    group: str
    report: BuildReport
    request_id: int
    #: True when this request joined a build another client started.
    coalesced: bool = False
    #: True when the store was reloaded from disk because its
    #: signature moved (another process wrote it).
    store_reloaded: bool = False
    #: How many source files were re-read (stat signature moved or
    #: first contact).
    sources_refreshed: int = 0
    #: Debris removed by the startup sweep (first request only).
    swept: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0


class _Inflight:
    """One in-flight build that later duplicate requests may join."""

    __slots__ = ("done", "joined", "joiners", "report", "error")

    def __init__(self):
        self.done = threading.Event()
        #: Set the moment the first joiner arrives -- a deterministic
        #: hook for the coalescing tests (the leader's build can wait
        #: on it to force the race).
        self.joined = threading.Event()
        self.joiners = 0
        self.report: BuildReport | None = None
        self.error: BaseException | None = None


@dataclass
class _GroupState:
    """Everything the daemon keeps warm for one source directory."""

    srcdir: str
    bin_dir: str
    lock: threading.Lock
    opened: bool = False
    project: Project | None = None
    store: BinStore | None = None
    #: The configured store backend (None = auto-detected local layout;
    #: created lazily from the daemon's store_backend/store_url).
    backend: object = None
    #: manager name -> warm builder (session, live units, dep cache).
    builders: dict = field(default_factory=dict)
    #: source filename -> (mtime_ns, size) at last read.
    stats: dict = field(default_factory=dict)
    #: source unit name -> text at last read.
    texts: dict = field(default_factory=dict)
    #: the store directory's disk signature after our last load/save.
    store_sig: tuple = ()
    swept: list = field(default_factory=list)
    #: the group's build-profile ring buffer (created on first open).
    history: BuildHistory | None = None
    #: manager name -> the latest recorded profile (kept warm so the
    #: priority key and explain-diff never re-read disk per request).
    profiles: dict = field(default_factory=dict)
    #: manager name -> the profile *before* the latest build -- what
    #: ``explain-diff`` compares the latest ledger against.
    prior_profiles: dict = field(default_factory=dict)
    #: manager name -> per-unit compile seconds merged across profiles
    #: (the longest-first priority's input), loaded from disk once per
    #: manager and updated in memory after every build.
    seconds: dict = field(default_factory=dict)


class BuildDaemon:
    """A long-lived, in-process build service (see module docstring).

    Thread-safe: :meth:`request` may be called from many client
    threads.  Requests for the same group serialize on the group's
    lock (duplicates coalesce instead of queueing); requests for
    disjoint groups run concurrently.

    ``build_hook`` is a test seam: the *leader* of every build calls
    it as ``build_hook(key, inflight)`` after registering in the
    in-flight table and before building -- the coalescing tests park
    the leader there until a duplicate request has joined.
    """

    def __init__(self, manager: str = "cutoff", jobs: int = 1,
                 pool: str = "thread", schedule: str = "ready",
                 policy: SupervisePolicy | None = None, meter=None,
                 checkpoint: bool = True,
                 faults: WorkerFaults | None = None,
                 build_hook=None, store_backend: str = "auto",
                 store_url: str | None = None,
                 priority: str = "name", trace_sample: int = 0):
        if manager not in MANAGERS:
            raise DaemonError(f"unknown manager {manager!r} "
                              f"(want one of {sorted(MANAGERS)})")
        if priority not in ("name", "longest-first"):
            raise DaemonError(f"unknown priority {priority!r} "
                              f"(want 'name' or 'longest-first')")
        self.manager = manager
        self.jobs = max(1, jobs)
        self.pool = pool
        self.schedule = schedule
        self.store_backend = store_backend
        self.store_url = store_url
        #: Ready-set offer order: plain sorted names, or longest prior
        #: compile time first from the group's build history.
        self.priority = priority
        self.policy = policy if policy is not None else SupervisePolicy()
        if meter is None and trace_sample > 0:
            # Sampled always-on tracing: full spans 1-in-N builds,
            # cheap aggregate counters for everything (the ``stats``
            # request's data source).
            from repro.obs.sampling import SamplingMeter
            meter = SamplingMeter(sample=trace_sample)
        self.trace_sample = trace_sample
        self.meter = meter if meter is not None else NULL_METER
        self.checkpoint = checkpoint
        self.faults = faults
        self.build_hook = build_hook
        self._lock = threading.Lock()
        self._states: dict[str, _GroupState] = {}
        self._inflight: dict[tuple, _Inflight] = {}
        #: (jobs, pool) -> (executor, kind): the warm worker pools.
        self._executors: dict[tuple, tuple] = {}
        self._request_seq = 0
        self._closed = False

    # -- the request path -------------------------------------------------

    def request(self, srcdir: str, manager: str | None = None,
                jobs: int | None = None, pool: str | None = None,
                faults: WorkerFaults | None = None) -> DaemonReply:
        """Bring ``srcdir`` up to date; returns this request's reply.

        A request identical in (group, manager, jobs, pool) to one
        already building *joins* it: no second compile, the joiner
        blocks until the leader finishes and shares its report
        (``reply.coalesced`` is True).  Fault-injected requests
        (``faults`` given) never join and are never joined -- fault
        plans are per-build test instrumentation.
        """
        if self._closed:
            raise DaemonError("daemon is shut down")
        manager = manager if manager else self.manager
        if manager not in MANAGERS:
            raise DaemonError(f"unknown manager {manager!r} "
                              f"(want one of {sorted(MANAGERS)})")
        jobs = self.jobs if jobs is None else max(1, jobs)
        pool = pool if pool else self.pool
        t0 = time.perf_counter()
        state = self._state_for(srcdir)
        key = (state.srcdir, manager, jobs, pool)
        mine: _Inflight | None = None
        with self._lock:
            self._request_seq += 1
            request_id = self._request_seq
            if faults is None:
                theirs = self._inflight.get(key)
                if theirs is not None:
                    theirs.joiners += 1
                    theirs.joined.set()
                else:
                    mine = self._inflight[key] = _Inflight()
            else:
                mine = _Inflight()  # private: never joinable
        if self.meter.enabled:
            self.meter.counter("daemon.requests")

        if mine is None:  # join the build already running
            theirs.done.wait()
            if theirs.error is not None:
                raise theirs.error
            wall = time.perf_counter() - t0
            if self.meter.enabled:
                self.meter.counter("daemon.coalesced")
                self.meter.complete_span(
                    "daemon-request", t0, time.perf_counter(),
                    cat="daemon", track="daemon", group=state.srcdir,
                    manager=manager, coalesced=True)
            return DaemonReply(group=state.srcdir, report=theirs.report,
                               request_id=request_id, coalesced=True,
                               wall_seconds=wall)

        try:
            if self.build_hook is not None:
                self.build_hook(key, mine)
            with state.lock:
                report, reloaded, refreshed, swept = self._build(
                    state, manager, jobs, pool, faults)
            mine.report = report
        except BaseException as err:
            mine.error = err
            raise
        finally:
            with self._lock:
                if self._inflight.get(key) is mine:
                    del self._inflight[key]
            mine.done.set()
        wall = time.perf_counter() - t0
        if self.meter.enabled:
            self.meter.counter("daemon.builds")
            self.meter.complete_span(
                "daemon-request", t0, time.perf_counter(), cat="daemon",
                track="daemon", group=state.srcdir, manager=manager,
                coalesced=False, joiners=mine.joiners,
                compiled=len(report.compiled))
        return DaemonReply(group=state.srcdir, report=report,
                           request_id=request_id,
                           store_reloaded=reloaded,
                           sources_refreshed=refreshed,
                           swept=swept, wall_seconds=wall)

    def explain(self, srcdir: str, unit: str | None = None,
                manager: str | None = None) -> str:
        """The cutoff-explanation ledger of the group's last build
        under ``manager`` (the daemon's default when omitted)."""
        manager = manager if manager else self.manager
        state = self._state_for(srcdir)
        with state.lock:
            builder = state.builders.get(manager)
            if builder is None:
                raise DaemonError(
                    f"no build of {srcdir} under {manager!r} yet")
            return builder.ledger.render_text(unit)

    def explain_diff(self, srcdir: str, unit: str | None = None,
                     manager: str | None = None) -> str:
        """Diff the group's latest build decisions against the
        previous build's profile: why did a unit rebuild *this* time
        but not last time (see :mod:`repro.obs.diff`)."""
        manager = manager if manager else self.manager
        state = self._state_for(srcdir)
        with state.lock:
            builder = state.builders.get(manager)
            if builder is None:
                raise DaemonError(
                    f"no build of {srcdir} under {manager!r} yet")
            prior = state.prior_profiles.get(manager)
            diff = diff_against_profile(builder.ledger, prior)
            return diff.render_text(unit)

    def stats(self) -> dict:
        """The daemon's rolled-up telemetry: request/coalesce/build
        counts, cache hit rate, worker occupancy -- cheap enough to
        serve permanently (the counters tier of ``--trace-sample``
        keeps them for *every* build, sampled or not)."""
        with self._lock:
            out: dict = {
                "groups": len(self._states),
                "requests_served": self._request_seq,
            }
        rollup = getattr(self.meter, "rollup", None)
        if rollup is None:
            return out
        data = rollup()
        counters = data.get("counters", {})
        spans = data.get("spans", {})
        compiled = counters.get("units.compiled", 0)
        loaded = counters.get("units.loaded", 0)
        cached = counters.get("units.cached", 0)
        total = compiled + loaded + cached
        if total:
            out["hit_rate"] = round((loaded + cached) / total, 6)
        busy = spans.get("worker-compile", {}).get("seconds", 0.0)
        wall = spans.get("build", {}).get("seconds", 0.0)
        if wall > 0:
            out["occupancy"] = round(
                min(1.0, busy / (self.jobs * wall)), 6)
        out["telemetry"] = data
        return out

    def shutdown(self) -> None:
        """Shut the warm pools down and refuse further requests."""
        with self._lock:
            self._closed = True
            executors = list(self._executors.values())
            self._executors.clear()
        for executor, _kind in executors:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)

    # -- group state ------------------------------------------------------

    def _state_for(self, srcdir: str) -> _GroupState:
        key = os.path.abspath(srcdir)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = _GroupState(
                    srcdir=key, bin_dir=os.path.join(key, ".bin"),
                    lock=threading.Lock())
                self._states[key] = state
        return state

    def _backend_for(self, state: _GroupState):
        """The group's configured store backend, created lazily; None
        when the defaults apply (auto-detected local layout, no URL) so
        the classic load/save paths run untouched."""
        if state.backend is not None:
            return state.backend
        if self.store_backend == "auto" and not self.store_url:
            return None
        from repro.cm.backend import make_backend
        state.backend = make_backend(self.store_backend, state.bin_dir,
                                     url=self.store_url)
        return state.backend

    def _open(self, state: _GroupState) -> None:
        """First contact with a group: sweep debris, load the store."""
        backend = self._backend_for(state)
        state.swept = sweep_stale_artifacts(state.bin_dir,
                                            backend=backend)
        if state.swept and self.meter.enabled:
            self.meter.event("daemon-sweep", cat="daemon",
                             group=state.srcdir,
                             swept=list(state.swept))
        if backend is not None:
            state.store = BinStore.load_directory(state.bin_dir,
                                                  backend=backend)
        elif os.path.isdir(state.bin_dir):
            state.store = BinStore.load_directory(state.bin_dir)
        else:
            state.store = BinStore()
        if self.meter is not NULL_METER:
            state.store.meter = self.meter
        state.store_sig = BinStore.disk_signature(state.bin_dir,
                                                  backend=backend)
        # Profile IO rides the store's fs seam, so fault injection on
        # the store covers history writes too (best-effort either way).
        state.history = BuildHistory(state.bin_dir, fs=state.store.fs)
        state.opened = True

    def _refresh_sources(self, state: _GroupState) -> int:
        """Re-read only the sources whose stat signature moved; swap in
        a *fresh* project iff any text actually changed (a pure touch
        keeps the project -- and the record headers' logical clock --
        exactly as a batch run would see them)."""
        try:
            entries = sorted(e for e in os.listdir(state.srcdir)
                             if e.endswith(SOURCE_SUFFIX))
        except OSError as err:
            raise DaemonError(
                f"cannot list group {state.srcdir}: {err}") from err
        if not entries:
            raise DaemonError(
                f"no {SOURCE_SUFFIX} sources in {state.srcdir}")
        refreshed = 0
        texts: dict[str, str] = {}
        stats: dict[str, tuple | None] = {}
        for entry in entries:
            name = entry[:-len(SOURCE_SUFFIX)]
            sig = state.store.fs.stat_signature(
                os.path.join(state.srcdir, entry))
            if (sig is not None and sig == state.stats.get(entry)
                    and name in state.texts):
                texts[name] = state.texts[name]
            else:
                with open(os.path.join(state.srcdir, entry),
                          encoding="utf-8") as fh:
                    texts[name] = fh.read()
                refreshed += 1
            stats[entry] = sig
        state.stats = stats
        if state.project is None or texts != state.texts:
            # Real change: a fresh project, so its logical clock equals
            # what Project.from_directory gives a batch build (clock =
            # file count) and built_at stamps match byte-for-byte.
            state.project = Project.from_sources(texts)
            for builder in state.builders.values():
                builder.project = state.project
        state.texts = texts
        return refreshed

    def _refresh_store(self, state: _GroupState) -> bool:
        """Reload the store iff its signature moved since we last
        loaded/saved it (another process -- or, through a remote
        backend, another *machine* -- wrote it)."""
        backend = self._backend_for(state)
        sig = BinStore.disk_signature(state.bin_dir, backend=backend)
        if sig == state.store_sig:
            return False
        if backend is not None:
            state.store = BinStore.load_directory(state.bin_dir,
                                                  backend=backend)
        elif os.path.isdir(state.bin_dir):
            state.store = BinStore.load_directory(state.bin_dir)
        else:
            state.store = BinStore()
        if self.meter is not NULL_METER:
            state.store.meter = self.meter
        for builder in state.builders.values():
            builder.store = state.store
            builder.health = state.store.health
        state.store_sig = sig
        if self.meter.enabled:
            self.meter.counter("daemon.store_reloads")
        return True

    # -- one build --------------------------------------------------------

    def _build(self, state: _GroupState, manager: str, jobs: int,
               pool: str, faults: WorkerFaults | None):
        swept: list[str] = []
        if not state.opened:
            self._open(state)
            swept = list(state.swept)  # reported by this request only
        refreshed = self._refresh_sources(state)
        reloaded = self._refresh_store(state)
        builder = state.builders.get(manager)
        if builder is None:
            builder = MANAGERS[manager](state.project, store=state.store,
                                        meter=self.meter)
            state.builders[manager] = builder
        offer_key = None
        if self.priority == "longest-first":
            if manager not in state.seconds:
                # One disk read per (group, manager) lifetime; kept
                # warm (and updated) in memory after every build.
                state.seconds[manager] = \
                    state.history.compile_seconds(manager)
            offer_key = longest_first_key(state.seconds[manager])
        supervisor = Supervisor(
            jobs=jobs, pool=pool,
            faults=faults if faults is not None else self.faults,
            policy=self.policy, schedule=self.schedule,
            checkpoint_dir=state.bin_dir if self.checkpoint else None,
            executor_factory=self._executor_factory,
            keep_executor=True, offer_key=offer_key)
        report = supervisor.build(builder)
        builder.store.save_directory(state.bin_dir)
        state.store_sig = BinStore.disk_signature(
            state.bin_dir, backend=self._backend_for(state))
        self._record_profile(state, manager, builder, report)
        if report.degraded:
            # The supervisor shut our cached pool down on its way down
            # the ladder; forget it so the next request makes a new one.
            with self._lock:
                self._executors.pop((jobs, pool), None)
        return report, reloaded, refreshed, swept

    def _record_profile(self, state: _GroupState, manager: str,
                        builder, report) -> None:
        """Persist this build's profile and roll the warm history
        state forward: the previously-latest profile becomes the
        ``explain-diff`` baseline, the new one feeds the next
        longest-first priority key.  Best effort -- profile IO never
        fails a build."""
        prior = state.profiles.get(manager)
        if prior is None and manager not in state.profiles:
            prior = state.history.latest(manager)
        state.prior_profiles[manager] = prior
        profile = profile_from_report(
            report, ledger=builder.ledger,
            export_pids={name: unit.export_pid
                         for name, unit in builder.units.items()},
            group=state.srcdir, manager=manager)
        state.history.record(profile)
        state.profiles[manager] = profile
        state.seconds.setdefault(manager, {}).update(
            profile.compile_seconds())

    def _executor_factory(self, jobs: int, pool: str):
        """Warm-pool seam handed to the supervisor: reuse a cached
        executor for (jobs, pool), creating it on first use.  Keeping
        the pool alive keeps the workers' thread-local sessions and
        rehydration caches warm across requests."""
        key = (jobs, pool)
        with self._lock:
            made = self._executors.get(key)
            if made is None:
                made = make_executor(jobs, pool)
                self._executors[key] = made
        return made


# -- the stdio front end -------------------------------------------------


def wire_encode(obj: dict) -> str:
    """The wire format: compact, key-sorted JSON -- deterministic bytes
    for a given payload, which is what the golden test pins down."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def reply_to_wire(reply: DaemonReply) -> dict:
    report = reply.report
    return {
        "group": reply.group,
        "coalesced": reply.coalesced,
        "store_reloaded": reply.store_reloaded,
        "sources_refreshed": reply.sources_refreshed,
        "swept": list(reply.swept),
        "schedule": report.schedule,
        "jobs": report.jobs,
        "pool": report.pool,
        "stats": report.stats(),
        "outcomes": [
            {"name": o.name, "action": o.action, "reason": o.reason}
            for o in report.outcomes
        ],
        "wall_seconds": round(reply.wall_seconds, 6),
    }


def serve(daemon: BuildDaemon, lines, out,
          default_group: str | None = None) -> int:
    """Serve newline-delimited JSON requests until EOF or ``shutdown``.

    ``lines`` is any iterable of strings (sys.stdin, a socket file, a
    test's list); ``out`` is a writable text stream.  One request
    object per line in, one :func:`wire_encode`-d response per line
    out.  Requests carry ``op`` (``build`` / ``ping`` / ``explain`` /
    ``explain-diff`` / ``stats`` / ``shutdown``) and an optional
    client-chosen ``id`` echoed back
    (defaulting to the request's ordinal).  Any per-request failure --
    unparseable line, unknown op, :class:`DaemonError`, build machinery
    error -- is an ``"ok": false`` response, never a dead daemon.
    Returns the process exit code.
    """
    seq = 0
    closing = False
    for line in lines:
        if not line.strip():
            continue
        seq += 1
        request_id = seq
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise DaemonError("request is not a JSON object")
            request_id = request.get("id", seq)
            op = request.get("op")
            if op == "ping":
                result = {"protocol": PROTOCOL_VERSION,
                          "manager": daemon.manager,
                          "schedule": daemon.schedule}
            elif op == "build":
                group = request.get("group", default_group)
                if not group:
                    raise DaemonError(
                        'no group: pass "group" or serve with a srcdir')
                reply = daemon.request(group,
                                       manager=request.get("manager"),
                                       jobs=request.get("jobs"),
                                       pool=request.get("pool"))
                result = reply_to_wire(reply)
                if request.get("trace"):
                    report = reply.report
                    result["trace"] = {
                        "ledger": (report.ledger.to_json()
                                   if report.ledger is not None else {}),
                        "phase_totals": report.phase_totals(),
                        "dispatch_order": list(report.dispatch_order),
                        "wall_seconds": round(report.wall_seconds, 6),
                    }
            elif op == "explain":
                group = request.get("group", default_group)
                if not group:
                    raise DaemonError(
                        'no group: pass "group" or serve with a srcdir')
                result = {"text": daemon.explain(
                    group, unit=request.get("unit"),
                    manager=request.get("manager"))}
            elif op == "explain-diff":
                group = request.get("group", default_group)
                if not group:
                    raise DaemonError(
                        'no group: pass "group" or serve with a srcdir')
                result = {"text": daemon.explain_diff(
                    group, unit=request.get("unit"),
                    manager=request.get("manager"))}
            elif op == "stats":
                result = daemon.stats()
            elif op == "shutdown":
                closing = True
                result = {"bye": True}
            else:
                raise DaemonError(f"unknown op {op!r}")
            response = {"id": request_id, "ok": True, "op": op,
                        "result": result}
        except Exception as err:
            response = {"id": request_id, "ok": False,
                        "error": {"type": type(err).__name__,
                                  "message": str(err)}}
        out.write(wire_encode(response) + "\n")
        out.flush()
        if closing:
            break
    daemon.shutdown()
    return 0
