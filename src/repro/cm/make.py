"""The classical baseline: timestamp-``make`` with transitive cascade.

"The chief utility of this mechanism is ... recompilation" (§1): with no
interface files and no interface hashes, a timestamp build system must
assume that recompiling a unit may have changed its interface, and so
must recompile every transitive dependent.  This builder models exactly
that -- Feldman's make over the unit dependency DAG -- and is the
baseline in benchmark T2.
"""

from __future__ import annotations

from repro.cm.base import BaseBuilder
from repro.cm.depend import DepGraph
from repro.cm.store import BinRecord
from repro.units.unit import CompiledUnit


class TimestampBuilder(BaseBuilder):
    """make(1) semantics: rebuild when the source is newer than the bin,
    or when anything it depends on was rebuilt."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rebuilt_this_pass: set[str] = set()

    def _begin_build(self) -> None:
        super()._begin_build()
        self._rebuilt_this_pass = set()

    def decide(self, name: str, graph: DepGraph,
               imports: list[CompiledUnit],
               record: BinRecord | None) -> tuple[str, str]:
        if record is None:
            return "compile", "no bin file"
        if self.project.version(name) > record.built_at:
            return "compile", "source newer than bin"
        if any(dep in self._rebuilt_this_pass
               for dep in graph.deps[name]):
            return "compile", "a dependency was rebuilt"
        if self.is_live_and_current(name, record):
            return "cached", ""
        return "load", ""

    def on_compiled(self, name: str, graph: DepGraph) -> None:
        super().on_compiled(name, graph)
        self._rebuilt_this_pass.add(name)
