"""The classical baseline: timestamp-``make`` with transitive cascade.

"The chief utility of this mechanism is ... recompilation" (§1): with no
interface files and no interface hashes, a timestamp build system must
assume that recompiling a unit may have changed its interface, and so
must recompile every transitive dependent.  This builder models exactly
that -- Feldman's make over the unit dependency DAG -- and is the
baseline in benchmark T2.
"""

from __future__ import annotations

from repro.cm.base import BaseBuilder
from repro.cm.depend import DepGraph
from repro.cm.report import UnitOutcome
from repro.units.unit import CompiledUnit


class TimestampBuilder(BaseBuilder):
    """make(1) semantics: rebuild when the source is newer than the bin,
    or when anything it depends on was rebuilt."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rebuilt_this_pass: set[str] = set()

    def build(self):
        self._rebuilt_this_pass = set()
        return super().build()

    def process(self, name: str, graph: DepGraph,
                imports: list[CompiledUnit]) -> UnitOutcome:
        record = self.store.get(name)
        if record is None:
            outcome = self.compile(name, imports, "no bin file")
        elif self.project.version(name) > record.built_at:
            outcome = self.compile(name, imports, "source newer than bin")
        elif any(dep in self._rebuilt_this_pass
                 for dep in graph.deps[name]):
            outcome = self.compile(name, imports, "a dependency was rebuilt")
        elif self.is_live_and_current(name, record):
            return UnitOutcome(name, "cached", "up to date")
        else:
            return self.load(name, record, imports)
        self._rebuilt_this_pass.add(name)
        return outcome
