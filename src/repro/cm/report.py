"""Build reports: what a builder did and why."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units.unit import PhaseTimes


@dataclass
class UnitOutcome:
    """What happened to one unit during a build.

    action is one of:
        "compiled" -- source was (re)compiled;
        "loaded"   -- bin file rehydrated into this session;
        "cached"   -- already live in memory and current.
    """

    name: str
    action: str
    reason: str = ""
    pid_changed: bool = False
    times: PhaseTimes = field(default_factory=PhaseTimes)


@dataclass
class BuildReport:
    outcomes: list[UnitOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Worker count and pool kind ("serial" for the classic build loop;
    #: "process"/"thread"/"inline" for wavefront builds).
    jobs: int = 1
    pool: str = "serial"

    def add(self, outcome: UnitOutcome) -> None:
        self.outcomes.append(outcome)

    def _by_action(self, action: str) -> list[str]:
        return [o.name for o in self.outcomes if o.action == action]

    @property
    def compiled(self) -> list[str]:
        return self._by_action("compiled")

    @property
    def loaded(self) -> list[str]:
        return self._by_action("loaded")

    @property
    def cached(self) -> list[str]:
        return self._by_action("cached")

    @property
    def n_compiled(self) -> int:
        return len(self.compiled)

    def cutoffs(self) -> list[str]:
        """Units recompiled whose interface pid did NOT change -- each one
        is a place where the cascade stopped."""
        return [
            o.name for o in self.outcomes
            if o.action == "compiled" and not o.pid_changed
        ]

    def summary(self) -> str:
        return (f"{len(self.compiled)} compiled, {len(self.loaded)} loaded, "
                f"{len(self.cached)} cached"
                + (f" (cutoff at: {', '.join(self.cutoffs())})"
                   if self.cutoffs() else ""))

    def __repr__(self) -> str:
        return f"<build report: {self.summary()}>"
