"""Build reports: what a builder did and why."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.ledger import ExplanationLedger
from repro.units.unit import PhaseTimes

#: The per-phase keys :meth:`BuildReport.phase_totals` rolls up.
PHASES = ("parse", "elaborate", "hash", "dehydrate", "rehydrate",
          "execute")


@dataclass
class UnitOutcome:
    """What happened to one unit during a build.

    action is one of:
        "compiled" -- source was (re)compiled;
        "loaded"   -- bin file rehydrated into this session;
        "cached"   -- already live in memory and current;
        "failed"   -- (supervised builds) exhausted its retry budget;
        "skipped"  -- (supervised builds) an import failed, so this
                      unit was never attempted.
    """

    name: str
    action: str
    reason: str = ""
    pid_changed: bool = False
    times: PhaseTimes = field(default_factory=PhaseTimes)


@dataclass
class BuildReport:
    outcomes: list[UnitOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Worker count and pool kind ("serial" for the classic build loop;
    #: "process"/"thread"/"inline" for wavefront builds).
    jobs: int = 1
    pool: str = "serial"
    #: How compiles were ordered: "wavefront" (antichain barriers; also
    #: what the serial loop degenerates to) or "ready" (per-unit
    #: ready-set dispatch).  Same store bytes either way.
    schedule: str = "wavefront"
    #: The order units were *decided* in -- for wavefront builds this is
    #: wave-by-wave sorted order; for ready-set builds it is the actual
    #: dispatch sequence.  Always a linear extension of the dep graph
    #: (the property test in ``tests/property/test_ready_set.py`` holds
    #: the scheduler to that).
    dispatch_order: list[str] = field(default_factory=list)
    #: Why each unit was recompiled or reused (the cutoff-explanation
    #: ledger the builder kept while deciding this pass).
    ledger: ExplanationLedger | None = None
    #: Supervision telemetry (all zero for unsupervised builds): how
    #: many attempts were retried, how many timed out, how often the
    #: pool degraded (process -> thread -> inline), and how many units
    #: a ``--resume`` pass reused from the journal without recompiling.
    retries: int = 0
    timeouts: int = 0
    degraded: int = 0
    resumed: int = 0

    @property
    def failed(self) -> list[str]:
        return self._by_action("failed")

    @property
    def skipped(self) -> list[str]:
        return self._by_action("skipped")

    def add(self, outcome: UnitOutcome) -> None:
        self.outcomes.append(outcome)

    def _by_action(self, action: str) -> list[str]:
        return [o.name for o in self.outcomes if o.action == action]

    @property
    def compiled(self) -> list[str]:
        return self._by_action("compiled")

    @property
    def loaded(self) -> list[str]:
        return self._by_action("loaded")

    @property
    def cached(self) -> list[str]:
        return self._by_action("cached")

    @property
    def n_compiled(self) -> int:
        return len(self.compiled)

    def cutoffs(self) -> list[str]:
        """Units recompiled whose interface pid did NOT change -- each one
        is a place where the cascade stopped."""
        return [
            o.name for o in self.outcomes
            if o.action == "compiled" and not o.pid_changed
        ]

    # -- analytics --------------------------------------------------------

    def phase_totals(self) -> dict[str, float]:
        """Seconds per pipeline phase, summed over every outcome."""
        totals = {phase: 0.0 for phase in PHASES}
        for outcome in self.outcomes:
            for phase in PHASES:
                totals[phase] += getattr(outcome.times, phase)
        return {phase: round(seconds, 6)
                for phase, seconds in totals.items()}

    def stats(self) -> dict:
        """Counter rollup: cache hits, cutoff stops, decision causes."""
        out = {
            "compiled": len(self.compiled),
            "loaded": len(self.loaded),
            "cached": len(self.cached),
            "cache_hits": len(self.loaded) + len(self.cached),
            "cutoff_stops": len(self.cutoffs()),
        }
        for key in ("failed", "skipped"):
            units = self._by_action(key)
            if units:
                out[key] = len(units)
        for key in ("retries", "timeouts", "degraded", "resumed"):
            value = getattr(self, key)
            if value:
                out[key] = value
        if self.ledger is not None:
            out["causes"] = self.ledger.cause_counts()
        return out

    def summary(self) -> str:
        text = (f"{len(self.compiled)} compiled, "
                f"{len(self.loaded)} loaded, "
                f"{len(self.cached)} cached")
        if self.failed:
            text += f", {len(self.failed)} failed"
        if self.skipped:
            text += f", {len(self.skipped)} skipped"
        if self.retries:
            text += f" [{self.retries} retr{'y' if self.retries == 1 else 'ies'}]"
        if self.cutoffs():
            text += f" (cutoff at: {', '.join(self.cutoffs())})"
        return text

    def __repr__(self) -> str:
        return f"<build report: {self.summary()}>"
