"""Store backends: where bin-record pairs physically live.

:class:`repro.cm.store.BinStore` implements the *semantics* of the bin
store -- integrity verification, the damage taxonomy, incremental and
merge saves, quarantine -- but delegates the *placement* of bytes to a
:class:`StoreBackend`: get/put/has/list/delete over record pairs plus
manifest read-modify-write.  Everything the store guarantees (every
corruption is a quarantined miss, racing merge writers converge to the
union) is therefore proven per backend by one parameterized conformance
suite (``tests/cm/test_store_backend_conformance.py``) instead of once
for a hard-coded directory walk.

Backends in this module are the local ones:

- :class:`DirectoryBackend` -- the classic flat ``.bin`` directory:
  ``<stem>.bin`` / ``<stem>.bin.json`` pairs next to ``MANIFEST.json``.
- :class:`ShardedBackend` -- the same pairs under
  ``shards/<hh>/`` subdirectories, where ``hh`` is the first two hex
  digits of the CRC-128 of the record's key.  Same manifest bytes, same
  export pids, same locks; only placement differs.  This is the layout
  a fleet-scale store wants: no directory ever holds more than a
  fraction of the records.

The remote backend (a socket/loopback client with a local write-through
cache) lives in :mod:`repro.cm.remote`; :func:`make_backend` is the one
factory the CLI, the daemon and the supervisor share.

A backend's pair operations are *byte-level*: header and payload are
opaque blobs here.  Verification (checksums, digests, manifest
reconciliation) stays in :class:`~repro.cm.store.BinStore`, so every
backend inherits the PR 2 damage taxonomy by construction.  Local
backends route all IO through the :class:`repro.cm.faults.FileSystem`
seam, so the crash/ENOSPC/interleaving fault harnesses drive any of
them unchanged.
"""

from __future__ import annotations

import errno
import json
import os
import time

from repro.cm.faults import REAL_FS, FileSystem
from repro.pids.crc128 import crc128_hex

#: On-disk header format version; bump when the pickle registry or the
#: record layout changes incompatibly.  Unsupported records are skipped
#: at load (treated as cache misses).  v4 added the interface-slicing
#: fields ``binding_pids`` / ``used_bindings``.
FORMAT_VERSION = 4
#: Versions the store still reads.  v3 records predate slicing; they
#: load with empty slice fields, so the smart builder degrades to
#: whole-pid cutoff for them.  Saves always write
#: :data:`FORMAT_VERSION`.
COMPAT_FORMATS = (3, 4)

HEADER_SUFFIX = ".bin.json"
PAYLOAD_SUFFIX = ".bin"
TMP_SUFFIX = ".tmp"
MANIFEST_NAME = "MANIFEST.json"
LOCK_NAME = "store.lock"
#: Per-record lock files (merge saves): ``<stem>.rlock``.
RECORD_LOCK_SUFFIX = ".rlock"
#: The supervised-build resume journal (see :mod:`repro.cm.supervise`);
#: rides in the store directory but is not a record.
JOURNAL_NAME = "BUILD_JOURNAL.json"
#: Where damaged record files are moved aside (``quarantine=True``).
QUARANTINE_DIR = "quarantine"
#: The sharded layout's record subdirectory.
SHARDS_DIR = "shards"
#: The remote backend's local-cache LRU index; rides in the cache
#: directory but is not a record (see :mod:`repro.cm.remote`).
CACHE_INDEX_NAME = "CACHE_INDEX.json"

#: Store-directory entries that are never record files and are left
#: alone by listing and pruning.
_SKIP_ENTRIES = frozenset({
    MANIFEST_NAME, LOCK_NAME, JOURNAL_NAME, QUARANTINE_DIR,
    CACHE_INDEX_NAME,
})


class StoreError(Exception):
    """Base class for bin-store failures."""


class StoreLockedError(StoreError):
    """The store's lock file is held by a live process."""


class StoreFullError(StoreError):
    """A save ran out of disk space and aborted *cleanly*.

    The tmp file of the failed write is swept (best effort), the dirty
    set is untouched (a later save retries everything), and every
    record pair already on disk is either fully old or fully new -- a
    half-updated pair (new payload, old header) fails its whole-record
    digest on load and degrades to a quarantined cache miss, never a
    corrupt load.
    """


def _disk_full(err: OSError) -> bool:
    return err.errno in (errno.ENOSPC, errno.EDQUOT)


# -- record filenames ----------------------------------------------------

_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def escape_name(name: str) -> str:
    """Escape a unit name into a safe filename stem.

    Injective: anything outside ``[A-Za-z0-9._-]`` (including ``%`` and
    path separators) is percent-encoded byte-wise, a leading dot is
    escaped (no hidden/relative filenames), and the empty name maps to
    the otherwise-unreachable stem ``"%"``.
    """
    out: list[str] = []
    for ch in name:
        if ch in _SAFE_CHARS:
            out.append(ch)
        else:
            out.extend("%%%02X" % b for b in ch.encode("utf-8"))
    escaped = "".join(out)
    if not escaped:
        return "%"
    if escaped[0] == ".":
        escaped = "%2E" + escaped[1:]
    return escaped


def unescape_name(stem: str) -> str:
    """Best-effort inverse of :func:`escape_name` (for labelling damage
    whose header is unreadable; healthy names come from the header)."""
    if stem == "%":
        return ""
    out = bytearray()
    i = 0
    while i < len(stem):
        ch = stem[i]
        if ch == "%" and i + 3 <= len(stem):
            try:
                out.append(int(stem[i + 1:i + 3], 16))
                i += 3
                continue
            except ValueError:
                pass
        out.extend(ch.encode("utf-8"))
        i += 1
    try:
        return out.decode("utf-8")
    except UnicodeDecodeError:
        return stem


def shard_of(stem: str) -> str:
    """The shard a record key lives in: the first two hex digits of the
    key's CRC-128.  Content-hash distribution, so no shard directory
    ever holds more than a fraction of the records."""
    return crc128_hex(stem.encode("utf-8"))[:2]


def record_stem(entry: str) -> str | None:
    """The record stem of a store-managed filename, or None if the file
    is not one of ours."""
    if entry.endswith(TMP_SUFFIX):
        entry = entry[:-len(TMP_SUFFIX)]
    if entry.endswith(HEADER_SUFFIX):
        return entry[:-len(HEADER_SUFFIX)]
    if entry.endswith(PAYLOAD_SUFFIX):
        return entry[:-len(PAYLOAD_SUFFIX)]
    return None


# -- manifest bytes ------------------------------------------------------


def encode_manifest(records: dict[str, str]) -> bytes:
    """The canonical manifest bytes for a ``{stem: unit name}`` table.
    Every backend writes exactly these bytes, which is what makes
    flat and sharded manifests byte-identical for the same records."""
    return json.dumps({"format": FORMAT_VERSION, "records": dict(records)},
                      indent=1, sort_keys=True).encode("utf-8")


def parse_manifest(data: bytes) -> dict[str, str]:
    """Parse manifest bytes into ``{stem: unit name}``; raises
    ``ValueError`` on damage or a stale format (callers decide whether
    that is quarantinable damage or merely 'no manifest')."""
    payload = json.loads(data.decode("utf-8"))
    if payload["format"] not in COMPAT_FORMATS:
        raise ValueError("stale-format manifest")
    records = payload["records"]
    if not (isinstance(records, dict)
            and all(isinstance(k, str) and isinstance(v, str)
                    for k, v in records.items())):
        raise ValueError("records is not a name table")
    return records


# -- the store lock ------------------------------------------------------


class StoreLock:
    """A pid-stamped lock file guarding a store directory (or, with a
    ``filename`` of ``<stem>.rlock``, a single record in it).

    Stale locks (owner dead, or content torn beyond parsing) are broken
    and noted.  A lock held by a live process blocks until ``timeout``;
    then ``acquire(required=True)`` raises :class:`StoreLockedError`
    while ``required=False`` (read paths) proceeds without the lock and
    records a note.  Liveness, not just process identity, is what the
    breaker tests: a *live* writer that is merely slow keeps its lock
    (see the SlowFS tests).
    """

    def __init__(self, dir_path: str, fs: FileSystem | None = None,
                 timeout: float = 5.0, poll: float = 0.02,
                 filename: str = LOCK_NAME):
        self.fs = fs if fs is not None else REAL_FS
        self.lock_path = os.path.join(dir_path, filename)
        self.timeout = timeout
        self.poll = poll
        self.notes: list[str] = []
        self.held = False

    def acquire(self, required: bool = True) -> bool:
        fs = self.fs
        content = json.dumps({"pid": os.getpid()}).encode()
        deadline = time.monotonic() + self.timeout
        while True:
            if fs.create_exclusive(self.lock_path, content):
                self.held = True
                return True
            owner = self._owner()
            if owner is None or not fs.pid_alive(owner):
                self.notes.append(
                    f"broke stale store lock (owner pid {owner})")
                fs.remove(self.lock_path)
                continue
            if time.monotonic() >= deadline:
                if required:
                    raise StoreLockedError(
                        f"store is locked by live pid {owner} "
                        f"({self.lock_path})")
                self.notes.append(
                    f"store locked by live pid {owner}; "
                    f"reading without the lock")
                return False
            time.sleep(self.poll)

    def _owner(self) -> int | None:
        return lock_owner(self.fs, self.lock_path)

    def release(self) -> None:
        if self.held:
            self.fs.release_lock(self.lock_path)
            self.held = False

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class NullLock:
    """The no-lock lock: a backend whose server already serializes
    writers (the remote backend's store-level lock) hands these out.
    Same surface as :class:`StoreLock`, no filesystem traffic."""

    def __init__(self):
        self.notes: list[str] = []
        self.held = False

    def acquire(self, required: bool = True) -> bool:
        self.held = True
        return True

    def release(self) -> None:
        self.held = False

    def __enter__(self) -> "NullLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def lock_owner(fs: FileSystem, lock_path: str) -> int | None:
    """The pid recorded in a lock file, or None when the lock is
    unreadable/torn (treated as stale by every breaker)."""
    try:
        data = json.loads(fs.read_bytes(lock_path))
        return int(data["pid"])
    except Exception:
        return None


# -- the protocol --------------------------------------------------------


class StoreBackend:
    """Where one bin store's bytes live (see the module docstring).

    The core surface is get/put/has/list/delete over record *pairs*
    (header bytes + payload bytes, keyed by the escaped-name stem) plus
    manifest read-modify-write; the rest -- locks, pruning, quarantine,
    signatures, stale-artifact sweeps -- exists so fsck, merge saves,
    the daemon's change detection and the supervisor's checkpoints work
    against any backend.

    Attributes every backend carries:

    - ``kind``: ``"flat"`` / ``"sharded"`` / ``"remote"``;
    - ``fs``: the *local* filesystem seam (the remote backend's is its
      cache's) -- journals and checkpoints ride through it;
    - ``root``: the local anchor directory (store dir, or the remote
      backend's cache dir): the journal, the resume checkpoint and the
      store lock live here;
    - ``key``: the backend's identity for "is this save going where the
      load came from" bookkeeping;
    - ``label``: what health reports print as the store's location;
    - ``notes``: informational messages (e.g. "remote store offline")
      the store drains into its health report.
    """

    kind = "?"

    # -- lifecycle --------------------------------------------------------

    def open(self) -> None:
        """Make the backend writable (create the root directory)."""
        raise NotImplementedError

    def exists(self) -> bool:
        """Is there a store here at all (for 'no store directory'
        notes)?"""
        raise NotImplementedError

    # -- record pairs ------------------------------------------------------

    def list_pairs(self, notes: list[str] | None = None
                   ) -> tuple[set[str], set[str]]:
        """``(header stems, payload stems)`` of every record half
        present; appends "ignoring ..." informational notes."""
        raise NotImplementedError

    def read_header(self, stem: str) -> bytes:
        raise NotImplementedError

    def read_payload(self, stem: str) -> bytes:
        raise NotImplementedError

    def has_payload(self, stem: str) -> bool:
        raise NotImplementedError

    def put(self, stem: str, header_bytes: bytes,
            payload: bytes) -> None:
        """Write one record pair, payload first, each half atomically;
        a disk-full aborts cleanly as :class:`StoreFullError`."""
        raise NotImplementedError

    def delete(self, stem: str) -> None:
        """Remove both halves of a pair (absence is not an error)."""
        raise NotImplementedError

    # -- manifest ----------------------------------------------------------

    def manifest_present(self) -> bool:
        raise NotImplementedError

    def manifest_label(self) -> str:
        """A human-readable location for the manifest (health-report
        ``path`` fields)."""
        raise NotImplementedError

    def read_manifest_bytes(self) -> bytes | None:
        """The manifest bytes, or None when absent; raises ``OSError``
        on an unreadable manifest."""
        raise NotImplementedError

    def write_manifest(self, data: bytes) -> None:
        """Replace the manifest atomically (single-writer saves)."""
        raise NotImplementedError

    def merge_manifest(self, adds: dict[str, str],
                       removes: set[str]) -> int:
        """Read-modify-write: drop ``removes``, add ``adds``, keep
        everything else (records another writer manifested).  Returns
        the merged manifest's byte size.  Callers hold the store lock;
        backends whose server serializes do it in one atomic op."""
        raise NotImplementedError

    # -- locks -------------------------------------------------------------

    def store_lock(self, timeout: float):
        raise NotImplementedError

    def record_lock(self, stem: str, timeout: float):
        raise NotImplementedError

    # -- maintenance -------------------------------------------------------

    def prune(self, live_stems: set[str]) -> list[str]:
        """Single-writer cleanup after a plain save: remove tmp debris,
        record pairs not in ``live_stems``, and record locks with dead
        owners.  Returns what was removed."""
        raise NotImplementedError

    def sweep_dead_record_locks(self) -> list[str]:
        """Remove ``.rlock`` files whose owner pid is dead (merge saves
        must not prune anything else -- a file this writer does not
        recognize may be another live writer's work)."""
        raise NotImplementedError

    def sweep_stale(self) -> list[str]:
        """Sweep a killed prior run's debris: stale resume journals and
        dead record locks (see
        :func:`repro.cm.store.sweep_stale_artifacts`)."""
        raise NotImplementedError

    def ensure_quarantine_dir(self) -> str | None:
        """Create the quarantine directory; returns an error string on
        failure (quarantine-aside is then skipped)."""
        raise NotImplementedError

    def quarantine_pair(self, stem: str) -> tuple[bool, str | None]:
        """Move a damaged pair aside; never half-moves (a failure rolls
        the moved half back).  Returns ``(moved, error)``."""
        raise NotImplementedError

    def signature(self) -> tuple:
        """A cheap change signature: two equal signatures mean no other
        writer touched the store in between (the daemon's incremental
        refresh probe)."""
        raise NotImplementedError

    # -- addressing and bookkeeping ---------------------------------------

    def describe(self, stem: str, suffix: str) -> str:
        """A human-readable location for one record file (health-report
        ``path`` fields)."""
        raise NotImplementedError

    def covers(self, path: str) -> bool:
        """Does a save/checkpoint aimed at directory ``path`` belong to
        this backend?  (The supervisor and daemon address checkpoints
        by the store directory; the store routes them here.)"""
        return os.path.abspath(path) == os.path.abspath(self.root)

    # -- save-session hooks (eviction safety) ------------------------------

    def begin_save(self) -> None:
        """Hook: a save is starting; records put until :meth:`end_save`
        must survive it (the remote cache must not evict them)."""

    def end_save(self) -> None:
        """Hook: the save committed."""


# -- local directory backends --------------------------------------------


class DirectoryBackend(StoreBackend):
    """The flat directory layout: record pairs at the store root."""

    kind = "flat"

    def __init__(self, root: str, fs: FileSystem | None = None):
        self.fs = fs if fs is not None else REAL_FS
        self.root = root
        self.key = os.path.abspath(root)
        self.label = root
        self.notes: list[str] = []

    # -- placement --------------------------------------------------------

    def dir_of(self, stem: str) -> str:
        return self.root

    def path_of(self, stem: str, suffix: str) -> str:
        return os.path.join(self.dir_of(stem), stem + suffix)

    def describe(self, stem: str, suffix: str) -> str:
        return self.path_of(stem, suffix)

    def record_dirs(self) -> list[str]:
        """Every directory that may hold record pairs."""
        return [self.root]

    # -- lifecycle --------------------------------------------------------

    def open(self) -> None:
        self.fs.makedirs(self.root)

    def exists(self) -> bool:
        return self.fs.isdir(self.root)

    # -- record pairs ------------------------------------------------------

    def _classify(self, entry: str, rel: str, header: set, payload: set,
                  notes: list[str] | None) -> None:
        if entry.endswith(RECORD_LOCK_SUFFIX):
            return  # a merge writer's per-record lock
        if entry.endswith(TMP_SUFFIX):
            if notes is not None:
                notes.append(f"ignoring leftover temp file {rel}")
            return
        if entry.endswith(HEADER_SUFFIX):
            header.add(entry[:-len(HEADER_SUFFIX)])
        elif entry.endswith(PAYLOAD_SUFFIX):
            payload.add(entry[:-len(PAYLOAD_SUFFIX)])
        elif notes is not None:
            notes.append(f"ignoring unrecognized file {rel}")

    def list_pairs(self, notes: list[str] | None = None
                   ) -> tuple[set[str], set[str]]:
        header: set[str] = set()
        payload: set[str] = set()
        for entry in self.fs.listdir(self.root):
            if entry in _SKIP_ENTRIES or entry == SHARDS_DIR:
                continue
            self._classify(entry, entry, header, payload, notes)
        return header, payload

    def read_header(self, stem: str) -> bytes:
        return self.fs.read_bytes(self.path_of(stem, HEADER_SUFFIX))

    def read_payload(self, stem: str) -> bytes:
        return self.fs.read_bytes(self.path_of(stem, PAYLOAD_SUFFIX))

    def has_payload(self, stem: str) -> bool:
        return self.fs.exists(self.path_of(stem, PAYLOAD_SUFFIX))

    def put(self, stem: str, header_bytes: bytes, payload: bytes) -> None:
        fs = self.fs
        directory = self.dir_of(stem)
        if directory != self.root:
            fs.makedirs(directory)
        payload_file = os.path.join(directory, stem + PAYLOAD_SUFFIX)
        header_file = os.path.join(directory, stem + HEADER_SUFFIX)
        try:
            fs.write_bytes(payload_file + TMP_SUFFIX, payload)
            fs.replace(payload_file + TMP_SUFFIX, payload_file)
            fs.write_bytes(header_file + TMP_SUFFIX, header_bytes)
            fs.replace(header_file + TMP_SUFFIX, header_file)
        except OSError as err:
            if not _disk_full(err):
                raise
            self._sweep_tmps((payload_file, header_file))
            raise StoreFullError(
                f"disk full while saving record {stem!r} in {self.root}: "
                f"{err}") from err

    def delete(self, stem: str) -> None:
        self.fs.remove(self.path_of(stem, HEADER_SUFFIX))
        self.fs.remove(self.path_of(stem, PAYLOAD_SUFFIX))

    def _sweep_tmps(self, files: tuple[str, ...]) -> None:
        """Best-effort removal of tmp files after a failed write (frees
        the very space the failed save was starved of)."""
        for name in files:
            try:
                self.fs.remove(name + TMP_SUFFIX)
            except OSError:
                pass

    # -- manifest ----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def manifest_present(self) -> bool:
        return self.fs.exists(self._manifest_path())

    def manifest_label(self) -> str:
        return self._manifest_path()

    def read_manifest_bytes(self) -> bytes | None:
        if not self.manifest_present():
            return None
        return self.fs.read_bytes(self._manifest_path())

    def write_manifest(self, data: bytes) -> None:
        fs = self.fs
        manifest_file = self._manifest_path()
        try:
            fs.write_bytes(manifest_file + TMP_SUFFIX, data)
            fs.replace(manifest_file + TMP_SUFFIX, manifest_file)
        except OSError as err:
            if not _disk_full(err):
                raise
            self._sweep_tmps((manifest_file,))
            raise StoreFullError(
                f"disk full while writing manifest in {self.root}: "
                f"{err}") from err

    def merge_manifest(self, adds: dict[str, str],
                       removes: set[str]) -> int:
        try:
            raw = self.read_manifest_bytes()
            merged = parse_manifest(raw) if raw is not None else {}
        except (OSError, ValueError):
            merged = {}
        for stem in removes:
            merged.pop(stem, None)
        merged.update(adds)
        data = encode_manifest(merged)
        self.write_manifest(data)
        return len(data)

    # -- locks -------------------------------------------------------------

    def store_lock(self, timeout: float) -> StoreLock:
        return StoreLock(self.root, fs=self.fs, timeout=timeout)

    def record_lock(self, stem: str, timeout: float) -> StoreLock:
        directory = self.dir_of(stem)
        if directory != self.root:
            self.fs.makedirs(directory)
        return StoreLock(directory, fs=self.fs, timeout=timeout,
                         filename=stem + RECORD_LOCK_SUFFIX)

    # -- maintenance -------------------------------------------------------

    def _prune_dir(self, directory: str, rel_prefix: str,
                   live_stems: set[str], pruned: list[str]) -> None:
        fs = self.fs
        for entry in fs.listdir(directory):
            if entry in _SKIP_ENTRIES or entry == SHARDS_DIR:
                continue
            full = os.path.join(directory, entry)
            if entry.endswith(RECORD_LOCK_SUFFIX):
                owner = lock_owner(fs, full)
                if owner is None or not fs.pid_alive(owner):
                    fs.remove(full)
                    pruned.append(rel_prefix + entry)
                continue
            stem = record_stem(entry)
            if stem is None:
                continue  # not a store-managed file: leave it alone
            if entry.endswith(TMP_SUFFIX) or stem not in live_stems:
                fs.remove(full)
                pruned.append(rel_prefix + entry)

    def prune(self, live_stems: set[str]) -> list[str]:
        pruned: list[str] = []
        self._prune_dir(self.root, "", live_stems, pruned)
        return pruned

    def _sweep_locks_dir(self, directory: str, rel_prefix: str,
                         swept: list[str]) -> None:
        fs = self.fs
        for entry in fs.listdir(directory):
            if entry.endswith(RECORD_LOCK_SUFFIX):
                owner = lock_owner(fs, os.path.join(directory, entry))
                if owner is None or not fs.pid_alive(owner):
                    fs.remove(os.path.join(directory, entry))
                    swept.append(rel_prefix + entry)

    def sweep_dead_record_locks(self) -> list[str]:
        swept: list[str] = []
        self._sweep_locks_dir(self.root, "", swept)
        return swept

    def sweep_stale(self) -> list[str]:
        fs = self.fs
        swept: list[str] = []
        try:
            if not self.exists():
                return swept
            entries = fs.listdir(self.root)
        except OSError:
            return swept
        for entry in entries:
            full = os.path.join(self.root, entry)
            try:
                if entry in (JOURNAL_NAME, JOURNAL_NAME + TMP_SUFFIX):
                    fs.remove(full)
                    swept.append(entry)
                elif entry.endswith(RECORD_LOCK_SUFFIX):
                    owner = lock_owner(fs, full)
                    if owner is None or not fs.pid_alive(owner):
                        fs.remove(full)
                        swept.append(entry)
            except OSError:
                continue
        for directory in self.record_dirs():
            if directory == self.root:
                continue
            try:
                self._sweep_locks_dir(
                    directory,
                    os.path.relpath(directory, self.root) + os.sep,
                    swept)
            except OSError:
                continue
        return swept

    def ensure_quarantine_dir(self) -> str | None:
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            self.fs.makedirs(qdir)
        except OSError as err:
            return f"cannot create {qdir}: {err}"
        return None

    def quarantine_pair(self, stem: str) -> tuple[bool, str | None]:
        fs = self.fs
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        done: list[tuple[str, str]] = []
        for suffix in (PAYLOAD_SUFFIX, HEADER_SUFFIX):
            src = self.path_of(stem, suffix)
            dst = os.path.join(qdir, stem + suffix)
            try:
                if not fs.exists(src):
                    continue
                fs.replace(src, dst)
            except OSError as err:
                # Roll the already-moved half back: never half-move.
                for m_src, m_dst in reversed(done):
                    try:
                        fs.replace(m_dst, m_src)
                    except OSError:
                        pass
                return False, str(err)
            done.append((src, dst))
        return bool(done), None

    def signature(self) -> tuple:
        fs = self.fs
        if not fs.isdir(self.root):
            return ()
        out = []
        for directory in self.record_dirs():
            rel = ("" if directory == self.root
                   else os.path.relpath(directory, self.root) + os.sep)
            try:
                entries = fs.listdir(directory)
            except OSError:
                return ("unreadable",)
            for entry in entries:
                if entry.endswith(TMP_SUFFIX):
                    continue
                if (entry == MANIFEST_NAME
                        or entry.endswith(HEADER_SUFFIX)
                        or entry.endswith(PAYLOAD_SUFFIX)):
                    out.append((rel + entry, fs.stat_signature(
                        os.path.join(directory, entry))))
        return tuple(out)


class ShardedBackend(DirectoryBackend):
    """Record pairs under ``shards/<hh>/`` where ``hh`` is
    :func:`shard_of` the record key.  Manifest, locks, journal and
    quarantine stay at the root, so checkpoints, resume and fsck work
    unchanged; only pair placement (and therefore directory fan-out)
    differs from the flat layout."""

    kind = "sharded"

    def dir_of(self, stem: str) -> str:
        return os.path.join(self.root, SHARDS_DIR, shard_of(stem))

    def record_dirs(self) -> list[str]:
        shards_root = os.path.join(self.root, SHARDS_DIR)
        if not self.fs.isdir(shards_root):
            return [self.root]
        try:
            shards = self.fs.listdir(shards_root)
        except OSError:
            return [self.root]
        return [self.root] + [os.path.join(shards_root, shard)
                              for shard in shards
                              if self.fs.isdir(os.path.join(shards_root,
                                                            shard))]

    def list_pairs(self, notes: list[str] | None = None
                   ) -> tuple[set[str], set[str]]:
        header: set[str] = set()
        payload: set[str] = set()
        for directory in self.record_dirs():
            rel = ("" if directory == self.root
                   else os.path.relpath(directory, self.root) + os.sep)
            for entry in self.fs.listdir(directory):
                if entry in _SKIP_ENTRIES or entry == SHARDS_DIR:
                    continue
                self._classify(entry, rel + entry, header, payload, notes)
        return header, payload

    def prune(self, live_stems: set[str]) -> list[str]:
        pruned: list[str] = []
        for directory in self.record_dirs():
            rel = ("" if directory == self.root
                   else os.path.relpath(directory, self.root) + os.sep)
            self._prune_dir(directory, rel, live_stems, pruned)
        return pruned

    def sweep_dead_record_locks(self) -> list[str]:
        swept: list[str] = []
        for directory in self.record_dirs():
            rel = ("" if directory == self.root
                   else os.path.relpath(directory, self.root) + os.sep)
            try:
                self._sweep_locks_dir(directory, rel, swept)
            except OSError:
                continue
        return swept


# -- detection and the factory -------------------------------------------


def detect_dir_backend(path: str,
                       fs: FileSystem | None = None) -> DirectoryBackend:
    """The right local backend for an existing store directory: sharded
    iff it has a ``shards/`` subdirectory, flat otherwise (including
    when it does not exist yet)."""
    fs = fs if fs is not None else REAL_FS
    if fs.isdir(os.path.join(path, SHARDS_DIR)):
        return ShardedBackend(path, fs=fs)
    return DirectoryBackend(path, fs=fs)


def make_backend(kind: str, path: str, url: str | None = None,
                 fs: FileSystem | None = None,
                 cache_cap_bytes: int | None = None,
                 compress: bool = True) -> StoreBackend:
    """The one backend factory the CLI, daemon and tests share.

    ``kind`` is ``auto`` (detect from the directory), ``flat``,
    ``sharded`` or ``remote`` (requires ``url``; ``path`` becomes the
    local write-through cache directory)."""
    if kind == "remote" or (kind == "auto" and url):
        if not url:
            raise StoreError("remote backend requires a store URL")
        from repro.cm.remote import remote_backend_from_url
        return remote_backend_from_url(
            url, cache_dir=path, fs=fs,
            cache_cap_bytes=cache_cap_bytes, compress=compress)
    if kind == "auto":
        return detect_dir_backend(path, fs=fs)
    if kind == "flat":
        return DirectoryBackend(path, fs=fs)
    if kind == "sharded":
        return ShardedBackend(path, fs=fs)
    raise StoreError(f"unknown store backend {kind!r} "
                     f"(want auto, flat, sharded or remote)")
